#pragma once
/// \file vt_scheduler.hpp
/// \brief Virtual-time scheduler: runs N "rank processes" whose *simulated*
/// clocks are coordinated so that only the runnable process with the
/// smallest local virtual time executes at any moment.
///
/// This is the substrate of the message-passing runtime (`mpisim`). The
/// design trades parallel host execution for determinism: exactly one
/// process runs at a time, scheduling order is (virtual time, rank), so a
/// given program produces bit-identical simulated timings on every run.
///
/// Two execution modes realize the same scheduling contract (DESIGN.md §12):
///  - `Mode::Threads` — one OS thread per rank, handoffs via mutex +
///    condition variable. The reference implementation; the only mode the
///    thread sanitizer can check, and the only mode available when the
///    build is sanitized.
///  - `Mode::Cooperative` — all ranks run as user-level continuations
///    (ucontext fibers) on the calling thread; a handoff is a context swap
///    instead of a kernel-level wake+sleep, which removes the dominant
///    wall-clock cost of simulated benchmarks on small machines. Scheduling
///    decisions flow through the *same* pick/switch code as thread mode, so
///    clock sequences, `switchCount()` and error behavior are identical —
///    the `simcore` cross-check suite locks this in.
/// The default mode is Cooperative where supported (overridable via the
/// `NODEBENCH_VT_MODE=threads|cooperative` environment knob and
/// `setMode`); sanitized builds always run Threads.
///
/// Blocking operations (e.g. a receive with no matching send) are expressed
/// through `blockUntil(pred)`: the process leaves the runnable set until
/// another process calls `wake()` on it, after which the predicate is
/// re-evaluated while the process is the unique runner (so predicate state
/// needs no further synchronization). If every live process is blocked the
/// scheduler reports deadlock by throwing in all participants.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/units.hpp"

namespace nodebench::sim {

/// Snapshot of one rank process at the moment a scheduling failure was
/// detected. Carried by DeadlockError / TimeoutError so injected-fault
/// hangs and genuine runtime bugs are distinguishable from the error
/// alone: which ranks were blocked, and at what virtual time.
struct RankStateSnapshot {
  int rank = -1;
  std::string state;             ///< "ready" / "running" / "blocked" / "finished".
  Duration clock = Duration::zero();  ///< Local virtual time at detection.
};

/// Thrown in every participating process when the virtual-time system
/// deadlocks (all live processes blocked). The message lists the per-rank
/// state table; `ranks()` exposes it structurally.
class DeadlockError : public Error {
 public:
  using Error::Error;
  DeadlockError(const std::string& reason,
                std::vector<RankStateSnapshot> ranks);

  [[nodiscard]] const std::vector<RankStateSnapshot>& ranks() const {
    return ranks_;
  }

 private:
  std::vector<RankStateSnapshot> ranks_;
};

/// Thrown in every participating process when a process's virtual clock
/// exceeds the scheduler's watchdog deadline — the virtual-time analogue
/// of a wall-clock timeout. Distinguishes "the system is livelocked /
/// runaway" (e.g. an injected fault causing endless retransmits) from a
/// true deadlock, instead of hanging or mis-reporting.
class TimeoutError : public Error {
 public:
  using Error::Error;
};

class VirtualTimeScheduler;

/// Handle through which a rank process interacts with virtual time.
/// Only valid inside the process function it was passed to.
class VirtualProcess {
 public:
  [[nodiscard]] int rank() const { return rank_; }

  /// Current local virtual time.
  [[nodiscard]] Duration now() const;

  /// Advances local time by `dt` and yields if another runnable process is
  /// now earlier. Precondition: dt >= 0.
  void advance(Duration dt);

  /// Advances local time to `max(now, t)` and yields.
  void advanceTo(Duration t);

  /// Blocks until `pred()` is true. The predicate is evaluated only while
  /// this process is the unique runner; it is re-checked each time some
  /// other process calls `wake(rank())`.
  void blockUntil(const std::function<bool()>& pred);

  /// Marks another (possibly blocked) process as runnable so that its
  /// `blockUntil` predicate is re-evaluated.
  void wake(int otherRank);

 private:
  friend class VirtualTimeScheduler;
  VirtualProcess(VirtualTimeScheduler& sched, int rank)
      : sched_(&sched), rank_(rank) {}

  VirtualTimeScheduler* sched_;
  int rank_;
};

/// Runs a set of process functions to completion under virtual time.
class VirtualTimeScheduler {
 public:
  using ProcessFn = std::function<void(VirtualProcess&)>;

  /// How rank processes execute. Scheduling decisions (and therefore all
  /// simulated results) are identical in both modes.
  enum class Mode {
    Threads,      ///< One OS thread per rank (tsan-checkable reference).
    Cooperative,  ///< ucontext fibers on the calling thread (fast path).
  };

  /// Whether Cooperative mode is compiled in: requires ucontext and a
  /// non-sanitized build (fiber stack switches confuse tsan/asan shadow
  /// state, and Threads mode is the sanitizers' whole point anyway).
  [[nodiscard]] static bool cooperativeSupported();

  /// Process-wide default: Cooperative where supported, overridable by the
  /// NODEBENCH_VT_MODE environment variable ("threads" / "cooperative",
  /// read once). Unsupported requests fall back to Threads.
  [[nodiscard]] static Mode defaultMode();

  // Out-of-line: CoopRuntime is cpp-private, so members needing its
  // destructor cannot be instantiated from the header.
  VirtualTimeScheduler();
  ~VirtualTimeScheduler();

  /// Selects the execution mode for subsequent runs. A Cooperative request
  /// on a build without support degrades to Threads (so callers can set
  /// unconditionally). Must not be called while a run is in flight.
  void setMode(Mode m);

  [[nodiscard]] Mode mode() const { return mode_; }

  /// Runs all processes; returns when every process function has returned.
  /// Rethrows the first exception raised by any process (by rank order of
  /// detection). Precondition: !fns.empty().
  void run(const std::vector<ProcessFn>& fns);

  /// Arms a virtual-time watchdog: if any process's local clock exceeds
  /// `deadline`, the run aborts with TimeoutError in every participant.
  /// The deadline persists across runs (scheduler configuration, not
  /// per-run state); `Duration::infinity()` (the default) disables it.
  /// Precondition: deadline > 0.
  void setWatchdog(Duration deadline);

  [[nodiscard]] Duration watchdog() const { return watchdog_; }

  /// Total number of process switches in the last completed `run`
  /// (determinism diagnostics for tests). Reset to zero at `run` entry,
  /// so back-to-back runs on one scheduler report per-run counts rather
  /// than a lifetime total. Only meaningful *between* runs: while `run`
  /// is in flight the counter is mutated under the scheduler's internal
  /// lock and a concurrent read would race. Identical in both modes for
  /// the same program (the cross-check suite's invariant).
  [[nodiscard]] std::uint64_t switchCount() const { return switches_; }

 private:
  friend class VirtualProcess;

  enum class State { Ready, Running, Blocked, Finished };

  struct Slot {
    Duration clock = Duration::zero();
    State state = State::Ready;
  };

  struct CoopRuntime;  // fiber contexts; defined in the .cpp (ucontext)

  // The helpers below implement one scheduling contract for both modes.
  // In thread mode the caller holds mu_ and passes the lock; in
  // cooperative mode everything runs on one OS thread, so `lock` is null
  // and mu_ is never taken.
  [[nodiscard]] int pickNextLocked() const;  // min-clock Ready; -1 if none
  void switchToLocked(int next);
  void waitUntilRunning(std::unique_lock<std::mutex>* lock, int rank);
  void yieldIfEarlier(std::unique_lock<std::mutex>* lock, int rank);
  void checkWatchdogLocked(int rank);
  void abortAllLocked();
  [[nodiscard]] std::vector<RankStateSnapshot> snapshotLocked() const;

  void processBody(int rank, const ProcessFn& fn);

  void runThreads(const std::vector<ProcessFn>& fns);
  void runCooperative(const std::vector<ProcessFn>& fns);
  /// Suspends the current fiber and resumes the scheduler loop
  /// (cooperative mode only).
  void coopYieldToMain(int rank);
  /// Fiber entry point (cooperative mode only; ucontext calling shim).
  static void coopTrampoline(unsigned int hi, unsigned int lo, int rank);

  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  bool aborted_ = false;
  std::exception_ptr firstError_;
  std::uint64_t switches_ = 0;
  Duration watchdog_ = Duration::infinity();
  Mode mode_ = Mode::Threads;
  bool coopActive_ = false;  ///< True while runCooperative is in flight.
  std::unique_ptr<CoopRuntime> coop_;
};

}  // namespace nodebench::sim
