#pragma once
/// \file shard_test_util.hpp
/// \brief Shared machinery of the shard test suites: scratch
/// directories, in-process shard workers, and the single-process
/// reference run the merged bytes are compared against.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/shard.hpp"
#include "faults/fault_plan.hpp"
#include "report/tables.hpp"
#include "stats/store.hpp"

namespace nodebench::shardtest {

using Bytes = std::vector<std::uint8_t>;

inline Bytes readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

/// Per-process scratch directory, wiped on construction and destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& stem)
      : dir_(std::filesystem::temp_directory_path() /
             (stem + "." + std::to_string(::getpid()))) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() { std::filesystem::remove_all(dir_); }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

/// The campaign shape a suite runs: small binary-run counts and machine
/// subsets keep the matrix fast while still crossing CPU and GPU tables.
struct CampaignKnobs {
  int jobs = 1;
  int binaryRuns = 3;
  const faults::FaultPlan* faults = nullptr;
  const std::vector<std::string>* machines = nullptr;
  bool withTable5 = true;  ///< Table 4 alone when false (small sets).
};

inline report::TableOptions tableOptions(const CampaignKnobs& knobs) {
  report::TableOptions opt;
  opt.binaryRuns = knobs.binaryRuns;
  opt.jobs = knobs.jobs;
  opt.faults = knobs.faults;
  opt.machines = knobs.machines;
  return opt;
}

/// One worker's in-process campaign: shard `spec`'s slice of Table 4
/// (and 5), written to shardPath()-named journal + store files.
inline void runShardWorker(const std::string& journalBase,
                           const std::string& storeBase,
                           const campaign::ShardSpec& spec,
                           const CampaignKnobs& knobs) {
  report::TableOptions opt = tableOptions(knobs);
  campaign::ShardPlan plan(spec);
  opt.shard = &plan;
  const campaign::CampaignConfig cfg = report::campaignConfig(opt);
  const auto journal =
      campaign::Journal::create(campaign::shardPath(journalBase, spec), cfg);
  const auto store =
      stats::ResultStore::create(campaign::shardPath(storeBase, spec), cfg);
  opt.journal = journal.get();
  opt.store = store.get();
  (void)report::computeTable4(opt);
  if (knobs.withTable5) {
    (void)report::computeTable5(opt);
  }
}

struct Artifacts {
  Bytes journal;
  Bytes store;
};

/// The uninterrupted single-process `--jobs 1` run every merged shard
/// set must reproduce byte-for-byte.
inline Artifacts runReference(const std::string& journalPath,
                              const std::string& storePath,
                              CampaignKnobs knobs) {
  knobs.jobs = 1;
  report::TableOptions opt = tableOptions(knobs);
  const campaign::CampaignConfig cfg = report::campaignConfig(opt);
  {
    const auto journal = campaign::Journal::create(journalPath, cfg);
    const auto store = stats::ResultStore::create(storePath, cfg);
    opt.journal = journal.get();
    opt.store = store.get();
    (void)report::computeTable4(opt);
    if (knobs.withTable5) {
      (void)report::computeTable5(opt);
    }
  }
  return Artifacts{readFileBytes(journalPath), readFileBytes(storePath)};
}

/// Collects the shard journal inputs of a complete worker set.
inline std::vector<campaign::ShardInput> collectShardJournals(
    const std::string& journalBase, std::uint32_t count) {
  std::vector<campaign::ShardInput> inputs;
  for (std::uint32_t i = 0; i < count; ++i) {
    inputs.push_back(campaign::readShardInput(
        campaign::shardPath(journalBase, {i, count})));
  }
  return inputs;
}

}  // namespace nodebench::shardtest
