/// \file shard_plan_test.cpp
/// \brief Unit tests for the shard layer's building blocks: spec
/// parsing, the canonical partition, manifest round-trips, the
/// ShardPlan skip-set, and the optional shard extension in the journal
/// and store headers.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/shard.hpp"
#include "core/error.hpp"
#include "stats/store.hpp"

namespace nodebench::campaign {
namespace {

using Bytes = std::vector<std::uint8_t>;

std::string tempPath(const std::string& stem) {
  return (std::filesystem::temp_directory_path() /
          (stem + "." + std::to_string(::getpid())))
      .string();
}

// --- parseShardSpec ----------------------------------------------------------

TEST(ShardSpecTest, ParsesValidSpecs) {
  EXPECT_EQ(parseShardSpec("0/1"), (ShardSpec{0, 1}));
  EXPECT_EQ(parseShardSpec("2/8"), (ShardSpec{2, 8}));
  EXPECT_EQ(parseShardSpec("15/16"), (ShardSpec{15, 16}));
  EXPECT_EQ(parseShardSpec("4095/4096"), (ShardSpec{4095, 4096}));
}

TEST(ShardSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "1", "1/", "/2", "//", "a/b", "1/2/3", "-1/2", "1/-2", " 1/2",
        "1/2 ", "1.0/2", "0x1/2", "1234567890/4096"}) {
    EXPECT_THROW((void)parseShardSpec(bad), Error) << bad;
  }
}

TEST(ShardSpecTest, RejectsOutOfRangeSpecs) {
  EXPECT_THROW((void)parseShardSpec("0/0"), Error);
  EXPECT_THROW((void)parseShardSpec("2/2"), Error);
  EXPECT_THROW((void)parseShardSpec("3/2"), Error);
  EXPECT_THROW((void)parseShardSpec("0/4097"), Error);
  try {
    (void)parseShardSpec("9/4");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("9/4"), std::string::npos)
        << e.what();
  }
}

TEST(ShardSpecTest, SpecTextVocabulary) {
  EXPECT_EQ(shardSpecText({0, 0}), "unsharded");
  EXPECT_EQ(shardSpecText({2, 8}), "2/8");
}

// --- shardRangeFor -----------------------------------------------------------

TEST(ShardRangeTest, PartitionTilesExactlyWithBalancedSizes) {
  for (std::size_t total = 0; total <= 40; ++total) {
    for (std::uint32_t count = 1; count <= 17; ++count) {
      std::size_t cursor = 0;
      std::size_t smallest = total + 1;
      std::size_t largest = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        const ShardRange r = shardRangeFor(total, {i, count});
        // Contiguous tiling: each slice starts where the previous ended.
        ASSERT_EQ(r.begin, cursor) << total << " cells, shard " << i << "/"
                                   << count;
        ASSERT_LE(r.begin, r.end);
        cursor = r.end;
        const std::size_t size = r.end - r.begin;
        smallest = std::min(smallest, size);
        largest = std::max(largest, size);
      }
      ASSERT_EQ(cursor, total) << total << " cells over " << count;
      // Balanced: sizes differ by at most one (the uneven tail).
      ASSERT_LE(largest - smallest, 1u) << total << " cells over " << count;
    }
  }
}

TEST(ShardRangeTest, MoreShardsThanCellsLeavesEmptySlices) {
  const ShardRange r = shardRangeFor(3, {5, 8});
  EXPECT_EQ(r.begin, r.end);
  const ShardRange first = shardRangeFor(3, {0, 8});
  EXPECT_EQ(first, (ShardRange{0, 1}));
}

// --- manifest round-trip -----------------------------------------------------

TableManifest sampleManifest() {
  TableManifest m;
  m.label = "table 4";
  m.spec = {1, 3};
  m.cells = {{"Trinity", "host bandwidth"},
             {"Trinity", "on-socket latency"},
             {"Manzano", "host bandwidth"},
             {"Manzano", "on-socket latency"}};
  m.assigned = shardRangeFor(m.cells.size(), m.spec);
  return m;
}

TEST(ShardManifestTest, PayloadRoundTrips) {
  const TableManifest m = sampleManifest();
  const Bytes payload = encodeManifestPayload(m);
  const TableManifest back = decodeManifestPayload(payload);
  EXPECT_TRUE(back == m);
}

TEST(ShardManifestTest, RecordUsesTheEmptyMachineSentinel) {
  const TableManifest m = sampleManifest();
  const CellRecord record = manifestRecord(m);
  EXPECT_TRUE(isShardManifest(record));
  EXPECT_EQ(record.machine, "");
  EXPECT_EQ(record.cell, "table 4");
  CellRecord real;
  real.machine = "Trinity";
  real.cell = "host bandwidth";
  EXPECT_FALSE(isShardManifest(real));
}

TEST(ShardManifestTest, DecodeRejectsStructuralCorruption) {
  const TableManifest m = sampleManifest();
  const Bytes good = encodeManifestPayload(m);

  // Truncation anywhere must raise, never crash or mis-read.
  for (std::size_t len = 0; len < good.size(); ++len) {
    EXPECT_THROW((void)decodeManifestPayload({good.data(), len}),
                 JournalCorruptError)
        << "truncated to " << len;
  }

  // Trailing garbage.
  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW((void)decodeManifestPayload(trailing), JournalCorruptError);

  // Unsupported version (first u32).
  Bytes badVersion = good;
  badVersion[0] = 99;
  EXPECT_THROW((void)decodeManifestPayload(badVersion), JournalCorruptError);

  // Invalid spec: index >= count.
  TableManifest badSpec = m;
  badSpec.spec = {0, 1};
  Bytes specBytes = encodeManifestPayload(badSpec);
  specBytes[4] = 7;  // index u32 LE -> 7/1
  EXPECT_THROW((void)decodeManifestPayload(specBytes), JournalCorruptError);

  // Assigned range past the grid.
  Bytes badRange = good;
  badRange[badRange.size() - 4] = 200;  // end u32 LE
  EXPECT_THROW((void)decodeManifestPayload(badRange), JournalCorruptError);
}

TEST(ShardManifestTest, DecodeRejectsEmptyMachineGridCell) {
  TableManifest m = sampleManifest();
  m.cells[1].machine = "";
  // The encoder's contract forbids it too, so build the payload by hand.
  PayloadWriter w;
  w.putU32(1);  // version
  w.putU32(m.spec.index);
  w.putU32(m.spec.count);
  w.putString(m.label);
  w.putU32(static_cast<std::uint32_t>(m.cells.size()));
  for (const GridCell& cell : m.cells) {
    w.putString(cell.machine);
    w.putString(cell.cell);
  }
  w.putU32(0);
  w.putU32(1);
  EXPECT_THROW((void)decodeManifestPayload(w.bytes()), JournalCorruptError);
}

// --- ShardPlan ---------------------------------------------------------------

TEST(ShardPlanTest, AssignsExactlyTheCanonicalSlice) {
  const TableManifest m = sampleManifest();  // shard 1/3 of 4 cells -> [2, 3)
  ShardPlan plan(m.spec);
  std::vector<GridCell> cells = m.cells;
  plan.registerTable(m.label, std::move(cells), nullptr);
  EXPECT_FALSE(plan.assigned("Trinity", "host bandwidth"));
  EXPECT_FALSE(plan.assigned("Trinity", "on-socket latency"));
  EXPECT_TRUE(plan.assigned("Manzano", "host bandwidth"));
  EXPECT_FALSE(plan.assigned("Manzano", "on-socket latency"));
  // Cells of tables never registered are not assigned.
  EXPECT_FALSE(plan.assigned("Frontier", "device bandwidth"));
}

TEST(ShardPlanTest, ReRegisteringTheSameGridIsANoOp) {
  const TableManifest m = sampleManifest();
  ShardPlan plan(m.spec);
  plan.registerTable(m.label, m.cells, nullptr);
  EXPECT_NO_THROW(plan.registerTable(m.label, m.cells, nullptr));
  std::vector<GridCell> drifted = m.cells;
  drifted.pop_back();
  EXPECT_THROW(plan.registerTable(m.label, std::move(drifted), nullptr),
               Error);
}

TEST(ShardPlanTest, JournalsTheManifestAndVerifiesItOnResume) {
  const std::string path = tempPath("nb_shard_plan_journal");
  std::remove(path.c_str());
  const TableManifest m = sampleManifest();
  CampaignConfig cfg;
  cfg.shardIndex = m.spec.index;
  cfg.shardCount = m.spec.count;

  {
    auto journal = Journal::create(path, cfg);
    ShardPlan plan(m.spec);
    plan.registerTable(m.label, m.cells, journal.get());
    EXPECT_EQ(journal->recordCount(), 1u);
    EXPECT_EQ(journal->cellRecordCount(), 0u);  // manifests are not cells
    // Registration is idempotent against the journal too.
    plan.registerTable(m.label, m.cells, journal.get());
    EXPECT_EQ(journal->recordCount(), 1u);
  }
  {
    // Resume with the same grid: verified, not re-appended.
    auto journal = Journal::resume(path, cfg);
    ShardPlan plan(m.spec);
    EXPECT_NO_THROW(plan.registerTable(m.label, m.cells, journal.get()));
    EXPECT_EQ(journal->recordCount(), 1u);
    EXPECT_EQ(journal->appendedThisProcess(), 0u);
  }
  {
    // Resume with a drifted grid (e.g. a --machines change the config
    // fingerprint cannot see): refused, naming the label.
    auto journal = Journal::resume(path, cfg);
    ShardPlan plan(m.spec);
    std::vector<GridCell> drifted = m.cells;
    drifted[0].machine = "Eagle";
    try {
      plan.registerTable(m.label, std::move(drifted), journal.get());
      FAIL() << "expected Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("table 4"), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("does not match this run's grid"),
                std::string::npos)
          << e.what();
    }
  }
  std::remove(path.c_str());
}

// --- header shard extension --------------------------------------------------

CampaignConfig baseConfig() {
  CampaignConfig cfg;
  cfg.registryHash = 0x1122334455667788ull;
  cfg.faultPlanHash = 0;
  cfg.seed = 7;
  cfg.runs = 5;
  cfg.jobs = 1;
  return cfg;
}

TEST(ShardHeaderTest, UnshardedJournalHeaderIsByteIdenticalToPreShardFormat) {
  CampaignConfig cfg = baseConfig();
  const Bytes unsharded = Journal::encodeHeader(cfg);
  cfg.shardIndex = 1;
  cfg.shardCount = 3;
  const Bytes sharded = Journal::encodeHeader(cfg);
  // The shard spec is an optional trailing extension: exactly two u32s,
  // present only when sharded. Old readers of unsharded files see the
  // byte-exact pre-shard format.
  EXPECT_EQ(sharded.size(), unsharded.size() + 8u);
}

TEST(ShardHeaderTest, JournalHeaderRoundTripsTheShardSpec) {
  CampaignConfig cfg = baseConfig();
  cfg.shardIndex = 2;
  cfg.shardCount = 5;
  CellRecord record;
  record.machine = "Trinity";
  record.cell = "host bandwidth";
  record.attempts = 1;
  Bytes bytes = Journal::encodeHeader(cfg);
  const Bytes framed = Journal::encodeRecord(record);
  bytes.insert(bytes.end(), framed.begin(), framed.end());
  const Journal::Decoded decoded = Journal::decode(bytes);
  EXPECT_EQ(decoded.config.shardIndex, 2u);
  EXPECT_EQ(decoded.config.shardCount, 5u);
  ASSERT_EQ(decoded.records.size(), 1u);
  EXPECT_EQ(decoded.records[0].machine, "Trinity");
}

TEST(ShardHeaderTest, JournalDecodeRejectsInvalidShardSpecs) {
  CampaignConfig cfg = baseConfig();
  cfg.shardIndex = 5;
  cfg.shardCount = 3;  // index >= count
  EXPECT_THROW((void)Journal::decode(Journal::encodeHeader(cfg)),
               JournalCorruptError);
  cfg.shardIndex = 0;
  cfg.shardCount = kMaxShardCount + 1;
  EXPECT_THROW((void)Journal::decode(Journal::encodeHeader(cfg)),
               JournalCorruptError);
}

TEST(ShardHeaderTest, ConfigMismatchNamesTheShardSpec) {
  const CampaignConfig a = baseConfig();
  CampaignConfig b = baseConfig();
  b.shardIndex = 1;
  b.shardCount = 2;
  const std::string mismatch = describeConfigMismatch(a, b);
  EXPECT_NE(mismatch.find("the shard spec (--shard)"), std::string::npos)
      << mismatch;
  EXPECT_NE(mismatch.find("unsharded"), std::string::npos) << mismatch;
  EXPECT_NE(mismatch.find("1/2"), std::string::npos) << mismatch;
  // Same spec on both sides: compatible.
  CampaignConfig c = b;
  EXPECT_EQ(describeConfigMismatch(b, c), "");
}

TEST(ShardHeaderTest, StoreHeaderRoundTripsTheShardSpec) {
  CampaignConfig cfg = baseConfig();
  const Bytes unsharded = stats::ResultStore::encodeHeader(cfg);
  cfg.shardIndex = 3;
  cfg.shardCount = 4;
  const Bytes sharded = stats::ResultStore::encodeHeader(cfg);
  EXPECT_EQ(sharded.size(), unsharded.size() + 8u);
  const stats::StoreContents decoded = stats::ResultStore::decode(sharded);
  EXPECT_EQ(decoded.config.shardIndex, 3u);
  EXPECT_EQ(decoded.config.shardCount, 4u);

  cfg.shardIndex = 9;
  cfg.shardCount = 4;
  EXPECT_THROW((void)stats::ResultStore::decode(
                   stats::ResultStore::encodeHeader(cfg)),
               stats::StoreCorruptError);
}

TEST(ShardHeaderTest, StoreMismatchNamesTheShardSpec) {
  const CampaignConfig a = baseConfig();
  CampaignConfig b = baseConfig();
  b.shardIndex = 0;
  b.shardCount = 2;
  const std::string mismatch = stats::describeStoreMismatch(a, b);
  EXPECT_NE(mismatch.find("the shard spec (--shard)"), std::string::npos)
      << mismatch;
}

TEST(ShardPathTest, WorkerPathConvention) {
  EXPECT_EQ(shardPath("/tmp/c.journal", {2, 8}), "/tmp/c.journal.shard2of8");
}

}  // namespace
}  // namespace nodebench::campaign
