/// \file shard_matrix_test.cpp
/// \brief The sharded-campaign determinism matrix: for every shard
/// count in {1, 2, 3, 7, 16} x `--jobs` {1, 4} x {fair-weather,
/// faulted}, N independent worker runs merge to a journal and store
/// byte-identical to the uninterrupted single-process `--jobs 1` run.
///
/// The matrix deliberately crosses the partition edge cases: count 1
/// (the degenerate shard), 3 (uneven tail over the Table 4 grid), 7
/// (uneven nearly everywhere), and 16 (more shards than some tables
/// have cells, so whole shards contribute manifests only).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "faults/fault_plan.hpp"
#include "stats/merge.hpp"
#include "shard_test_util.hpp"

namespace nodebench::campaign {
namespace {

using shardtest::Artifacts;
using shardtest::Bytes;
using shardtest::CampaignKnobs;
using shardtest::runReference;
using shardtest::runShardWorker;
using shardtest::ScratchDir;

TEST(ShardMatrix, MergedBytesMatchSingleProcessAcrossCountsJobsAndFaults) {
  ScratchDir dir("nb_shard_matrix");
  // Two CPU + two GPU machines: Tables 4 and 5 both participate, the
  // grids stay small enough that the full matrix runs in seconds.
  const std::vector<std::string> machines = {"Trinity", "Manzano", "Frontier",
                                             "Perlmutter"};
  // The faulted variant exercises failed cells (journalled, storeless)
  // and recovered retries inside the byte-identity property.
  const faults::FaultPlan plan = faults::FaultPlan::fromJson(
      R"({"seed": 42, "faults": [
            {"type": "link-kill", "machine": "Perlmutter",
             "link": "host-gpu0"},
            {"type": "os-noise", "machine": "Frontier", "cv_factor": 2.0},
            {"type": "flaky-cell", "rate": 0.2}]})");

  for (const bool faulted : {false, true}) {
    CampaignKnobs knobs;
    knobs.machines = &machines;
    knobs.faults = faulted ? &plan : nullptr;

    const std::string tag = faulted ? "faulted" : "plain";
    const Artifacts ref = runReference(dir.path("ref-" + tag + ".journal"),
                                       dir.path("ref-" + tag + ".store"),
                                       knobs);
    ASSERT_FALSE(ref.journal.empty());
    ASSERT_FALSE(ref.store.empty());

    for (const std::uint32_t count : {1u, 2u, 3u, 7u, 16u}) {
      for (const int jobs : {1, 4}) {
        SCOPED_TRACE(tag + ", " + std::to_string(count) + " shard(s), jobs " +
                     std::to_string(jobs));
        CampaignKnobs worker = knobs;
        worker.jobs = jobs;
        const std::string base = dir.path(tag + "-n" + std::to_string(count) +
                                          "-j" + std::to_string(jobs));
        for (std::uint32_t i = 0; i < count; ++i) {
          runShardWorker(base + ".journal", base + ".store", {i, count},
                         worker);
        }

        const MergedCampaign merged =
            mergeShardJournals(shardtest::collectShardJournals(
                base + ".journal", count));
        EXPECT_EQ(merged.shardCount, count);
        EXPECT_TRUE(merged.journalBytes == ref.journal)
            << "merged journal differs from the single-process reference ("
            << merged.journalBytes.size() << " vs " << ref.journal.size()
            << " bytes)";

        std::vector<stats::ShardStoreInput> stores;
        for (std::uint32_t i = 0; i < count; ++i) {
          stores.push_back(stats::loadShardStoreInput(
              shardPath(base + ".store", {i, count})));
        }
        const Bytes mergedStore = stats::mergeShardStores(stores, merged);
        EXPECT_TRUE(mergedStore == ref.store)
            << "merged store differs from the single-process reference ("
            << mergedStore.size() << " vs " << ref.store.size() << " bytes)";
      }
    }
  }
}

TEST(ShardMatrix, MergedConfigIsNormalizedToTheReferenceRun) {
  ScratchDir dir("nb_shard_matrix_cfg");
  const std::vector<std::string> machines = {"Trinity", "Manzano"};
  CampaignKnobs knobs;
  knobs.machines = &machines;
  knobs.withTable5 = false;
  knobs.jobs = 4;
  for (std::uint32_t i = 0; i < 2; ++i) {
    runShardWorker(dir.path("c.journal"), dir.path("c.store"), {i, 2}, knobs);
  }
  const MergedCampaign merged = mergeShardJournals(
      shardtest::collectShardJournals(dir.path("c.journal"), 2));
  // The merged artifact presents as an unsharded --jobs 1 run: that is
  // the only header a byte-identical reference file can carry.
  EXPECT_EQ(merged.config.shardCount, 0u);
  EXPECT_EQ(merged.config.shardIndex, 0u);
  EXPECT_EQ(merged.config.jobs, 1u);
  EXPECT_EQ(merged.shardCount, 2u);
  // Two machines x three Table 4 cells.
  EXPECT_EQ(merged.grid.size(), 6u);
  EXPECT_EQ(merged.ownerShard.size(), 6u);
  const Journal::Decoded decoded = Journal::decode(merged.journalBytes);
  EXPECT_EQ(decoded.records.size(), 6u);
  for (const CellRecord& record : decoded.records) {
    EXPECT_FALSE(isShardManifest(record)) << "manifests must be stripped";
  }
}

}  // namespace
}  // namespace nodebench::campaign
