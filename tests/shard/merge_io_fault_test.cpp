/// \file merge_io_fault_test.cpp
/// \brief I/O fault injection on merge *output* emission: the merged
/// journal/store and the gap manifest are written via
/// campaign::io::atomicWrite, so ENOSPC, a partial write, or a failed
/// fsync must (a) surface a named error, (b) leave neither the output
/// path nor its temp file behind, (c) leave every shard *input* byte-
/// untouched, and (d) allow a clean retry that emits byte-identical
/// output — a failed merge is always re-runnable.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/io.hpp"
#include "campaign/shard.hpp"
#include "core/error.hpp"
#include "shard_test_util.hpp"

namespace nodebench::campaign {
namespace {

namespace fs = std::filesystem;

using shardtest::Bytes;
using shardtest::CampaignKnobs;
using shardtest::ScratchDir;

/// A two-way-sharded Table 4 campaign over two CPU machines, built once;
/// every case re-merges it in memory and faults only the output write.
struct MergeEmissionFixture {
  std::string journalBase;
  std::vector<ShardInput> shards;
  std::vector<Bytes> inputBytes;  ///< pristine copies for the untouched check
  Bytes mergedJournal;
};

const MergeEmissionFixture& fixture() {
  static const ScratchDir dir("nb_merge_io_fault");
  static const MergeEmissionFixture data = [] {
    static const std::vector<std::string> machines = {"Trinity", "Manzano"};
    CampaignKnobs knobs;
    knobs.machines = &machines;
    knobs.withTable5 = false;
    knobs.binaryRuns = 2;

    MergeEmissionFixture out;
    out.journalBase = dir.path("c.journal");
    for (std::uint32_t i = 0; i < 2; ++i) {
      shardtest::runShardWorker(out.journalBase, dir.path("c.store"),
                                {i, 2}, knobs);
    }
    out.shards = shardtest::collectShardJournals(out.journalBase, 2);
    for (const ShardInput& s : out.shards) {
      out.inputBytes.push_back(s.bytes);
    }
    out.mergedJournal = mergeShardJournals(out.shards).journalBytes;
    return out;
  }();
  return data;
}

class MergeIoFaultTest : public ::testing::Test {
 protected:
  std::string scratch(const std::string& leaf) {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return (fs::temp_directory_path() /
            ("nbmio-" + std::string(info->name()) + "-" + leaf))
        .string();
  }
  void TearDown() override { io::clearIoFailure(); }

  /// Arms `op`, attempts the merged-journal emission, and asserts the
  /// atomic-rollback contract.
  void expectRolledBackEmission(io::IoOp op, int err,
                                const std::string& errFragment) {
    // Materialize the fixture *before* arming the fault: its lazy first
    // build writes the shard journals, and the injected failure must hit
    // the merge emission, not the fixture's own I/O.
    const MergeEmissionFixture& fx = fixture();
    const std::string out = scratch("merged.journal");
    fs::remove(out);
    fs::remove(out + ".tmp");

    io::setIoFailure(op, 0, err);
    try {
      io::atomicWrite(out, fx.mergedJournal, "merged journal");
      FAIL() << "emission should have failed";
    } catch (const Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("merged journal"), std::string::npos) << what;
      EXPECT_NE(what.find(errFragment), std::string::npos) << what;
    }
    EXPECT_EQ(io::ioFailuresFired(), 1);
    // Atomic rollback: no output, no temp debris.
    EXPECT_FALSE(fs::exists(out)) << "failed merge left an output file";
    EXPECT_FALSE(fs::exists(out + ".tmp"))
        << "failed merge left its temp file behind";
    // The shard inputs are read-only to the merge: byte-untouched.
    for (std::size_t i = 0; i < fx.shards.size(); ++i) {
      EXPECT_EQ(shardtest::readFileBytes(fx.shards[i].name),
                fx.inputBytes[i])
          << "shard input " << fx.shards[i].name << " was modified";
    }

    // A clean retry emits byte-identical output: nothing about the
    // failure poisoned the merge.
    io::clearIoFailure();
    io::atomicWrite(out, fx.mergedJournal, "merged journal");
    EXPECT_EQ(shardtest::readFileBytes(out), fx.mergedJournal);
    fs::remove(out);
  }
};

TEST_F(MergeIoFaultTest, EnospcOnWriteRollsBackAtomically) {
  expectRolledBackEmission(io::IoOp::Write, ENOSPC, "No space left");
}

TEST_F(MergeIoFaultTest, PartialWriteThenErrorRollsBackAtomically) {
  expectRolledBackEmission(io::IoOp::PartialWrite, ENOSPC, "No space left");
}

TEST_F(MergeIoFaultTest, FsyncFailureRollsBackAtomically) {
  expectRolledBackEmission(io::IoOp::Fsync, EIO, "Input/output error");
}

TEST_F(MergeIoFaultTest, GapManifestEmissionRollsBackToo) {
  // The degrade-to-partial path writes one more artifact — the gap
  // manifest — through the same discipline.
  MergeOptions mopt;
  mopt.allowPartial = true;
  const MergedCampaign plan =
      mergeShardJournals({fixture().shards[0]}, mopt);
  ASSERT_TRUE(plan.partial);
  const std::string manifest = renderGapManifest(plan);
  const std::vector<std::uint8_t> bytes(manifest.begin(), manifest.end());

  const std::string out = scratch("merged.journal.gaps.json");
  fs::remove(out);
  io::setIoFailure(io::IoOp::Write, 0, ENOSPC);
  EXPECT_THROW(io::atomicWrite(out, bytes, "gap manifest"), Error);
  EXPECT_FALSE(fs::exists(out));
  EXPECT_FALSE(fs::exists(out + ".tmp"));

  io::clearIoFailure();
  io::atomicWrite(out, bytes, "gap manifest");
  const Bytes written = shardtest::readFileBytes(out);
  EXPECT_EQ(std::string(written.begin(), written.end()), manifest);
  fs::remove(out);
}

}  // namespace
}  // namespace nodebench::campaign
