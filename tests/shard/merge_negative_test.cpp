/// \file merge_negative_test.cpp
/// \brief The merge refusal contract: every malformed shard set —
/// mismatched fingerprints, missing/duplicate/overlapping shards, torn
/// tails, forged manifests, incomplete coverage — is refused with a
/// ShardMergeError naming the offending shard (and, for fingerprint
/// mismatches, the parameter). A merge that silently accepted any of
/// these would be exactly the reproducibility failure the shard layer
/// exists to prevent.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/shard.hpp"
#include "stats/merge.hpp"
#include "stats/store.hpp"
#include "shard_test_util.hpp"

namespace nodebench::campaign {
namespace {

using shardtest::Bytes;
using shardtest::CampaignKnobs;
using shardtest::ScratchDir;

/// One small, fully-built campaign reused by every case: Table 4 over
/// two CPU machines (six cells) split two ways, plus the unsharded
/// reference and one worker of a three-way split. Built once — the
/// negative cases mutate decoded copies, never the originals.
struct NegativeFixtureData {
  std::vector<ShardInput> good;       ///< shards 0/2 and 1/2, complete
  Bytes reference;                    ///< unsharded --jobs 1 journal
  Bytes referenceStore;               ///< its results store
  ShardInput oneOfThree;              ///< shard 1/3 of the same campaign
  std::vector<stats::ShardStoreInput> goodStores;  ///< stores 0/2, 1/2
};

const NegativeFixtureData& fixture() {
  static const NegativeFixtureData data = [] {
    static const ScratchDir dir("nb_shard_negative");
    static const std::vector<std::string> machines = {"Trinity", "Manzano"};
    CampaignKnobs knobs;
    knobs.machines = &machines;
    knobs.withTable5 = false;
    knobs.binaryRuns = 2;

    NegativeFixtureData out;
    const shardtest::Artifacts ref = shardtest::runReference(
        dir.path("ref.journal"), dir.path("ref.store"), knobs);
    out.reference = ref.journal;
    out.referenceStore = ref.store;
    for (std::uint32_t i = 0; i < 2; ++i) {
      shardtest::runShardWorker(dir.path("two.journal"), dir.path("two.store"),
                                {i, 2}, knobs);
      out.goodStores.push_back(stats::loadShardStoreInput(
          shardPath(dir.path("two.store"), {i, 2})));
    }
    out.good = shardtest::collectShardJournals(dir.path("two.journal"), 2);
    shardtest::runShardWorker(dir.path("three.journal"), dir.path("three.store"),
                              {1, 3}, knobs);
    out.oneOfThree =
        readShardInput(shardPath(dir.path("three.journal"), {1, 3}));
    return out;
  }();
  return data;
}

/// Re-serializes a decoded journal — the mutation path of every case
/// that needs to tamper with a shard's config, records, or manifests.
Bytes reencode(const Journal::Decoded& decoded) {
  Bytes out = Journal::encodeHeader(decoded.config);
  for (const CellRecord& record : decoded.records) {
    const Bytes framed = Journal::encodeRecord(record);
    out.insert(out.end(), framed.begin(), framed.end());
  }
  return out;
}

ShardInput named(std::string name, Bytes bytes) {
  return ShardInput{std::move(name), std::move(bytes)};
}

/// Runs the merge and returns the diagnostic it refused with.
std::string refusal(const std::vector<ShardInput>& shards) {
  try {
    (void)mergeShardJournals(shards);
  } catch (const ShardMergeError& e) {
    return e.what();
  }
  ADD_FAILURE() << "merge accepted a malformed shard set";
  return {};
}

std::string storeRefusal(const std::vector<stats::ShardStoreInput>& stores,
                         const MergedCampaign& plan) {
  try {
    (void)stats::mergeShardStores(stores, plan);
  } catch (const ShardMergeError& e) {
    return e.what();
  }
  ADD_FAILURE() << "store merge accepted a malformed shard set";
  return {};
}

std::size_t manifestIndex(const Journal::Decoded& decoded) {
  for (std::size_t i = 0; i < decoded.records.size(); ++i) {
    if (isShardManifest(decoded.records[i])) {
      return i;
    }
  }
  ADD_FAILURE() << "shard journal carries no manifest";
  return 0;
}

// --- shard-set shape ---------------------------------------------------------

TEST(MergeNegative, EmptySetIsRefused) {
  EXPECT_NE(refusal({}).find("at least one shard journal"),
            std::string::npos);
}

TEST(MergeNegative, UnshardedJournalIsRefused) {
  const std::string what =
      refusal({named("ref.journal", fixture().reference)});
  EXPECT_NE(what.find("not a shard journal"), std::string::npos) << what;
  EXPECT_NE(what.find("ref.journal"), std::string::npos) << what;
}

TEST(MergeNegative, MissingShardIsNamed) {
  const std::string what = refusal({fixture().good[0]});
  EXPECT_NE(what.find("shard 1/2 is missing"), std::string::npos) << what;
  EXPECT_NE(what.find("1 of 2"), std::string::npos) << what;
}

TEST(MergeNegative, DuplicateShardIsNamed) {
  const std::string what =
      refusal({fixture().good[0], fixture().good[0], fixture().good[1]});
  EXPECT_NE(what.find("shard 0/2 appears twice"), std::string::npos) << what;
}

TEST(MergeNegative, ShardCountDisagreementIsNamed) {
  const std::string what =
      refusal({fixture().good[0], fixture().oneOfThree});
  EXPECT_NE(what.find("one of 2"), std::string::npos) << what;
  EXPECT_NE(what.find("one of 3"), std::string::npos) << what;
}

TEST(MergeNegative, TornTailIsRefusedTowardResume) {
  Bytes torn = fixture().good[1].bytes;
  for (int i = 0; i < 6; ++i) {
    torn.push_back(0xff);
  }
  const std::string what =
      refusal({fixture().good[0], named("torn.journal", torn)});
  EXPECT_NE(what.find("torn tail"), std::string::npos) << what;
  EXPECT_NE(what.find("resume that shard with --resume"), std::string::npos)
      << what;
  EXPECT_NE(what.find("torn.journal"), std::string::npos) << what;
}

// --- fingerprint mismatches --------------------------------------------------

TEST(MergeNegative, SeedMismatchNamesParameterAndShard) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  d.config.seed += 1;
  const std::string what =
      refusal({fixture().good[0], named("seed.journal", reencode(d))});
  EXPECT_NE(what.find("shard 1/2"), std::string::npos) << what;
  EXPECT_NE(what.find("the fault-plan seed"), std::string::npos) << what;
}

TEST(MergeNegative, RunsMismatchNamesParameterAndShard) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  d.config.runs += 10;
  const std::string what =
      refusal({fixture().good[0], named("runs.journal", reencode(d))});
  EXPECT_NE(what.find("shard 1/2"), std::string::npos) << what;
  EXPECT_NE(what.find("--runs"), std::string::npos) << what;
}

TEST(MergeNegative, RegistryMismatchNamesParameterAndShard) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  d.config.registryHash ^= 0xdeadbeefull;
  const std::string what =
      refusal({fixture().good[0], named("reg.journal", reencode(d))});
  EXPECT_NE(what.find("the machine registry"), std::string::npos) << what;
}

TEST(MergeNegative, FaultPlanMismatchNamesParameterAndShard) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  d.config.faultPlanHash ^= 0x1234ull;
  const std::string what =
      refusal({fixture().good[0], named("plan.journal", reencode(d))});
  EXPECT_NE(what.find("the fault plan (--faults)"), std::string::npos) << what;
}

// --- manifest forgery --------------------------------------------------------

TEST(MergeNegative, MissingManifestIsRefused) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  d.records.erase(d.records.begin() +
                  static_cast<std::ptrdiff_t>(manifestIndex(d)));
  const std::string what =
      refusal({fixture().good[0], named("nomanifest.journal", reencode(d))});
  EXPECT_NE(what.find("measured different campaigns"), std::string::npos)
      << what;
}

TEST(MergeNegative, GridDriftBetweenShardsIsRefused) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  const std::size_t mi = manifestIndex(d);
  TableManifest manifest = decodeManifestPayload(d.records[mi].payload);
  manifest.cells[0].cell += " (drifted)";
  d.records[mi].payload = encodeManifestPayload(manifest);
  const std::string what =
      refusal({fixture().good[0], named("drift.journal", reencode(d))});
  EXPECT_NE(what.find("does not match the one in"), std::string::npos) << what;
  EXPECT_NE(what.find("drift.journal"), std::string::npos) << what;
}

TEST(MergeNegative, ForgedOverlappingRangeIsRefused) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  const std::size_t mi = manifestIndex(d);
  TableManifest manifest = decodeManifestPayload(d.records[mi].payload);
  // Shard 1/2 claims the whole grid — overlapping shard 0's slice.
  manifest.assigned = ShardRange{0, manifest.cells.size()};
  d.records[mi].payload = encodeManifestPayload(manifest);
  const std::string what =
      refusal({fixture().good[0], named("forged.journal", reencode(d))});
  EXPECT_NE(what.find("shard 1/2"), std::string::npos) << what;
  EXPECT_NE(what.find("canonical partition"), std::string::npos) << what;
  EXPECT_NE(what.find("overlapping or gapped"), std::string::npos) << what;
}

TEST(MergeNegative, ManifestSpecHeaderDisagreementIsRefused) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  const std::size_t mi = manifestIndex(d);
  TableManifest manifest = decodeManifestPayload(d.records[mi].payload);
  manifest.spec = ShardSpec{0, 2};  // header says 1/2
  d.records[mi].payload = encodeManifestPayload(manifest);
  const std::string what =
      refusal({fixture().good[0], named("spec.journal", reencode(d))});
  EXPECT_NE(what.find("disagrees with the journal header's"),
            std::string::npos)
      << what;
}

// --- record-level overlap and coverage ---------------------------------------

TEST(MergeNegative, RecordOwnedByAnotherShardIsRefusedAsOverlap) {
  const Journal::Decoded owner = Journal::decode(fixture().good[0].bytes);
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  // Splice one of shard 0's measured cells into shard 1's journal.
  for (const CellRecord& record : owner.records) {
    if (!isShardManifest(record)) {
      d.records.push_back(record);
      break;
    }
  }
  const std::string what =
      refusal({fixture().good[0], named("overlap.journal", reencode(d))});
  EXPECT_NE(what.find("assigned to shard 0/2"), std::string::npos) << what;
  EXPECT_NE(what.find("recorded by shard 1/2"), std::string::npos) << what;
  EXPECT_NE(what.find("overlapping shard journals"), std::string::npos)
      << what;
}

TEST(MergeNegative, DuplicateCellRecordIsRefused) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  for (const CellRecord& record : d.records) {
    if (!isShardManifest(record)) {
      d.records.push_back(record);
      break;
    }
  }
  const std::string what =
      refusal({fixture().good[0], named("dup.journal", reencode(d))});
  EXPECT_NE(what.find("twice"), std::string::npos) << what;
}

TEST(MergeNegative, RecordOutsideTheGridIsRefused) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  CellRecord stray;
  stray.machine = "Eagle";  // a real machine, but not in this campaign
  stray.cell = "host bandwidth";
  stray.attempts = 1;
  d.records.push_back(stray);
  const std::string what =
      refusal({fixture().good[0], named("stray.journal", reencode(d))});
  EXPECT_NE(what.find("not in the campaign grid"), std::string::npos) << what;
  EXPECT_NE(what.find("Eagle"), std::string::npos) << what;
}

TEST(MergeNegative, IncompleteShardIsRefusedTowardResume) {
  Journal::Decoded d = Journal::decode(fixture().good[1].bytes);
  // Drop the last measured cell, as if the worker was killed mid-run.
  for (std::size_t i = d.records.size(); i-- > 0;) {
    if (!isShardManifest(d.records[i])) {
      d.records.erase(d.records.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  const std::string what =
      refusal({fixture().good[0], named("partial.journal", reencode(d))});
  EXPECT_NE(what.find("shard 1/2"), std::string::npos) << what;
  EXPECT_NE(what.find("has not measured its assigned cell"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("resume that shard with --resume"), std::string::npos)
      << what;
}

// --- store merge negatives ---------------------------------------------------

MergedCampaign goodPlan() {
  return mergeShardJournals(fixture().good);
}

TEST(MergeNegative, GoodSetMergesAndMatchesReference) {
  const MergedCampaign merged = goodPlan();
  EXPECT_TRUE(merged.journalBytes == fixture().reference);
  const Bytes store = stats::mergeShardStores(fixture().goodStores, merged);
  EXPECT_TRUE(store == fixture().referenceStore);
}

TEST(MergeNegative, UnshardedStoreIsRefused) {
  const MergedCampaign plan = goodPlan();
  stats::ShardStoreInput bad;
  bad.name = "ref.store";
  bad.contents = stats::ResultStore::decode(fixture().referenceStore);
  const std::string what =
      storeRefusal({fixture().goodStores[0], bad}, plan);
  EXPECT_NE(what.find("not a shard store"), std::string::npos) << what;
}

TEST(MergeNegative, MissingStoreShardIsNamed) {
  const MergedCampaign plan = goodPlan();
  const std::string what = storeRefusal({fixture().goodStores[0]}, plan);
  EXPECT_NE(what.find("store shard 1/2 is missing"), std::string::npos)
      << what;
}

TEST(MergeNegative, DuplicateStoreShardIsNamed) {
  const MergedCampaign plan = goodPlan();
  const std::string what = storeRefusal(
      {fixture().goodStores[0], fixture().goodStores[0]}, plan);
  EXPECT_NE(what.find("store shard 0/2 appears twice"), std::string::npos)
      << what;
}

TEST(MergeNegative, StoreConfigMismatchNamesParameterAndShard) {
  const MergedCampaign plan = goodPlan();
  stats::ShardStoreInput bad = fixture().goodStores[1];
  bad.name = "seed.store";
  bad.contents.config.seed += 1;
  const std::string what =
      storeRefusal({fixture().goodStores[0], bad}, plan);
  EXPECT_NE(what.find("store shard 1/2"), std::string::npos) << what;
  EXPECT_NE(what.find("the fault-plan seed"), std::string::npos) << what;
}

TEST(MergeNegative, StoreRecordOwnedByAnotherShardIsRefused) {
  const MergedCampaign plan = goodPlan();
  stats::ShardStoreInput bad = fixture().goodStores[1];
  bad.name = "overlap.store";
  ASSERT_FALSE(fixture().goodStores[0].contents.records.empty());
  bad.contents.records.push_back(fixture().goodStores[0].contents.records[0]);
  const std::string what =
      storeRefusal({fixture().goodStores[0], bad}, plan);
  EXPECT_NE(what.find("overlapping shard stores"), std::string::npos) << what;
}

TEST(MergeNegative, DuplicateStoreRecordIsRefused) {
  const MergedCampaign plan = goodPlan();
  stats::ShardStoreInput bad = fixture().goodStores[1];
  bad.name = "dup.store";
  ASSERT_FALSE(bad.contents.records.empty());
  bad.contents.records.push_back(bad.contents.records[0]);
  const std::string what =
      storeRefusal({fixture().goodStores[0], bad}, plan);
  EXPECT_NE(what.find("twice"), std::string::npos) << what;
}

TEST(MergeNegative, StoreRecordOutsideTheGridIsRefused) {
  const MergedCampaign plan = goodPlan();
  stats::ShardStoreInput bad = fixture().goodStores[1];
  bad.name = "stray.store";
  ASSERT_FALSE(bad.contents.records.empty());
  stats::SampleRecord stray = bad.contents.records[0];
  stray.machine = "Eagle";
  bad.contents.records.push_back(stray);
  const std::string what =
      storeRefusal({fixture().goodStores[0], bad}, plan);
  EXPECT_NE(what.find("not in the campaign grid"), std::string::npos) << what;
}

}  // namespace
}  // namespace nodebench::campaign
