/// \file shard_concurrency_test.cpp
/// \brief The shard layer's concurrency surface, built into both the
/// shard suite and the tsan binary: worker "processes" as concurrent
/// threads (each with its own ShardPlan/journal/store, the driver's
/// spawn/collect shape) and many threads hammering one ShardPlan's
/// register/assigned paths — the real harness queries it from every
/// measurement worker while `table all` re-registers between tables.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "campaign/shard.hpp"
#include "stats/merge.hpp"
#include "shard_test_util.hpp"

namespace nodebench::campaign {
namespace {

using shardtest::Bytes;
using shardtest::CampaignKnobs;
using shardtest::ScratchDir;

TEST(ShardConcurrency, ConcurrentWorkersMergeByteIdentically) {
  ScratchDir dir("nb_shard_concurrency");
  const std::vector<std::string> machines = {"Trinity", "Manzano", "Frontier"};
  CampaignKnobs knobs;
  knobs.machines = &machines;
  knobs.binaryRuns = 2;

  const shardtest::Artifacts ref = shardtest::runReference(
      dir.path("ref.journal"), dir.path("ref.store"), knobs);

  // Three workers at --jobs 2 running concurrently, as `nodebench
  // shard` forks them — each thread owns its plan, journal and store,
  // and each plan's assigned() is queried from that worker's own pool.
  constexpr std::uint32_t kShards = 3;
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < kShards; ++i) {
    workers.emplace_back([&, i] {
      CampaignKnobs worker = knobs;
      worker.jobs = 2;
      shardtest::runShardWorker(dir.path("c.journal"), dir.path("c.store"),
                                {i, kShards}, worker);
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }

  const MergedCampaign merged = mergeShardJournals(
      shardtest::collectShardJournals(dir.path("c.journal"), kShards));
  EXPECT_TRUE(merged.journalBytes == ref.journal);

  std::vector<stats::ShardStoreInput> stores;
  for (std::uint32_t i = 0; i < kShards; ++i) {
    stores.push_back(stats::loadShardStoreInput(
        shardPath(dir.path("c.store"), {i, kShards})));
  }
  EXPECT_TRUE(stats::mergeShardStores(stores, merged) == ref.store);
}

TEST(ShardConcurrency, PlanRegistrationAndQueriesAreThreadSafe) {
  std::vector<GridCell> cells;
  for (int i = 0; i < 64; ++i) {
    cells.push_back({"machine-" + std::to_string(i % 8),
                     "cell-" + std::to_string(i)});
  }
  ShardPlan plan({1, 4});
  plan.registerTable("table A", cells, nullptr);

  // Readers race re-registration (the `table all` shape) and each
  // other; under tsan this is the lock-coverage proof for ShardPlan.
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        if (t == 0 && round % 10 == 0) {
          plan.registerTable("table A", cells, nullptr);
        }
        std::size_t assignedCount = 0;
        for (const GridCell& cell : cells) {
          if (plan.assigned(cell.machine, cell.cell)) {
            ++assignedCount;
          }
        }
        // Shard 1/4 of 64 cells always owns exactly 16 of them.
        EXPECT_EQ(assignedCount, 16u);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
}

}  // namespace
}  // namespace nodebench::campaign
