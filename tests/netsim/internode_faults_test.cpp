#include <gtest/gtest.h>

#include "machines/registry.hpp"
#include "mpisim/world.hpp"
#include "netsim/network.hpp"
#include "sim/vt_scheduler.hpp"

namespace nodebench::netsim {
namespace {

using machines::byName;

InterNodeConfig quickConfig() {
  InterNodeConfig cfg;
  cfg.binaryRuns = 10;
  cfg.iterations = 50;
  return cfg;
}

TEST(InterNodeFaults, LosslessOverrideMatchesDefaultNetwork) {
  const auto& m = byName("Frontier");
  const InterNodeConfig cfg = quickConfig();
  InterNodeConfig withOverride = cfg;
  withOverride.network = networkFor(m);  // identical parameters, rate 0
  const auto base = measureInterNode(m, cfg);
  const auto same = measureInterNode(m, withOverride);
  EXPECT_EQ(base.retransmits, 0u);
  EXPECT_EQ(same.retransmits, 0u);
  EXPECT_DOUBLE_EQ(base.latencyUs.mean, same.latencyUs.mean);
  EXPECT_DOUBLE_EQ(base.latencyUs.stddev, same.latencyUs.stddev);
}

TEST(InterNodeFaults, RetransmitsAreDeterministicUnderLoss) {
  const auto& m = byName("Frontier");
  InterNodeConfig cfg = quickConfig();
  mpisim::InterNodeParams net = networkFor(m);
  net.packetLossRate = 0.05;
  net.faultSeed = 123;
  cfg.network = net;
  const auto a = measureInterNode(m, cfg);
  const auto b = measureInterNode(m, cfg);
  EXPECT_GT(a.retransmits, 0u);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_DOUBLE_EQ(a.latencyUs.mean, b.latencyUs.mean);
  EXPECT_DOUBLE_EQ(a.latencyUs.stddev, b.latencyUs.stddev);
  EXPECT_DOUBLE_EQ(a.perPairBandwidthGBps.mean, b.perPairBandwidthGBps.mean);
}

TEST(InterNodeFaults, HigherLossMeansMoreRetransmitsAndLatency) {
  const auto& m = byName("Frontier");
  InterNodeConfig cfg = quickConfig();
  mpisim::InterNodeParams net = networkFor(m);
  net.faultSeed = 7;
  net.packetLossRate = 0.02;
  cfg.network = net;
  const auto mild = measureInterNode(m, cfg);
  net.packetLossRate = 0.3;
  cfg.network = net;
  const auto harsh = measureInterNode(m, cfg);
  EXPECT_GT(harsh.retransmits, mild.retransmits);
  EXPECT_GT(harsh.latencyUs.mean, mild.latencyUs.mean);
}

TEST(InterNodeFaults, BackoffDelaysLossyMessages) {
  // A single lossy ping-pong pair: retransmitted copies must show up both
  // in the counter and as added virtual time.
  const auto& m = byName("Eagle");
  const std::vector<mpisim::RankPlacement> ranks{
      mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 0},
      mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 1}};
  mpisim::InterNodeParams net = networkFor(m);
  const auto pingPong = [](mpisim::MpiWorld& world) {
    Duration elapsed = Duration::zero();
    world.runEach({
        [&](mpisim::Communicator& c) {
          for (int i = 0; i < 100; ++i) {
            c.send(1, i, ByteCount::bytes(8));
            c.recv(1, i, ByteCount::bytes(8));
          }
          elapsed = c.now();
        },
        [](mpisim::Communicator& c) {
          for (int i = 0; i < 100; ++i) {
            c.recv(0, i, ByteCount::bytes(8));
            c.send(0, i, ByteCount::bytes(8));
          }
        },
    });
    return elapsed;
  };

  mpisim::MpiWorld clean(m, ranks, net);
  const Duration cleanTime = pingPong(clean);
  EXPECT_EQ(clean.retransmitCount(), 0u);

  net.packetLossRate = 0.2;
  net.faultSeed = 99;
  mpisim::MpiWorld lossy(m, ranks, net);
  const Duration lossyTime = pingPong(lossy);
  EXPECT_GT(lossy.retransmitCount(), 0u);
  // Every retransmit costs at least the first backoff of 10 us.
  EXPECT_GE((lossyTime - cleanTime).us(),
            10.0 * static_cast<double>(lossy.retransmitCount()));

  // Same seed, fresh world: byte-identical behaviour.
  mpisim::MpiWorld again(m, ranks, net);
  EXPECT_EQ(pingPong(again), lossyTime);
  EXPECT_EQ(again.retransmitCount(), lossy.retransmitCount());
}

TEST(InterNodeFaults, WatchdogAbortsRetransmitStorm) {
  const auto& m = byName("Eagle");
  mpisim::InterNodeParams net = networkFor(m);
  net.packetLossRate = 0.9;
  net.faultSeed = 5;
  mpisim::MpiWorld world(
      m,
      {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 0},
       mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 1}},
      net);
  world.setWatchdog(Duration::microseconds(50.0));
  EXPECT_THROW(world.runEach({
                   [](mpisim::Communicator& c) {
                     for (int i = 0; i < 1000; ++i) {
                       c.send(1, i, ByteCount::bytes(8));
                       c.recv(1, i, ByteCount::bytes(8));
                     }
                   },
                   [](mpisim::Communicator& c) {
                     for (int i = 0; i < 1000; ++i) {
                       c.recv(0, i, ByteCount::bytes(8));
                       c.send(0, i, ByteCount::bytes(8));
                     }
                   },
               }),
               sim::TimeoutError);
}

TEST(InterNodeFaults, GivingUpAfterMaxRetransmitsThrows) {
  const auto& m = byName("Eagle");
  mpisim::InterNodeParams net = networkFor(m);
  net.packetLossRate = 0.9;
  net.maxRetransmits = 1;  // one shot per message: losses become failures
  net.faultSeed = 11;
  mpisim::MpiWorld world(
      m,
      {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 0},
       mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 1}},
      net);
  EXPECT_THROW(world.runEach({
                   [](mpisim::Communicator& c) {
                     for (int i = 0; i < 50; ++i) {
                       c.send(1, i, ByteCount::bytes(8));
                       c.recv(1, i, ByteCount::bytes(8));
                     }
                   },
                   [](mpisim::Communicator& c) {
                     for (int i = 0; i < 50; ++i) {
                       c.recv(0, i, ByteCount::bytes(8));
                       c.send(0, i, ByteCount::bytes(8));
                     }
                   },
               }),
               Error);
}

}  // namespace
}  // namespace nodebench::netsim
