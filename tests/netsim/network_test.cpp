#include "netsim/network.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"

namespace nodebench::netsim {
namespace {

using machines::byName;

TEST(Network, EveryMachineHasAnInterconnect) {
  for (const machines::Machine& m : machines::allMachines()) {
    const auto net = networkFor(m);
    EXPECT_FALSE(net.name.empty()) << m.info.name;
    EXPECT_GT(net.nicOverhead, Duration::zero()) << m.info.name;
    EXPECT_GT(net.injectionBandwidth.inGBps(), 0.0) << m.info.name;
    EXPECT_GT(net.switchRadix, 0) << m.info.name;
  }
}

TEST(Network, FamiliesMapToExpectedFabrics) {
  EXPECT_EQ(networkFor(byName("Frontier")).name, "Slingshot-11");
  EXPECT_EQ(networkFor(byName("Perlmutter")).name, "Slingshot-11");
  EXPECT_EQ(networkFor(byName("Summit")).name, "EDR-IB dual-rail");
  EXPECT_EQ(networkFor(byName("Trinity")).name, "Aries");
  EXPECT_EQ(networkFor(byName("Manzano")).name, "Omni-Path");
  EXPECT_EQ(networkFor(byName("Eagle")).name, "EDR-IB");
}

TEST(Network, HopCountRespectsLeafRadix) {
  mpisim::InterNodeParams p;
  p.switchRadix = 4;
  EXPECT_EQ(p.hops(0, 3), 1);   // same leaf
  EXPECT_EQ(p.hops(0, 4), 3);   // across the spine
  EXPECT_EQ(p.hops(5, 6), 1);
}

TEST(Network, InterNodeLatencyExceedsIntraNode) {
  const auto& m = byName("Frontier");
  InterNodeConfig cfg;
  cfg.binaryRuns = 10;
  cfg.iterations = 50;
  const auto result = measureInterNode(m, cfg);
  // Host MPI on-socket is 0.45 us; the network path must cost more.
  EXPECT_GT(result.latencyUs.mean, 1.5);
  EXPECT_LT(result.latencyUs.mean, 10.0);
}

TEST(Network, DeviceBuffersAddStagingOnV100) {
  InterNodeConfig cfg;
  cfg.binaryRuns = 5;
  cfg.iterations = 20;
  InterNodeConfig dev = cfg;
  dev.deviceBuffers = true;

  const auto& summit = byName("Summit");
  const double hostUs = measureInterNode(summit, cfg).latencyUs.mean;
  const double devUs = measureInterNode(summit, dev).latencyUs.mean;
  EXPECT_GT(devUs, hostUs + 10.0);  // ~18 us staging

  const auto& frontier = byName("Frontier");
  const double fHost = measureInterNode(frontier, cfg).latencyUs.mean;
  const double fDev = measureInterNode(frontier, dev).latencyUs.mean;
  EXPECT_LT(fDev - fHost, 1.0);  // GPU-RMA adds almost nothing
}

TEST(Network, CongestionHalvesPerPairBandwidth) {
  const auto& m = byName("Frontier");
  InterNodeConfig cfg;
  cfg.binaryRuns = 5;
  cfg.iterations = 50;
  const auto sweep = congestionSweep(m, ByteCount::kib(64), 4, cfg);
  ASSERT_EQ(sweep.size(), 3u);  // pairs = 1, 2, 4
  const double solo = sweep[0].perPairBandwidthGBps.mean;
  const double duo = sweep[1].perPairBandwidthGBps.mean;
  const double quad = sweep[2].perPairBandwidthGBps.mean;
  EXPECT_LT(duo, 0.7 * solo);
  EXPECT_LT(quad, 0.7 * duo);
  // Aggregate stays roughly flat at the NIC limit.
  EXPECT_NEAR(4.0 * quad / solo, 1.0, 0.35);
}

TEST(Network, MultiNodePlacementRequiresNetwork) {
  const auto& m = byName("Eagle");
  std::vector<mpisim::RankPlacement> ranks{
      mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 0},
      mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 1}};
  EXPECT_THROW(mpisim::MpiWorld world(m, ranks), PreconditionError);
  EXPECT_NO_THROW(mpisim::MpiWorld world(m, ranks, networkFor(m)));
}

TEST(Network, SameCoreOnDifferentNodesIsLegal) {
  // Nodes are copies of the machine: core 0 exists on each of them.
  const auto& m = byName("Eagle");
  mpisim::MpiWorld world(
      m,
      {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 0},
       mpisim::RankPlacement{topo::CoreId{0}, std::nullopt, 1}},
      networkFor(m));
  double latency = 0.0;
  world.runEach({
      [&](mpisim::Communicator& c) {
        const Duration start = c.now();
        c.send(1, 1, ByteCount::bytes(8));
        c.recv(1, 1, ByteCount::bytes(8));
        latency = (c.now() - start).us() / 2.0;
      },
      [](mpisim::Communicator& c) {
        c.recv(0, 1, ByteCount::bytes(8));
        c.send(0, 1, ByteCount::bytes(8));
      },
  });
  EXPECT_GT(latency, 1.0);  // network, not the SMP fabric
}

}  // namespace
}  // namespace nodebench::netsim
