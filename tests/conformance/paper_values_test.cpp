/// \file paper_values_test.cpp
/// \brief Paper-fidelity conformance suite (ctest label: `conformance`).
///
/// Encodes the headline numbers of Tables 1-7 of Siefert et al., "Latency
/// and Bandwidth Microbenchmarks of US DOE Systems in the June 2023
/// Top500 List" (SC-W 2023) *inline*, each with its own relative
/// tolerance, and checks the regenerated tables against them. Unlike the
/// golden suite (which drives every cell through `paper_reference`), this
/// suite is a self-contained transcription of what the paper's text and
/// tables headline — so a regression in either the simulation or the
/// reference data trips it.
///
/// Tolerances: per-cell relative, with a 0.03 absolute floor for cells
/// the paper prints as +-0.00.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "machines/registry.hpp"
#include "report/tables.hpp"

namespace nodebench::report {
namespace {

void expectCell(double measured, double paperMean, double relTol,
                const std::string& what) {
  const double tol = std::max(relTol * paperMean, 0.03);
  EXPECT_NEAR(measured, paperMean, tol) << what;
}

/// All measured tables, computed once per test binary (the expensive
/// part: a full simulated benchmark campaign).
struct Measured {
  std::vector<Cpu4Row> t4;
  std::vector<Gpu5Row> t5;
  std::vector<Gpu6Row> t6;

  static const Measured& get() {
    static const Measured m = [] {
      const TableOptions opt;
      return Measured{computeTable4(opt), computeTable5(opt),
                      computeTable6(opt)};
    }();
    return m;
  }

  [[nodiscard]] const Cpu4Row& cpu(std::string_view name) const {
    for (const Cpu4Row& r : t4) {
      if (r.machine->info.name == name) {
        return r;
      }
    }
    throw Error("no Table 4 row for " + std::string(name));
  }
  [[nodiscard]] const Gpu5Row& gpu5(std::string_view name) const {
    for (const Gpu5Row& r : t5) {
      if (r.machine->info.name == name) {
        return r;
      }
    }
    throw Error("no Table 5 row for " + std::string(name));
  }
  [[nodiscard]] const Gpu6Row& gpu6(std::string_view name) const {
    for (const Gpu6Row& r : t6) {
      if (r.machine->info.name == name) {
        return r;
      }
    }
    throw Error("no Table 6 row for " + std::string(name));
  }
};

TEST(PaperConformance, Table1OmpConfigurationGrid) {
  // Table 1: the 8 (threads, proc_bind, places) combinations of the
  // BabelStream sweep.
  const std::string t1 = buildTable1().renderAscii();
  for (const char* needle :
       {"#cores", "#threads", "\"spread\"", "\"close\"", "\"threads\"",
        "\"cores\"", "\"true\""}) {
    EXPECT_NE(t1.find(needle), std::string::npos) << needle;
  }
}

TEST(PaperConformance, Table2CpuSystemInventory) {
  // Table 2: the five non-accelerated systems with their Top500 ranks.
  EXPECT_EQ(machines::cpuMachines().size(), 5u);
  const std::string t2 = buildTable2().renderAscii();
  for (const char* needle :
       {"29. Trinity", "94. Theta", "109. Sawtooth", "127. Eagle",
        "141. Manzano"}) {
    EXPECT_NE(t2.find(needle), std::string::npos) << needle;
  }
}

TEST(PaperConformance, Table3GpuSystemInventory) {
  // Table 3: the eight accelerated systems; Frontier is #1.
  EXPECT_EQ(machines::gpuMachines().size(), 8u);
  const std::string t3 = buildTable3().renderAscii();
  for (const char* needle :
       {"1. Frontier", "5. Summit", "6. Sierra", "8. Perlmutter",
        "19. Polaris", "AMD MI250X", "NVIDIA GV100", "NVIDIA A100"}) {
    EXPECT_NE(t3.find(needle), std::string::npos) << needle;
  }
}

TEST(PaperConformance, Table4CpuHeadlines) {
  const Measured& m = Measured::get();
  // Single-core vs all-core BabelStream (GB/s) and MPI latency (us).
  expectCell(m.cpu("Trinity").singleGBps.mean, 12.36, 0.05,
             "Trinity single-core stream");
  expectCell(m.cpu("Trinity").allGBps.mean, 347.28, 0.05,
             "Trinity all-core stream (HBM)");
  expectCell(m.cpu("Theta").onSocketUs.mean, 5.95, 0.05,
             "Theta on-socket latency (KNL outlier)");
  expectCell(m.cpu("Sawtooth").allGBps.mean, 238.70, 0.11,
             "Sawtooth all-core stream");
  expectCell(m.cpu("Eagle").allGBps.mean, 208.24, 0.05,
             "Eagle all-core stream");
  expectCell(m.cpu("Eagle").onSocketUs.mean, 0.17, 0.20,
             "Eagle on-socket latency");
  expectCell(m.cpu("Manzano").singleGBps.mean, 15.27, 0.05,
             "Manzano single-core stream");
  expectCell(m.cpu("Manzano").onNodeUs.mean, 0.56, 0.10,
             "Manzano cross-socket latency");
}

TEST(PaperConformance, Table5GpuHeadlines) {
  const Measured& m = Measured::get();
  // Device BabelStream (GB/s), host-to-host and device-to-device MPI
  // latency (us).
  expectCell(m.gpu5("Frontier").deviceGBps.mean, 1336.35, 0.05,
             "Frontier HBM2e stream");
  expectCell(m.gpu5("Perlmutter").deviceGBps.mean, 1363.74, 0.05,
             "Perlmutter A100 stream");
  expectCell(m.gpu5("Summit").deviceGBps.mean, 786.43, 0.05,
             "Summit V100 stream");
  expectCell(m.gpu5("Frontier").deviceToDeviceUs[0]->mean, 0.44, 0.15,
             "Frontier GPU-RMA class A (sub-microsecond)");
  expectCell(m.gpu5("Summit").deviceToDeviceUs[0]->mean, 18.10, 0.05,
             "Summit D2D class A (host staging)");
  expectCell(m.gpu5("Summit").deviceToDeviceUs[1]->mean, 19.30, 0.05,
             "Summit D2D class B");
  expectCell(m.gpu5("Polaris").deviceToDeviceUs[0]->mean, 10.42, 0.05,
             "Polaris D2D class A");
  expectCell(m.gpu5("Tioga").hostToHostUs.mean, 0.49, 0.15,
             "Tioga host-to-host latency");
}

TEST(PaperConformance, Table6CommScopeHeadlines) {
  const Measured& m = Measured::get();
  // Kernel launch / sync wait / host<->device latency and bandwidth.
  expectCell(m.gpu6("Frontier").launchUs.mean, 1.51, 0.05,
             "Frontier kernel launch");
  expectCell(m.gpu6("Summit").launchUs.mean, 4.84, 0.05,
             "Summit kernel launch (V100 slow path)");
  expectCell(m.gpu6("Frontier").waitUs.mean, 0.14, 0.25,
             "Frontier sync wait (MI250X fast path)");
  expectCell(m.gpu6("Summit").waitUs.mean, 4.31, 0.05,
             "Summit sync wait");
  expectCell(m.gpu6("Perlmutter").hostDeviceLatencyUs.mean, 4.24, 0.05,
             "Perlmutter H<->D latency (A100 fastest)");
  expectCell(m.gpu6("Frontier").hostDeviceLatencyUs.mean, 12.91, 0.05,
             "Frontier H<->D latency (MI250X slowest)");
  expectCell(m.gpu6("Sierra").hostDeviceBandwidthGBps.mean, 63.40, 0.05,
             "Sierra H<->D bandwidth (NVLink host)");
  expectCell(m.gpu6("Polaris").hostDeviceBandwidthGBps.mean, 23.71, 0.05,
             "Polaris H<->D bandwidth (PCIe host)");
  expectCell(m.gpu6("Polaris").d2dLatencyUs[0]->mean, 32.84, 0.05,
             "Polaris D2D launch+copy (software gap)");
  expectCell(m.gpu6("Perlmutter").d2dLatencyUs[0]->mean, 14.74, 0.09,
             "Perlmutter D2D launch+copy");
}

TEST(PaperConformance, Table7SummaryRanges) {
  const Measured& m = Measured::get();
  const Table t7 = buildTable7(m.t5, m.t6);
  ASSERT_EQ(t7.rowCount(), 3u);
  EXPECT_EQ(t7.cell(0, 0), "V100");
  EXPECT_EQ(t7.cell(1, 0), "A100");
  EXPECT_EQ(t7.cell(2, 0), "MI250X");
  const std::string ascii = t7.renderAscii();
  // Headline group contrasts of the paper's summary table: V100 stream
  // ~786-861 GB/s, A100/MI250X ~1.3 TB/s, sub-microsecond MI250X MPI.
  EXPECT_NE(ascii.find("786"), std::string::npos) << ascii;
  EXPECT_NE(ascii.find("133"), std::string::npos)
      << "MI250X stream range should reach ~1336 GB/s:\n" << ascii;
  EXPECT_EQ(t7.cell(2, 2).find("0."), 0u)
      << "MI250X MPI latency range must start sub-microsecond: "
      << t7.cell(2, 2);
}

TEST(PaperConformance, HeadlineCrossMachineContrasts) {
  // The paper's three headline observations, independent of exact values:
  const Measured& m = Measured::get();
  // 1. KNL HBM makes Trinity's all-core stream the CPU leader...
  for (const char* other : {"Theta", "Sawtooth", "Eagle", "Manzano"}) {
    EXPECT_GT(m.cpu("Trinity").allGBps.mean, m.cpu(other).allGBps.mean)
        << other;
  }
  // ...while its MI250X/A100 successors triple the V100's HBM2 rate.
  EXPECT_GT(m.gpu5("Frontier").deviceGBps.mean,
            1.5 * m.gpu5("Summit").deviceGBps.mean);
  // 2. GPU-aware MPI on MI250X is ~40x faster than V100 host staging.
  EXPECT_GT(m.gpu5("Summit").deviceToDeviceUs[0]->mean,
            20.0 * m.gpu5("Frontier").deviceToDeviceUs[0]->mean);
  // 3. Kernel-launch cost halves from the V100 to the newer systems.
  EXPECT_GT(m.gpu6("Summit").launchUs.mean,
            2.0 * m.gpu6("Frontier").launchUs.mean);
}

}  // namespace
}  // namespace nodebench::report
