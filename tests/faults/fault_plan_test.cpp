#include "faults/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/error.hpp"
#include "faults/json_value.hpp"
#include "machines/registry.hpp"
#include "netsim/network.hpp"
#include "topo/topology.hpp"

namespace nodebench::faults {
namespace {

using machines::Machine;

constexpr const char* kDemoPlan = R"({
  "seed": 42,
  "faults": [
    {"type": "link-kill", "machine": "Perlmutter", "link": "host-gpu0"},
    {"type": "packet-loss", "rate": 0.05},
    {"type": "os-noise", "machine": "Frontier", "cv_factor": 2.0}
  ]
})";

TEST(JsonValue, ParsesScalarsArraysObjects) {
  const JsonValue v = JsonValue::parse(
      R"({"n": 1.5, "s": "hi", "b": true, "a": [1, 2], "o": {"k": null}})");
  EXPECT_DOUBLE_EQ(v.numberOr("n", 0.0), 1.5);
  EXPECT_EQ(v.stringOr("s", ""), "hi");
  ASSERT_NE(v.find("b"), nullptr);
  EXPECT_TRUE(v.find("b")->asBool());
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("a")->asArray().size(), 2u);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonValue, RejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse("{"), Error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": }"), Error);
  EXPECT_THROW((void)JsonValue::parse("{} trailing"), Error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\": 1e}"), Error);
}

TEST(FaultPlan, ParsesDemoPlan) {
  const FaultPlan plan = FaultPlan::fromJson(kDemoPlan);
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.faults.size(), 3u);
  EXPECT_EQ(plan.faults[0].type, FaultType::LinkKill);
  EXPECT_EQ(plan.faults[0].machine, "Perlmutter");
  EXPECT_EQ(plan.faults[0].link, "host-gpu0");
  EXPECT_EQ(plan.faults[1].type, FaultType::PacketLoss);
  EXPECT_DOUBLE_EQ(plan.faults[1].rate, 0.05);
  EXPECT_EQ(plan.faults[1].machine, "all");  // default blast radius
  EXPECT_DOUBLE_EQ(plan.faults[2].cvFactor, 2.0);
}

TEST(FaultPlan, RejectsOutOfRangeParameters) {
  EXPECT_THROW(
      (void)FaultPlan::fromJson(R"({"faults": [{"type": "packet-loss",
                                                "rate": 1.0}]})"),
      Error);
  EXPECT_THROW(
      (void)FaultPlan::fromJson(R"({"faults": [{"type": "link-degrade",
                                                "bandwidth_factor": 0}]})"),
      Error);
  EXPECT_THROW(
      (void)FaultPlan::fromJson(R"({"faults": [{"type": "gpu-ecc-stall",
                                                "added_latency_us": -1}]})"),
      Error);
  EXPECT_THROW((void)FaultPlan::fromJson(R"({"faults": [{"type": "nope"}]})"),
               Error);
  EXPECT_THROW((void)FaultPlan::fromJson(R"({"faults": [{}]})"), Error);
}

TEST(FaultPlan, LinkKillRemovesHostGpuLink) {
  const FaultPlan plan = FaultPlan::fromJson(kDemoPlan);
  const Machine& perlmutter = machines::byName("Perlmutter");
  const Machine faulted = plan.applyToMachine(perlmutter);
  // The pristine registry machine still resolves the link...
  EXPECT_NO_THROW((void)perlmutter.topology.hostGpuLink(
      perlmutter.topology.gpu(topo::GpuId{0}).socket, topo::GpuId{0}));
  // ...the faulted copy does not.
  EXPECT_THROW((void)faulted.topology.hostGpuLink(
                   faulted.topology.gpu(topo::GpuId{0}).socket,
                   topo::GpuId{0}),
               NotFoundError);
}

TEST(FaultPlan, UntouchedMachineComesBackIdentical) {
  const FaultPlan plan = FaultPlan::fromJson(
      R"({"faults": [{"type": "os-noise", "machine": "Frontier",
                      "cv_factor": 3.0}]})");
  const Machine& summit = machines::byName("Summit");
  const Machine copy = plan.applyToMachine(summit);
  EXPECT_DOUBLE_EQ(copy.hostMemory.cvSingle, summit.hostMemory.cvSingle);
  EXPECT_DOUBLE_EQ(copy.hostMpi.cv, summit.hostMpi.cv);
  EXPECT_FALSE(plan.touches("Summit"));
  EXPECT_TRUE(plan.touches("Frontier"));
}

TEST(FaultPlan, OsNoiseScalesCvButSaturatesBelowHalf) {
  const FaultPlan plan = FaultPlan::fromJson(
      R"({"faults": [{"type": "os-noise", "cv_factor": 1000.0}]})");
  const Machine faulted = plan.applyToMachine(machines::byName("Frontier"));
  // NoiseModel requires cv < 0.5; a noise storm saturates instead of
  // violating the contract.
  EXPECT_LT(faulted.hostMpi.cv, 0.5);
  EXPECT_GT(faulted.hostMpi.cv, machines::byName("Frontier").hostMpi.cv);
}

TEST(FaultPlan, LinkDegradeScalesBandwidthAndAddsLatency) {
  const FaultPlan plan = FaultPlan::fromJson(
      R"({"faults": [{"type": "link-degrade", "machine": "Perlmutter",
                      "link": "host-gpu0", "bandwidth_factor": 0.5,
                      "added_latency_us": 1.0}]})");
  const Machine& m = machines::byName("Perlmutter");
  const Machine faulted = plan.applyToMachine(m);
  const topo::SocketId socket = m.topology.gpu(topo::GpuId{0}).socket;
  const topo::Link& before = m.topology.hostGpuLink(socket, topo::GpuId{0});
  const topo::Link& after =
      faulted.topology.hostGpuLink(socket, topo::GpuId{0});
  EXPECT_NEAR(after.bandwidth.inGBps(), before.bandwidth.inGBps() * 0.5,
              1e-9);
  EXPECT_NEAR(after.latency.us(), before.latency.us() + 1.0, 1e-12);
}

TEST(FaultPlan, NetworkFaultsComposeAndSeedDerivesFromMachine) {
  const FaultPlan plan = FaultPlan::fromJson(
      R"({"seed": 7, "faults": [
            {"type": "packet-loss", "rate": 0.1},
            {"type": "packet-loss", "rate": 0.1},
            {"type": "nic-brownout", "bandwidth_factor": 0.5,
             "added_latency_us": 2.0}]})");
  const Machine& m = machines::byName("Frontier");
  mpisim::InterNodeParams base = netsim::networkFor(m);
  mpisim::InterNodeParams net = base;
  plan.applyToNetwork(m.info.name, net);
  // Two independent 10% loss processes: survive both -> 19% combined.
  EXPECT_NEAR(net.packetLossRate, 0.19, 1e-12);
  EXPECT_NEAR(net.injectionBandwidth.inGBps(),
              base.injectionBandwidth.inGBps() * 0.5, 1e-9);
  EXPECT_NEAR(net.nicOverhead.us(), base.nicOverhead.us() + 2.0, 1e-12);
  // Distinct machines get distinct (but deterministic) loss streams.
  mpisim::InterNodeParams other = base;
  plan.applyToNetwork("Summit", other);
  EXPECT_NE(net.faultSeed, other.faultSeed);
  mpisim::InterNodeParams again = base;
  plan.applyToNetwork(m.info.name, again);
  EXPECT_EQ(net.faultSeed, again.faultSeed);
}

TEST(FaultPlan, FlakyCellDrawsAreDeterministicAndRateZeroNeverFails) {
  const FaultPlan plan = FaultPlan::fromJson(
      R"({"seed": 99, "faults": [{"type": "flaky-cell", "rate": 0.5}]})");
  int failures = 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    const bool a = plan.shouldFailAttempt("Frontier", "kernel launch",
                                          attempt);
    const bool b = plan.shouldFailAttempt("Frontier", "kernel launch",
                                          attempt);
    EXPECT_EQ(a, b) << "attempt " << attempt;  // pure function
    failures += a ? 1 : 0;
  }
  // rate 0.5 over 64 attempts: both outcomes must occur.
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 64);

  const FaultPlan clean = FaultPlan::fromJson(R"({"faults": []})");
  EXPECT_FALSE(clean.shouldFailAttempt("Frontier", "kernel launch", 0));
}

TEST(FaultPlan, MachineMatchingIsCaseInsensitive) {
  const FaultPlan plan = FaultPlan::fromJson(
      R"({"faults": [{"type": "os-noise", "machine": "frontier",
                      "cv_factor": 2.0}]})");
  EXPECT_TRUE(plan.touches("Frontier"));
}

TEST(FaultPlan, SummaryListsEveryFault) {
  const FaultPlan plan = FaultPlan::fromJson(kDemoPlan);
  const std::string s = plan.summary();
  EXPECT_NE(s.find("link-kill"), std::string::npos) << s;
  EXPECT_NE(s.find("packet-loss"), std::string::npos) << s;
  EXPECT_NE(s.find("os-noise"), std::string::npos) << s;
  EXPECT_NE(s.find("seed 42"), std::string::npos) << s;
}

TEST(FaultPlan, LoadMissingFileThrows) {
  EXPECT_THROW((void)FaultPlan::load("/nonexistent/plan.json"), Error);
}

// --- Input-boundary hardening (the fuzz contract, tested branch by
// branch; see tests/fuzz/ for the corpus + mutation sweeps) --------------

TEST(JsonHardening, NestingDepthIsBounded) {
  // 64 levels parse; 65 are refused with a diagnostic, not a stack
  // overflow.
  const std::string ok(64, '[');
  EXPECT_NO_THROW((void)JsonValue::parse(ok + std::string(64, ']')));
  const std::string deep(65, '[');
  try {
    (void)JsonValue::parse(deep + std::string(65, ']'));
    FAIL() << "expected a depth error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("nesting deeper"),
              std::string::npos)
        << e.what();
  }
}

TEST(JsonHardening, RawControlCharactersInStringsAreRejected) {
  EXPECT_THROW((void)JsonValue::parse("{\"a\": \"x\ny\"}"), Error);
  EXPECT_THROW((void)JsonValue::parse(std::string("[\"\x01\"]")), Error);
  // The escaped forms stay legal.
  EXPECT_NO_THROW((void)JsonValue::parse(R"({"a": "x\ny"})"));
}

TEST(JsonHardening, InvalidUtf8InStringsIsRejected) {
  EXPECT_THROW((void)JsonValue::parse("[\"\xff\xfe\"]"), Error);
  EXPECT_THROW((void)JsonValue::parse("[\"\xc0\xaf\"]"), Error);  // overlong
  EXPECT_THROW((void)JsonValue::parse("[\"\xed\xa0\x80\"]"), Error);  // surrogate
  EXPECT_NO_THROW((void)JsonValue::parse("[\"caf\xc3\xa9\"]"));
}

TEST(JsonHardening, OversizedDocumentIsRejected) {
  // Build a >64 MiB document cheaply: one long string literal.
  std::string doc = "[\"";
  doc.append((64u << 20) + 16, 'a');
  doc += "\"]";
  EXPECT_THROW((void)JsonValue::parse(doc), Error);
}

TEST(FaultPlanHardening, LoadRejectsOversizedPlanFile) {
  const std::string path =
      ::testing::TempDir() + "nodebench_oversized_plan.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"seed\": 1, \"comment\": \"";
    const std::string filler(1u << 16, 'x');
    for (int i = 0; i < 20; ++i) {  // ~1.3 MiB > the 1 MiB plan cap
      out << filler;
    }
    out << "\"}";
  }
  try {
    (void)FaultPlan::load(path);
    FAIL() << "expected a size-cap error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("byte limit"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nodebench::faults
