#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/table.hpp"
#include "faults/fault_plan.hpp"
#include "report/tables.hpp"

namespace nodebench::report {
namespace {

TableOptions quickOptions(int jobs = 1) {
  TableOptions opt;
  opt.binaryRuns = 5;
  opt.jobs = jobs;
  return opt;
}

bool hasIncident(const std::vector<CellIncident>& incidents,
                 const std::string& machine, const std::string& cell) {
  return std::any_of(incidents.begin(), incidents.end(),
                     [&](const CellIncident& i) {
                       return i.machine == machine && i.cell == cell;
                     });
}

TEST(TablesFaults, NoPlanMeansNoIncidentsAndNoAppendix) {
  const TableOptions opt = quickOptions();
  std::vector<CellIncident> incidents;
  (void)computeTable6(opt, &incidents);
  EXPECT_TRUE(incidents.empty());
  EXPECT_EQ(renderDiagnostics(incidents), "");
}

TEST(TablesFaults, KilledHostGpuLinkDegradesExactlyTheHdCells) {
  const faults::FaultPlan plan = faults::FaultPlan::fromJson(
      R"({"faults": [{"type": "link-kill", "machine": "Perlmutter",
                      "link": "host-gpu0"}]})");
  TableOptions opt = quickOptions();
  opt.faults = &plan;
  std::vector<CellIncident> incidents;
  const auto rows = computeTable6(opt, &incidents);

  // Exactly the two cells that cross the killed link fail; D2D NVLink
  // traffic and the kernel-launch/sync probes never touch it.
  std::vector<CellIncident> failed;
  for (const CellIncident& i : incidents) {
    if (i.failed) {
      failed.push_back(i);
    }
  }
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_TRUE(hasIncident(failed, "Perlmutter", "H<->D latency"));
  EXPECT_TRUE(hasIncident(failed, "Perlmutter", "H<->D bandwidth"));
  for (const CellIncident& i : failed) {
    EXPECT_EQ(i.attempts, opt.cellRetries + 1) << i.cell;
    EXPECT_FALSE(i.error.empty()) << i.cell;
  }

  // Golden rendering: "n/a" appears in the affected row and only there.
  const Table table = renderTable6(rows, &incidents);
  const std::string text = table.renderAscii();
  EXPECT_NE(text.find("n/a"), std::string::npos) << text;
  std::size_t naLines = 0;
  std::size_t pos = 0;
  for (std::string::size_type eol; pos < text.size(); pos = eol + 1) {
    eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    const std::string line = text.substr(pos, eol - pos);
    if (line.find("n/a") != std::string::npos) {
      ++naLines;
      EXPECT_NE(line.find("Perlmutter"), std::string::npos) << line;
    }
  }
  EXPECT_EQ(naLines, 1u);

  const std::string appendix = renderDiagnostics(incidents);
  EXPECT_NE(appendix.find("n/a after 3 attempts"), std::string::npos)
      << appendix;
}

TEST(TablesFaults, FaultedComputeIsIdenticalAcrossJobCounts) {
  const faults::FaultPlan plan = faults::FaultPlan::fromJson(
      R"({"seed": 42, "faults": [
            {"type": "link-kill", "machine": "Perlmutter",
             "link": "host-gpu0"},
            {"type": "os-noise", "machine": "Frontier", "cv_factor": 2.0},
            {"type": "flaky-cell", "rate": 0.2}]})");
  const auto runAt = [&](int jobs) {
    TableOptions opt = quickOptions(jobs);
    opt.faults = &plan;
    std::vector<CellIncident> incidents;
    const auto rows = computeTable6(opt, &incidents);
    std::string out = renderTable6(rows, &incidents).renderAscii();
    out += renderDiagnostics(incidents);
    return out;
  };
  const std::string seq = runAt(1);
  const std::string par = runAt(8);
  EXPECT_EQ(seq, par);
}

TEST(TablesFaults, FlakyCellsRecoverWithRetries) {
  // A plan that only injects harness-level flakiness: with enough
  // retries every cell eventually lands, so no value degrades to n/a but
  // the recovered attempts show up in the appendix.
  const faults::FaultPlan plan = faults::FaultPlan::fromJson(
      R"({"seed": 7, "faults": [{"type": "flaky-cell", "rate": 0.3}]})");
  TableOptions opt = quickOptions();
  opt.faults = &plan;
  opt.cellRetries = 8;  // (1 - 0.3^9): retries always win eventually
  std::vector<CellIncident> incidents;
  const auto rows = computeTable4(opt, &incidents);
  EXPECT_FALSE(rows.empty());
  for (const CellIncident& i : incidents) {
    EXPECT_FALSE(i.failed) << i.machine << " / " << i.cell;
    EXPECT_GT(i.attempts, 1);
  }
  if (!incidents.empty()) {
    const std::string appendix = renderDiagnostics(incidents);
    EXPECT_NE(appendix.find("recovered"), std::string::npos) << appendix;
  }
}

TEST(TablesFaults, Table7ExcludesFailedCellsFromRanges) {
  const faults::FaultPlan plan = faults::FaultPlan::fromJson(
      R"({"faults": [{"type": "link-kill", "machine": "Perlmutter",
                      "link": "host-gpu0"}]})");
  TableOptions opt = quickOptions();
  opt.faults = &plan;
  std::vector<CellIncident> incidents;
  const auto t5 = computeTable5(opt, &incidents);
  const auto t6 = computeTable6(opt, &incidents);
  const std::string faulted = buildTable7(t5, t6, &incidents).renderAscii();
  // The A100 H2D range must not include Perlmutter's zero-initialised
  // placeholder: excluding the failed cell keeps the minimum positive.
  EXPECT_EQ(faulted.find("0.00"), std::string::npos) << faulted;
}

}  // namespace
}  // namespace nodebench::report
