#include <gtest/gtest.h>

#include <string>

#include "machines/registry.hpp"
#include "report/tables.hpp"

namespace nodebench::report {
namespace {

/// Determinism contract of the parallel harness: --jobs N output is
/// byte-identical to the sequential --jobs 1 output, for every table.
/// The tables cover every registry machine, so this exercises the full
/// (machine x cell) grid.

TableOptions withJobs(int jobs) {
  TableOptions opt;
  opt.binaryRuns = 10;  // enough for non-trivial mean/sigma cells
  opt.jobs = jobs;
  return opt;
}

TEST(TablesDeterminism, Table4IdenticalAcrossWorkerCounts) {
  const std::string seq = renderTable4(computeTable4(withJobs(1)))
                              .renderAscii();
  const std::string par = renderTable4(computeTable4(withJobs(8)))
                              .renderAscii();
  EXPECT_EQ(seq, par);
  EXPECT_FALSE(seq.empty());
}

TEST(TablesDeterminism, Table5IdenticalAcrossWorkerCounts) {
  const std::string seq = renderTable5(computeTable5(withJobs(1)))
                              .renderAscii();
  const std::string par = renderTable5(computeTable5(withJobs(8)))
                              .renderAscii();
  EXPECT_EQ(seq, par);
  EXPECT_FALSE(seq.empty());
}

TEST(TablesDeterminism, Table6IdenticalAcrossWorkerCounts) {
  const std::string seq = renderTable6(computeTable6(withJobs(1)))
                              .renderAscii();
  const std::string par = renderTable6(computeTable6(withJobs(8)))
                              .renderAscii();
  EXPECT_EQ(seq, par);
  EXPECT_FALSE(seq.empty());
}

TEST(TablesDeterminism, TablesCoverAllRegistryMachines) {
  const auto t4 = computeTable4(withJobs(8));
  const auto t5 = computeTable5(withJobs(8));
  EXPECT_EQ(t4.size(), machines::cpuMachines().size());
  EXPECT_EQ(t5.size(), machines::gpuMachines().size());
  EXPECT_EQ(t4.size() + t5.size(), machines::allMachines().size());
}

TEST(TablesDeterminism, OmpSweepIdenticalAcrossWorkerCounts) {
  const machines::Machine& m = *machines::cpuMachines().front();
  const OmpSweepResult seq = ompSweep(m, withJobs(1));
  const OmpSweepResult par = ompSweep(m, withJobs(8));
  ASSERT_EQ(seq.entries.size(), par.entries.size());
  for (std::size_t i = 0; i < seq.entries.size(); ++i) {
    EXPECT_EQ(seq.entries[i].config, par.entries[i].config);
    EXPECT_EQ(seq.entries[i].bestOpName, par.entries[i].bestOpName);
    EXPECT_EQ(seq.entries[i].bestOpGBps.mean, par.entries[i].bestOpGBps.mean);
    EXPECT_EQ(seq.entries[i].bestOpGBps.stddev,
              par.entries[i].bestOpGBps.stddev);
  }
  EXPECT_EQ(seq.bestSingle.mean, par.bestSingle.mean);
  EXPECT_EQ(seq.bestAll.mean, par.bestAll.mean);
}

}  // namespace
}  // namespace nodebench::report
