#include "report/ascii_chart.hpp"

#include <gtest/gtest.h>

namespace nodebench::report {
namespace {

std::vector<double> xsOf(int n, double base = 1.0) {
  std::vector<double> xs;
  double v = base;
  for (int i = 0; i < n; ++i) {
    xs.push_back(v);
    v *= 2.0;
  }
  return xs;
}

TEST(AsciiChart, RendersAxesLegendAndGlyphs) {
  const auto xs = xsOf(8);
  Series s{"latency", {1, 1, 1, 2, 4, 8, 16, 32}};
  ChartOptions opt;
  opt.xLabel = "size";
  opt.yLabel = "us";
  const std::string chart = renderChart(xs, {s}, opt);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find("= latency"), std::string::npos);
  EXPECT_NE(chart.find("size"), std::string::npos);
  EXPECT_NE(chart.find("us"), std::string::npos);
  EXPECT_NE(chart.find('|'), std::string::npos);
  EXPECT_NE(chart.find('+'), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesGetDistinctGlyphs) {
  const auto xs = xsOf(4);
  Series a{"a", {1, 2, 3, 4}};
  Series b{"b", {4, 3, 2, 1}};
  const std::string chart = renderChart(xs, {a, b}, ChartOptions{});
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
}

TEST(AsciiChart, MonotoneSeriesRisesLeftToRight) {
  const auto xs = xsOf(16);
  std::vector<double> ys;
  for (int i = 0; i < 16; ++i) {
    ys.push_back(1.0 + i);
  }
  ChartOptions opt;
  const std::string chart = renderChart(xs, {Series{"up", ys}}, opt);
  // First plotted row (top) must contain a glyph to the right of the
  // glyph on the last row: find column of '*' on top-most and bottom-most
  // rows containing one.
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t p = chart.find('\n'); p != std::string::npos;
       p = chart.find('\n', start)) {
    lines.push_back(chart.substr(start, p - start));
    start = p + 1;
  }
  int topCol = -1;
  int bottomCol = -1;
  for (const auto& line : lines) {
    const auto col = line.find('*');
    if (col == std::string::npos) {
      continue;
    }
    if (topCol < 0) {
      topCol = static_cast<int>(col);
    }
    bottomCol = static_cast<int>(col);
  }
  ASSERT_GE(topCol, 0);
  EXPECT_GT(topCol, bottomCol);
}

TEST(AsciiChart, FlatSeriesRenders) {
  const auto xs = xsOf(4);
  EXPECT_NO_THROW((void)renderChart(xs, {Series{"flat", {5, 5, 5, 5}}},
                                    ChartOptions{}));
}

TEST(AsciiChart, Validation) {
  const auto xs = xsOf(4);
  EXPECT_THROW((void)renderChart(xs, {}, ChartOptions{}),
               PreconditionError);
  EXPECT_THROW((void)renderChart({1.0}, {Series{"x", {1.0}}},
                                 ChartOptions{}),
               PreconditionError);
  EXPECT_THROW(
      (void)renderChart(xs, {Series{"short", {1.0, 2.0}}}, ChartOptions{}),
      PreconditionError);
  ChartOptions logOpt;
  logOpt.logY = true;
  EXPECT_THROW((void)renderChart(xs, {Series{"neg", {1, -1, 1, 1}}},
                                 logOpt),
               PreconditionError);
}

TEST(Sparkline, EncodesShape) {
  const std::string s = sparkline({0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(s.front(), ' ');
  EXPECT_EQ(s.back(), '#');
  EXPECT_EQ(sparkline({3.0}), "=");  // constant renders mid-level
  EXPECT_THROW((void)sparkline({}), PreconditionError);
}

}  // namespace
}  // namespace nodebench::report
