#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "machines/registry.hpp"
#include "report/balance.hpp"
#include "report/export.hpp"

namespace nodebench::report {
namespace {

TEST(Balance, EveryMachineContributesAHostRow) {
  const auto rows = computeBalance();
  int hostRows = 0;
  int deviceRows = 0;
  for (const auto& row : rows) {
    (row.deviceSide ? deviceRows : hostRows) += 1;
    EXPECT_GT(row.peakGflops, 0.0) << row.machine->info.name;
    EXPECT_GT(row.streamGBps, 0.0) << row.machine->info.name;
    EXPECT_GT(row.flopsPerByte(), 0.5) << row.machine->info.name;
  }
  EXPECT_EQ(hostRows, 13);
  EXPECT_EQ(deviceRows, 8);
}

TEST(Balance, DeviceBalancesMatchArchitectureExpectations) {
  const auto rows = computeBalance();
  const auto find = [&](const char* name) {
    for (const auto& row : rows) {
      if (row.deviceSide && row.machine->info.name == name) {
        return row;
      }
    }
    throw Error("missing row");
  };
  // V100: 7.8 TF / ~0.79 TB/s ~ 10; A100: 9.7 / 1.36 ~ 7;
  // MI250X GCD: 23.95 / 1.34 ~ 18.
  EXPECT_NEAR(find("Summit").flopsPerByte(), 9.9, 1.0);
  EXPECT_NEAR(find("Perlmutter").flopsPerByte(), 7.1, 1.0);
  EXPECT_NEAR(find("Frontier").flopsPerByte(), 17.9, 1.5);
  // The balance gap widened from V100-era hosts to MI250X devices.
  EXPECT_GT(find("Frontier").flopsPerByte(),
            find("Perlmutter").flopsPerByte());
}

TEST(Balance, HostStreamMatchesTable4All) {
  // The balance table's host bandwidth is the model's Table-4 "All".
  for (const auto& row : computeBalance()) {
    if (!row.deviceSide && row.machine->info.name == "Eagle") {
      EXPECT_NEAR(row.streamGBps, 208.24, 1e-6);
    }
  }
}

TEST(Balance, RenderedTableHasExpectedShape) {
  const Table t = renderBalance(computeBalance());
  EXPECT_EQ(t.columnCount(), 5u);
  EXPECT_EQ(t.rowCount(), 21u);
  const std::string ascii = t.renderAscii();
  EXPECT_NE(ascii.find("device"), std::string::npos);
  EXPECT_NE(ascii.find("host"), std::string::npos);
}

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nodebench_export_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(ExportTest, SingleTableWritesCsvMarkdownAndJson) {
  const auto paths = exportTable(buildTable2(), dir_, "t2");
  ASSERT_EQ(paths.size(), 3u);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "t2.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "t2.md"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "t2.json"));
  std::ifstream csv(dir_ / "t2.csv");
  std::string firstLine;
  std::getline(csv, firstLine);
  EXPECT_EQ(firstLine, "Rank/Name,Location,CPU");
}

TEST_F(ExportTest, ExportAllProducesTenTableTriples) {
  TableOptions opt;
  opt.binaryRuns = 3;  // keep the test fast
  const auto manifest = exportAllTables(dir_, opt);
  EXPECT_EQ(manifest.written.size(), 30u);  // 10 tables x (csv+md+json)
  for (const auto& path : manifest.written) {
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_GT(std::filesystem::file_size(path), 0u) << path;
  }
  EXPECT_TRUE(
      std::filesystem::exists(dir_ / "table5_gpu_results.csv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "machine_balance.md"));
}

TEST_F(ExportTest, RejectsEmptyStem) {
  EXPECT_THROW((void)exportTable(buildTable2(), dir_, ""),
               PreconditionError);
}

}  // namespace
}  // namespace nodebench::report
