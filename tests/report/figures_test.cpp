#include "report/figures.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"

namespace nodebench::report {
namespace {

using machines::byName;

TEST(Figures, FrontierDiagramShowsGcdsAndClasses) {
  const std::string fig = nodeDiagram(byName("Frontier"));
  EXPECT_NE(fig.find("Frontier"), std::string::npos);
  EXPECT_NE(fig.find("GCD0"), std::string::npos);
  EXPECT_NE(fig.find("GCD7"), std::string::npos);
  EXPECT_NE(fig.find("class A"), std::string::npos);
  EXPECT_NE(fig.find("class D"), std::string::npos);
}

TEST(Figures, SummitDiagramShowsSixGpusAndXbus) {
  const std::string fig = nodeDiagram(byName("Summit"));
  EXPECT_NE(fig.find("GPU5"), std::string::npos);
  EXPECT_NE(fig.find("X-Bus"), std::string::npos);
  EXPECT_NE(fig.find("NVLink2"), std::string::npos);
}

TEST(Figures, SierraDiagramShowsFourGpus) {
  const std::string fig = nodeDiagram(byName("Sierra"));
  EXPECT_NE(fig.find("GPU3"), std::string::npos);
  EXPECT_EQ(fig.find("GPU5"), std::string::npos);
}

TEST(Figures, PerlmutterDiagramShowsAllToAllNvlink) {
  const std::string fig = nodeDiagram(byName("Perlmutter"));
  EXPECT_NE(fig.find("NVLink3 all-to-all"), std::string::npos);
  EXPECT_NE(fig.find("PCIe4"), std::string::npos);
  EXPECT_NE(fig.find("GPU3"), std::string::npos);
}

TEST(Figures, CpuDiagramsDescribeTheNode) {
  const std::string xeon = nodeDiagram(byName("Sawtooth"));
  EXPECT_NE(xeon.find("socket 1"), std::string::npos);
  EXPECT_NE(xeon.find("24 cores"), std::string::npos);
  const std::string knl = nodeDiagram(byName("Trinity"));
  EXPECT_NE(knl.find("quad-cache"), std::string::npos);
  EXPECT_NE(knl.find("68 cores"), std::string::npos);
}

TEST(Figures, LegendListsEveryClassWithPairs) {
  const std::string legend = linkClassLegend(byName("Frontier"));
  EXPECT_NE(legend.find("A: (0,1)"), std::string::npos);
  EXPECT_NE(legend.find("InfinityFabricx4"), std::string::npos);
  EXPECT_NE(legend.find("routed via host"), std::string::npos);  // class D
  const std::string cpu = linkClassLegend(byName("Eagle"));
  EXPECT_NE(cpu.find("no accelerators"), std::string::npos);
}

TEST(Figures, LegendPairCountsMatchTopology) {
  // Summit: 6 GPUs, 3 per socket: class A pairs = 2 * C(3,2) = 6,
  // class B pairs = 3*3 = 9.
  const std::string legend = linkClassLegend(byName("Summit"));
  const auto countPairs = [&](char cls) {
    const auto pos = legend.find(std::string(1, cls) + std::string(": "));
    const auto end = legend.find('\n', pos);
    std::size_t n = 0;
    for (auto p = legend.find('(', pos); p != std::string::npos && p < end;
         p = legend.find('(', p + 1)) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(countPairs('A'), 6u);
  EXPECT_EQ(countPairs('B'), 9u);
}

}  // namespace
}  // namespace nodebench::report
