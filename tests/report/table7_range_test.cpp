/// Golden test of Table 7: the min-max ranges per accelerator model,
/// derived programmatically from the paper's Table 5/6 reference values
/// and compared against the measured ranges.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "report/paper_reference.hpp"
#include "report/tables.hpp"

namespace nodebench::report {
namespace {

struct Range {
  double lo = 1e300;
  double hi = -1e300;
  void add(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
};

const std::vector<std::vector<const char*>> kGroups{
    {"Summit", "Sierra", "Lassen"},
    {"Perlmutter", "Polaris"},
    {"Frontier", "RZVernal", "Tioga"}};

class Table7RangeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TableOptions opt;
    opt.binaryRuns = 20;
    t5_ = new std::vector<Gpu5Row>(computeTable5(opt));
    t6_ = new std::vector<Gpu6Row>(computeTable6(opt));
  }
  static void TearDownTestSuite() {
    delete t5_;
    delete t6_;
    t5_ = nullptr;
    t6_ = nullptr;
  }
  static std::vector<Gpu5Row>* t5_;
  static std::vector<Gpu6Row>* t6_;
};
std::vector<Gpu5Row>* Table7RangeTest::t5_ = nullptr;
std::vector<Gpu6Row>* Table7RangeTest::t6_ = nullptr;

TEST_F(Table7RangeTest, DeviceBandwidthRangesMatchPaper) {
  for (const auto& group : kGroups) {
    Range paper;
    Range measured;
    for (const char* name : group) {
      paper.add(paper::table5Row(name).deviceGBps.mean);
      for (const Gpu5Row& row : *t5_) {
        if (row.machine->info.name == name) {
          measured.add(row.deviceGBps.mean);
        }
      }
    }
    EXPECT_NEAR(measured.lo / paper.lo, 1.0, 0.01) << group[0];
    EXPECT_NEAR(measured.hi / paper.hi, 1.0, 0.01) << group[0];
  }
}

TEST_F(Table7RangeTest, ClassAMpiLatencyRangesMatchPaper) {
  for (const auto& group : kGroups) {
    Range paper;
    Range measured;
    for (const char* name : group) {
      paper.add(paper::table5Row(name).d2dUs[0]->mean);
      for (const Gpu5Row& row : *t5_) {
        if (row.machine->info.name == name) {
          measured.add(row.deviceToDeviceUs[0]->mean);
        }
      }
    }
    EXPECT_NEAR(measured.lo, paper.lo, std::max(0.05, 0.03 * paper.lo))
        << group[0];
    EXPECT_NEAR(measured.hi, paper.hi, std::max(0.05, 0.03 * paper.hi))
        << group[0];
  }
}

TEST_F(Table7RangeTest, LaunchAndWaitRangesMatchPaper) {
  for (const auto& group : kGroups) {
    Range paperLaunch;
    Range measuredLaunch;
    Range paperWait;
    Range measuredWait;
    for (const char* name : group) {
      paperLaunch.add(paper::table6Row(name).launchUs.mean);
      paperWait.add(paper::table6Row(name).waitUs.mean);
      for (const Gpu6Row& row : *t6_) {
        if (row.machine->info.name == name) {
          measuredLaunch.add(row.launchUs.mean);
          measuredWait.add(row.waitUs.mean);
        }
      }
    }
    EXPECT_NEAR(measuredLaunch.lo, paperLaunch.lo, 0.05) << group[0];
    EXPECT_NEAR(measuredLaunch.hi, paperLaunch.hi, 0.05) << group[0];
    EXPECT_NEAR(measuredWait.lo, paperWait.lo, 0.05) << group[0];
    EXPECT_NEAR(measuredWait.hi, paperWait.hi, 0.05) << group[0];
  }
}

TEST_F(Table7RangeTest, GroupsAreDisjointInDeviceMpiLatency) {
  // The paper's headline hierarchy as ranges: MI250X's max << A100's min,
  // and A100's max << V100's min.
  Range v100;
  Range a100;
  Range mi;
  for (const Gpu5Row& row : *t5_) {
    const std::string& accel = row.machine->info.acceleratorModel;
    const double lat = row.deviceToDeviceUs[0]->mean;
    if (accel.find("V100") != std::string::npos) {
      v100.add(lat);
    } else if (accel.find("A100") != std::string::npos) {
      a100.add(lat);
    } else {
      mi.add(lat);
    }
  }
  EXPECT_LT(mi.hi, a100.lo);
  EXPECT_LT(a100.hi, v100.lo);
}

}  // namespace
}  // namespace nodebench::report
