/// \file journal_test.cpp
/// \brief Campaign-journal unit tests: payload round-trips, config
/// compatibility, torn-write recovery at every byte boundary, and the
/// file-backed create/append/resume lifecycle.

#include "campaign/journal.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace nodebench::campaign {
namespace {

using Bytes = std::vector<std::uint8_t>;

CampaignConfig testConfig() {
  CampaignConfig cfg;
  cfg.registryHash = 0x1122334455667788ull;
  cfg.faultPlanHash = 0xdeadbeefcafef00dull;
  cfg.seed = 42;
  cfg.runs = 100;
  cfg.jobs = 8;
  cfg.cellRetries = 2;
  cfg.cpuArrayBytes = 128ull << 20;
  cfg.gpuArrayBytes = 1ull << 30;
  cfg.mpiMessageSize = 8;
  return cfg;
}

std::vector<CellRecord> testRecords() {
  std::vector<CellRecord> records;
  CellRecord ok;
  ok.machine = "Frontier";
  ok.cell = "T5 babelstream";
  ok.attempts = 1;
  PayloadWriter w;
  Summary s;
  s.count = 100;
  s.mean = 1.5;
  s.stddev = 0.25;
  s.min = 1.0;
  s.max = 2.5;
  putSummary(w, s);
  ok.payload = w.bytes();
  records.push_back(ok);

  CellRecord failed;
  failed.machine = "Theta";
  failed.cell = "T4 stream-triad";
  failed.attempts = 3;
  failed.failed = true;
  failed.error = "injected: link flap";
  records.push_back(failed);

  CellRecord unicode;
  unicode.machine = "Perlmutter";
  unicode.cell = "cell \xc3\xa9\xe2\x82\xac";  // multi-byte UTF-8 is legal
  unicode.attempts = 2;
  PayloadWriter w2;
  putSummary(w2, Summary{});
  unicode.payload = w2.bytes();
  records.push_back(unicode);
  return records;
}

/// header bytes + every record's frame, plus the frame boundaries
/// (offsets where record i ends) for the torn-write sweeps.
struct EncodedJournal {
  Bytes bytes;
  std::vector<std::size_t> recordEnds;  // absolute offsets, one per record
  std::size_t headerSize = 0;
};

EncodedJournal encodeTestJournal() {
  EncodedJournal out;
  out.bytes = Journal::encodeHeader(testConfig());
  out.headerSize = out.bytes.size();
  for (const CellRecord& rec : testRecords()) {
    const Bytes frame = Journal::encodeRecord(rec);
    out.bytes.insert(out.bytes.end(), frame.begin(), frame.end());
    out.recordEnds.push_back(out.bytes.size());
  }
  return out;
}

void expectRecordsEqual(const CellRecord& a, const CellRecord& b) {
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_EQ(a.cell, b.cell);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.payload, b.payload);
}

TEST(JournalPayload, RoundTripsScalarsAndStrings) {
  PayloadWriter w;
  w.putU32(0xdeadbeefu);
  w.putU64(0x0123456789abcdefull);
  w.putF64(-1.5e300);
  w.putString("grüße");  // exercises multi-byte UTF-8
  PayloadReader r(w.bytes());
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.f64(), -1.5e300);
  EXPECT_EQ(r.string(), "grüße");
  EXPECT_TRUE(r.atEnd());
}

TEST(JournalPayload, SummaryRoundTripIsBitExact) {
  Summary s;
  s.count = 100;
  s.mean = 0.1 + 0.2;  // a value with no short decimal representation
  s.stddev = 1.0 / 3.0;
  s.min = 5e-324;  // denormal min
  s.max = 1.7976931348623157e308;
  PayloadWriter w;
  putSummary(w, s);
  PayloadReader r(w.bytes());
  const Summary back = readSummary(r);
  EXPECT_EQ(back.count, s.count);
  EXPECT_EQ(back.mean, s.mean);
  EXPECT_EQ(back.stddev, s.stddev);
  EXPECT_EQ(back.min, s.min);
  EXPECT_EQ(back.max, s.max);
}

TEST(JournalPayload, OverrunThrowsJournalCorrupt) {
  PayloadWriter w;
  w.putU32(7);
  PayloadReader r(w.bytes());
  (void)r.u32();
  EXPECT_THROW((void)r.u32(), JournalCorruptError);
}

TEST(JournalDecode, HeaderAndRecordsRoundTrip) {
  const EncodedJournal enc = encodeTestJournal();
  const Journal::Decoded d = Journal::decode(enc.bytes);
  EXPECT_TRUE(d.warnings.empty());
  EXPECT_EQ(d.validBytes, enc.bytes.size());
  const CampaignConfig cfg = testConfig();
  EXPECT_EQ(d.config.registryHash, cfg.registryHash);
  EXPECT_EQ(d.config.faultPlanHash, cfg.faultPlanHash);
  EXPECT_EQ(d.config.seed, cfg.seed);
  EXPECT_EQ(d.config.runs, cfg.runs);
  EXPECT_EQ(d.config.jobs, cfg.jobs);
  EXPECT_EQ(d.config.cellRetries, cfg.cellRetries);
  EXPECT_EQ(d.config.cpuArrayBytes, cfg.cpuArrayBytes);
  EXPECT_EQ(d.config.gpuArrayBytes, cfg.gpuArrayBytes);
  EXPECT_EQ(d.config.mpiMessageSize, cfg.mpiMessageSize);
  const std::vector<CellRecord> expected = testRecords();
  ASSERT_EQ(d.records.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expectRecordsEqual(d.records[i], expected[i]);
  }
}

TEST(JournalDecode, RejectsForeignAndEmptyInput) {
  EXPECT_THROW((void)Journal::decode(Bytes{}), JournalCorruptError);
  const std::string text = "{\"not\": \"a journal\"}";
  Bytes bytes(text.begin(), text.end());
  EXPECT_THROW((void)Journal::decode(bytes), JournalCorruptError);
}

TEST(JournalConfig, EveryMismatchedParameterIsNamed) {
  const CampaignConfig base = testConfig();
  EXPECT_EQ(describeConfigMismatch(base, base), "");

  struct Case {
    void (*mutate)(CampaignConfig&);
    const char* expectInMessage;
  };
  const Case cases[] = {
      {[](CampaignConfig& c) { c.registryHash ^= 1; }, "machine registry"},
      {[](CampaignConfig& c) { c.faultPlanHash ^= 1; }, "fault plan"},
      {[](CampaignConfig& c) { c.seed ^= 1; }, "seed"},
      {[](CampaignConfig& c) { c.runs += 1; }, "--runs"},
      {[](CampaignConfig& c) { c.cellRetries += 1; }, "retry"},
      {[](CampaignConfig& c) { c.cpuArrayBytes += 1; }, "CPU array"},
      {[](CampaignConfig& c) { c.gpuArrayBytes += 1; }, "GPU array"},
      {[](CampaignConfig& c) { c.mpiMessageSize += 1; }, "MPI message"},
  };
  for (const Case& c : cases) {
    CampaignConfig changed = base;
    c.mutate(changed);
    const std::string msg = describeConfigMismatch(base, changed);
    EXPECT_NE(msg.find("journal configuration mismatch"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find(c.expectInMessage), std::string::npos) << msg;
  }
}

TEST(JournalConfig, JobsDifferenceIsCompatible) {
  // --jobs is provenance, not configuration: harness output is
  // byte-identical at any worker count, so resuming at a different
  // parallelism must be allowed.
  const CampaignConfig base = testConfig();
  CampaignConfig other = base;
  other.jobs = 1;
  EXPECT_EQ(describeConfigMismatch(base, other), "");
}

// --- Torn-write recovery sweeps ---------------------------------------------

TEST(JournalTornWrites, TruncationAtEveryByteRecoversOrDiagnoses) {
  const EncodedJournal enc = encodeTestJournal();
  for (std::size_t cut = 0; cut < enc.bytes.size(); ++cut) {
    Bytes torn(enc.bytes.begin(),
               enc.bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    if (cut < enc.headerSize) {
      // No complete header: the file is unusable, not resumable.
      EXPECT_THROW((void)Journal::decode(torn), JournalCorruptError)
          << "cut at byte " << cut;
      continue;
    }
    // A complete header: every cut must recover the longest valid record
    // prefix, warning (not throwing) when the cut leaves a partial tail.
    Journal::Decoded d;
    ASSERT_NO_THROW(d = Journal::decode(torn)) << "cut at byte " << cut;
    std::size_t fullRecords = 0;
    std::size_t prefixEnd = enc.headerSize;
    for (const std::size_t end : enc.recordEnds) {
      if (end <= cut) {
        ++fullRecords;
        prefixEnd = end;
      }
    }
    EXPECT_EQ(d.records.size(), fullRecords) << "cut at byte " << cut;
    EXPECT_EQ(d.validBytes, prefixEnd) << "cut at byte " << cut;
    EXPECT_EQ(d.warnings.empty(), cut == prefixEnd) << "cut at byte " << cut;
  }
}

TEST(JournalTornWrites, BitFlipAtEveryRecordByteDropsTheDamagedTail) {
  const EncodedJournal enc = encodeTestJournal();
  for (std::size_t pos = enc.headerSize; pos < enc.bytes.size(); ++pos) {
    Bytes flipped = enc.bytes;
    flipped[pos] ^= 0x01;
    // The flipped record's CRC (or framing) no longer matches, so decode
    // keeps exactly the records before it and warns about the tail.
    std::size_t damagedIndex = 0;
    std::size_t prefixEnd = enc.headerSize;
    while (enc.recordEnds[damagedIndex] <= pos) {
      prefixEnd = enc.recordEnds[damagedIndex];
      ++damagedIndex;
    }
    Journal::Decoded d;
    ASSERT_NO_THROW(d = Journal::decode(flipped)) << "flip at byte " << pos;
    EXPECT_EQ(d.records.size(), damagedIndex) << "flip at byte " << pos;
    EXPECT_EQ(d.validBytes, prefixEnd) << "flip at byte " << pos;
    EXPECT_FALSE(d.warnings.empty()) << "flip at byte " << pos;
  }
}

TEST(JournalTornWrites, BitFlipInHeaderIsCorruption) {
  const EncodedJournal enc = encodeTestJournal();
  for (std::size_t pos = 0; pos < enc.headerSize; ++pos) {
    Bytes flipped = enc.bytes;
    flipped[pos] ^= 0x01;
    EXPECT_THROW((void)Journal::decode(flipped), JournalCorruptError)
        << "flip at byte " << pos;
  }
}

// --- File-backed lifecycle ---------------------------------------------------

class JournalFileTest : public ::testing::Test {
 protected:
  std::string path() const {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return (std::filesystem::temp_directory_path() /
            (std::string("nodebench_journal_") + info->name() + ".bin"))
        .string();
  }

  void SetUp() override { std::filesystem::remove(path()); }
  void TearDown() override { std::filesystem::remove(path()); }
};

TEST_F(JournalFileTest, CreateAppendResumeReplays) {
  const CampaignConfig cfg = testConfig();
  {
    auto journal = Journal::create(path(), cfg);
    for (const CellRecord& rec : testRecords()) {
      journal->append(rec);
    }
    EXPECT_EQ(journal->recordCount(), 3u);
    EXPECT_EQ(journal->appendedThisProcess(), 3u);
  }
  auto resumed = Journal::resume(path(), cfg);
  EXPECT_TRUE(resumed->warnings().empty());
  EXPECT_EQ(resumed->recordCount(), 3u);
  EXPECT_EQ(resumed->appendedThisProcess(), 0u);
  const CellRecord* rec = resumed->find("Frontier", "T5 babelstream");
  ASSERT_NE(rec, nullptr);
  expectRecordsEqual(*rec, testRecords()[0]);
  EXPECT_EQ(resumed->find("Frontier", "no such cell"), nullptr);
}

TEST_F(JournalFileTest, AppendIsIdempotentPerCell) {
  auto journal = Journal::create(path(), testConfig());
  journal->append(testRecords()[0]);
  journal->append(testRecords()[0]);  // e.g. `table all` recomputing T5
  EXPECT_EQ(journal->recordCount(), 1u);
  EXPECT_EQ(journal->appendedThisProcess(), 1u);
}

TEST_F(JournalFileTest, CreateRefusesExistingFile) {
  { auto journal = Journal::create(path(), testConfig()); }
  EXPECT_THROW((void)Journal::create(path(), testConfig()), Error);
}

TEST_F(JournalFileTest, ResumeRefusesChangedConfigNamingParameter) {
  { auto journal = Journal::create(path(), testConfig()); }
  CampaignConfig changed = testConfig();
  changed.runs = 7;
  try {
    (void)Journal::resume(path(), changed);
    FAIL() << "expected JournalConfigMismatchError";
  } catch (const JournalConfigMismatchError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--runs"), std::string::npos) << what;
    EXPECT_NE(what.find("100"), std::string::npos) << what;
    EXPECT_NE(what.find("7"), std::string::npos) << what;
  }
}

TEST_F(JournalFileTest, ResumeTruncatesTornTailOnDisk) {
  const CampaignConfig cfg = testConfig();
  {
    auto journal = Journal::create(path(), cfg);
    journal->append(testRecords()[0]);
    journal->append(testRecords()[1]);
  }
  const auto fullSize = std::filesystem::file_size(path());
  {
    // Simulate a crash mid-append: 5 bytes of a partial record frame.
    std::ofstream out(path(), std::ios::binary | std::ios::app);
    out.write("\x21\x00\x00\x00\x7f", 5);
  }
  auto resumed = Journal::resume(path(), cfg);
  ASSERT_FALSE(resumed->warnings().empty());
  EXPECT_NE(resumed->warnings()[0].find("torn tail truncated"),
            std::string::npos)
      << resumed->warnings()[0];
  EXPECT_EQ(resumed->recordCount(), 2u);
  // The rewrite restored the valid prefix on disk: a second resume is
  // warning-free and the file is back to its pre-crash size.
  EXPECT_EQ(std::filesystem::file_size(path()), fullSize);
  resumed.reset();
  auto again = Journal::resume(path(), cfg);
  EXPECT_TRUE(again->warnings().empty());
  EXPECT_EQ(again->recordCount(), 2u);
}

TEST_F(JournalFileTest, AppendAfterResumeExtendsTheFile) {
  const CampaignConfig cfg = testConfig();
  {
    auto journal = Journal::create(path(), cfg);
    journal->append(testRecords()[0]);
  }
  {
    auto resumed = Journal::resume(path(), cfg);
    resumed->append(testRecords()[1]);
    EXPECT_EQ(resumed->recordCount(), 2u);
    EXPECT_EQ(resumed->appendedThisProcess(), 1u);
  }
  auto final = Journal::resume(path(), cfg);
  EXPECT_EQ(final->recordCount(), 2u);
  ASSERT_NE(final->find("Theta", "T4 stream-triad"), nullptr);
  EXPECT_TRUE(final->find("Theta", "T4 stream-triad")->failed);
}

}  // namespace
}  // namespace nodebench::campaign
