/// \file bench_args_test.cpp
/// \brief Unit tests for the shared bench-harness argument parser:
/// duplicate-flag rejection (no silent last-wins), journal/resume flag
/// plumbing, and strict value validation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_common.hpp"

namespace nodebench::benchtool {
namespace {

using Args = std::vector<std::string>;

TEST(BenchArgs, DefaultsMatchThePaperMethodology) {
  const BenchArgs parsed = parseBenchArgs({});
  EXPECT_EQ(parsed.options.binaryRuns, 100);
  EXPECT_EQ(parsed.options.jobs, 0);
  EXPECT_FALSE(parsed.journalPath.has_value());
  EXPECT_FALSE(parsed.storePath.has_value());
  EXPECT_FALSE(parsed.resume);
  EXPECT_TRUE(parsed.positional.empty());
}

TEST(BenchArgs, ParsesRunsJobsJournalResumeAndPositionals) {
  const BenchArgs parsed = parseBenchArgs(
      Args{"--runs", "7", "Frontier", "--jobs", "3", "--journal",
           "campaign.bin", "--resume"});
  EXPECT_EQ(parsed.options.binaryRuns, 7);
  EXPECT_EQ(parsed.options.jobs, 3);
  ASSERT_TRUE(parsed.journalPath.has_value());
  EXPECT_EQ(*parsed.journalPath, "campaign.bin");
  EXPECT_TRUE(parsed.resume);
  ASSERT_EQ(parsed.positional.size(), 1u);
  EXPECT_EQ(parsed.positional[0], "Frontier");
}

TEST(BenchArgs, DuplicateFlagsAreErrorsNotLastWins) {
  for (const Args& args :
       {Args{"--runs", "5", "--runs", "6"}, Args{"--jobs", "1", "--jobs", "2"},
        Args{"--journal", "a.bin", "--journal", "b.bin"},
        Args{"--store", "a.bin", "--store", "b.bin"},
        Args{"--resume", "--journal", "a.bin", "--resume"}}) {
    try {
      (void)parseBenchArgs(args);
      FAIL() << "expected a duplicate-flag error for " << args[0];
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("duplicate flag"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(BenchArgs, RejectsMissingOrInvalidValues) {
  EXPECT_THROW((void)parseBenchArgs(Args{"--runs"}), Error);
  EXPECT_THROW((void)parseBenchArgs(Args{"--runs", "0"}), Error);
  EXPECT_THROW((void)parseBenchArgs(Args{"--runs", "5x"}), Error);
  EXPECT_THROW((void)parseBenchArgs(Args{"--jobs", "-1"}), Error);
  EXPECT_THROW((void)parseBenchArgs(Args{"--journal"}), Error);
  EXPECT_THROW((void)parseBenchArgs(Args{"--store"}), Error);
  EXPECT_THROW((void)parseBenchArgs(Args{"--frobnicate"}), Error);
}

TEST(BenchArgs, ParsesStoreAloneAndWithJournal) {
  const BenchArgs alone = parseBenchArgs(Args{"--store", "results.bin"});
  ASSERT_TRUE(alone.storePath.has_value());
  EXPECT_EQ(*alone.storePath, "results.bin");
  EXPECT_FALSE(alone.resume);

  // --store composes with a resumed journal campaign: the store is
  // reattached under the same (validated) configuration fingerprint.
  const BenchArgs both = parseBenchArgs(
      Args{"--journal", "campaign.bin", "--resume", "--store", "results.bin"});
  ASSERT_TRUE(both.journalPath.has_value());
  ASSERT_TRUE(both.storePath.has_value());
  EXPECT_TRUE(both.resume);
}

TEST(BenchArgs, ResumeRequiresAJournal) {
  try {
    (void)parseBenchArgs(Args{"--resume"});
    FAIL() << "expected an error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--resume requires --journal"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace nodebench::benchtool
