/// \file resume_integration_test.cpp
/// \brief End-to-end resume property: a campaign interrupted after any
/// number of completed cells and resumed at any `--jobs` renders tables
/// byte-identical to an uninterrupted run.
///
/// This file is also compiled into the tsan-labelled concurrency binary:
/// journal appends and replays happen concurrently from harness worker
/// threads, so the whole resume path runs under ThreadSanitizer in the
/// `-DNODEBENCH_SANITIZE=thread` configuration.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "report/tables.hpp"

namespace nodebench::report {
namespace {

std::string tempJournalPath(const std::string& tag) {
  // This file is compiled into two test binaries (campaign + tsan) that
  // ctest may run concurrently; the pid keeps their journals apart.
  return (std::filesystem::temp_directory_path() /
          ("nodebench_resume_" + tag + "_" + std::to_string(::getpid()) +
           ".bin"))
      .string();
}

void writeBytes(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::string renderedTable4(const TableOptions& opt) {
  std::vector<CellIncident> incidents;
  const auto rows = computeTable4(opt, &incidents);
  return renderTable4(rows, &incidents).renderAscii();
}

TEST(CampaignResume, Table4ByteIdenticalAfterInterruptionAtEveryCell) {
  TableOptions opt;
  opt.binaryRuns = 3;
  opt.jobs = 1;
  const std::string plain = renderedTable4(opt);

  const std::string path = tempJournalPath("t4");
  std::filesystem::remove(path);
  const campaign::CampaignConfig cfg = campaignConfig(opt);

  // Full journalled run: output unchanged, journal populated.
  {
    auto journal = campaign::Journal::create(path, cfg);
    TableOptions jopt = opt;
    jopt.journal = journal.get();
    EXPECT_EQ(renderedTable4(jopt), plain);
    EXPECT_GT(journal->recordCount(), 0u);
  }
  const campaign::Journal::Decoded full = [&] {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                    std::istreambuf_iterator<char>());
    return campaign::Journal::decode(bytes);
  }();
  ASSERT_FALSE(full.records.empty());

  // Interrupt after k cells for a spread of k, then resume at a
  // different --jobs: replay k records, measure the rest, and the
  // rendered table must not move by a byte.
  const std::size_t n = full.records.size();
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, n / 2, n - 1}) {
    std::vector<std::uint8_t> partial =
        campaign::Journal::encodeHeader(full.config);
    for (std::size_t i = 0; i < k; ++i) {
      const auto frame = campaign::Journal::encodeRecord(full.records[i]);
      partial.insert(partial.end(), frame.begin(), frame.end());
    }
    writeBytes(path, partial);
    auto resumed = campaign::Journal::resume(path, cfg);
    EXPECT_EQ(resumed->recordCount(), k);
    TableOptions ropt = opt;
    ropt.jobs = 8;
    ropt.journal = resumed.get();
    EXPECT_EQ(renderedTable4(ropt), plain) << "resumed after " << k
                                           << " of " << n << " cells";
    EXPECT_EQ(resumed->recordCount(), n);
  }
  std::filesystem::remove(path);
}

TEST(CampaignResume, Table5And6ReplayIsByteIdenticalAcrossJobs) {
  TableOptions opt;
  opt.binaryRuns = 2;
  opt.jobs = 2;

  const std::string path = tempJournalPath("t56");
  std::filesystem::remove(path);
  const campaign::CampaignConfig cfg = campaignConfig(opt);

  std::string first5;
  std::string first6;
  {
    auto journal = campaign::Journal::create(path, cfg);
    TableOptions jopt = opt;
    jopt.journal = journal.get();
    std::vector<CellIncident> incidents;
    first5 = renderTable5(computeTable5(jopt, &incidents), &incidents)
                 .renderAscii();
    incidents.clear();
    first6 = renderTable6(computeTable6(jopt, &incidents), &incidents)
                 .renderAscii();
  }
  // Pure replay at another worker count: every cell comes from the
  // journal, nothing is re-measured, output is byte-identical.
  {
    auto resumed = campaign::Journal::resume(path, cfg);
    const std::size_t replayed = resumed->recordCount();
    TableOptions ropt = opt;
    ropt.jobs = 5;
    ropt.journal = resumed.get();
    std::vector<CellIncident> incidents;
    EXPECT_EQ(renderTable5(computeTable5(ropt, &incidents), &incidents)
                  .renderAscii(),
              first5);
    incidents.clear();
    EXPECT_EQ(renderTable6(computeTable6(ropt, &incidents), &incidents)
                  .renderAscii(),
              first6);
    EXPECT_EQ(resumed->recordCount(), replayed);
    EXPECT_EQ(resumed->appendedThisProcess(), 0u);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace nodebench::report
