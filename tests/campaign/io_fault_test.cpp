/// \file io_fault_test.cpp
/// \brief I/O fault-injection tests for the durable-write layer
/// (campaign/io.hpp): ENOSPC/EIO on write, partial-write-then-fail, and
/// fsync failure against both the campaign journal and the NBRS results
/// store. The properties under test: a failed append (a) surfaces a
/// named error ("journal ... No space left on device"), (b) never leaves
/// a torn frame on disk — the file reopens cleanly with exactly the
/// records appended before the fault — and (c) the handle stays usable:
/// the next append succeeds.

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/io.hpp"
#include "campaign/journal.hpp"
#include "core/error.hpp"
#include "stats/store.hpp"

namespace nodebench::campaign {
namespace {

namespace fs = std::filesystem;

CampaignConfig testConfig() {
  CampaignConfig cfg;
  cfg.registryHash = 0x1111222233334444ull;
  cfg.faultPlanHash = 0;
  cfg.seed = 7;
  cfg.runs = 5;
  cfg.jobs = 1;
  cfg.cellRetries = 2;
  cfg.cpuArrayBytes = 1 << 20;
  cfg.gpuArrayBytes = 1 << 20;
  cfg.mpiMessageSize = 8;
  return cfg;
}

CellRecord cell(const std::string& machine, int n) {
  CellRecord r;
  r.machine = machine;
  r.cell = "cell-" + std::to_string(n);
  r.attempts = 1;
  r.payload = {0xAB, 0xCD, static_cast<std::uint8_t>(n)};
  return r;
}

stats::SampleRecord sample(const std::string& machine, int n) {
  stats::SampleRecord r;
  r.machine = machine;
  r.cell = "cell-" + std::to_string(n);
  r.quantity = "latency";
  r.unit = "us";
  r.better = stats::Better::Lower;
  r.samples = {1.0, 2.0, 3.0};
  r.summary.count = 3;
  r.summary.mean = 2.0;
  r.summary.min = 1.0;
  r.summary.max = 3.0;
  return r;
}

class IoFaultTest : public ::testing::Test {
 protected:
  std::string scratch(const std::string& leaf) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    return (fs::temp_directory_path() /
            ("nbio-" + std::string(info->name()) + "-" + leaf))
        .string();
  }
  void TearDown() override { io::clearIoFailure(); }
};

TEST_F(IoFaultTest, JournalAppendEnospcRollsBackAndNamesTheSubsystem) {
  const std::string path = scratch("a.journal");
  fs::remove(path);
  auto journal = Journal::create(path, testConfig());
  journal->append(cell("Theta", 1));
  const auto sizeBefore = fs::file_size(path);

  io::setIoFailure(io::IoOp::Write, 0, ENOSPC);
  try {
    journal->append(cell("Theta", 2));
    FAIL() << "append should have failed";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("journal"), std::string::npos) << what;
    EXPECT_NE(what.find("No space left"), std::string::npos) << what;
  }
  EXPECT_EQ(io::ioFailuresFired(), 1);
  // Rollback: the failed frame left no bytes behind.
  EXPECT_EQ(fs::file_size(path), sizeBefore);

  // The handle survives: the next append lands, and a fresh resume sees
  // exactly the successful records with no torn-tail warnings.
  journal->append(cell("Theta", 2));
  journal.reset();
  auto resumed = Journal::resume(path, testConfig());
  EXPECT_TRUE(resumed->warnings().empty());
  EXPECT_EQ(resumed->recordCount(), 2u);
  EXPECT_NE(resumed->find("Theta", "cell-2"), nullptr);
}

TEST_F(IoFaultTest, JournalPartialWriteThenEioRollsBack) {
  const std::string path = scratch("b.journal");
  fs::remove(path);
  auto journal = Journal::create(path, testConfig());
  journal->append(cell("Eagle", 1));
  const auto sizeBefore = fs::file_size(path);

  // The worst case: half the frame reaches the disk, then the device
  // errors. Without rollback this is exactly a torn frame.
  io::setIoFailure(io::IoOp::PartialWrite, 0, EIO);
  EXPECT_THROW(journal->append(cell("Eagle", 2)), Error);
  EXPECT_EQ(io::ioFailuresFired(), 1);
  EXPECT_EQ(fs::file_size(path), sizeBefore);

  journal.reset();
  auto resumed = Journal::resume(path, testConfig());
  EXPECT_TRUE(resumed->warnings().empty());
  EXPECT_EQ(resumed->recordCount(), 1u);
}

TEST_F(IoFaultTest, JournalFsyncFailureRollsBackTheFrame) {
  const std::string path = scratch("c.journal");
  fs::remove(path);
  auto journal = Journal::create(path, testConfig());
  const auto sizeBefore = fs::file_size(path);

  // The write lands fully but is not durable; the append must not
  // report success, and the frame is rolled back so the on-disk state
  // matches what the caller was told.
  io::setIoFailure(io::IoOp::Fsync, 0, EIO);
  EXPECT_THROW(journal->append(cell("Manzano", 1)), Error);
  EXPECT_EQ(io::ioFailuresFired(), 1);
  EXPECT_EQ(fs::file_size(path), sizeBefore);

  journal->append(cell("Manzano", 1));
  journal.reset();
  EXPECT_EQ(Journal::resume(path, testConfig())->recordCount(), 1u);
}

TEST_F(IoFaultTest, StoreAppendFaultNeverCorruptsTheStrictFormat) {
  const std::string path = scratch("d.store");
  fs::remove(path);
  auto store = stats::ResultStore::create(path, testConfig());
  store->append(sample("Theta", 1));
  const auto sizeBefore = fs::file_size(path);

  // The store decoder is strict (no torn-tail tolerance), so rollback
  // is what keeps a failed append from bricking the whole file.
  io::setIoFailure(io::IoOp::PartialWrite, 0, ENOSPC);
  try {
    store->append(sample("Theta", 2));
    FAIL() << "append should have failed";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("store"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(io::ioFailuresFired(), 1);
  EXPECT_EQ(fs::file_size(path), sizeBefore);

  store->append(sample("Theta", 2));
  store.reset();
  const stats::StoreContents contents = stats::ResultStore::load(path);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[1].cell, "cell-2");
}

TEST_F(IoFaultTest, ArmedFaultFiresOnTheNthCall) {
  const std::string path = scratch("e.journal");
  fs::remove(path);
  auto journal = Journal::create(path, testConfig());
  // afterCalls = 1: the first append's write passes, the second fails.
  io::setIoFailure(io::IoOp::Write, 1, ENOSPC);
  journal->append(cell("Theta", 1));
  EXPECT_EQ(io::ioFailuresFired(), 0);
  EXPECT_THROW(journal->append(cell("Theta", 2)), Error);
  EXPECT_EQ(io::ioFailuresFired(), 1);
  // The shim self-disarms after firing once.
  journal->append(cell("Theta", 2));
  EXPECT_EQ(io::ioFailuresFired(), 1);
}

}  // namespace
}  // namespace nodebench::campaign
