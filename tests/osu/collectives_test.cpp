#include "osu/collectives.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"

namespace nodebench::osu {
namespace {

using machines::byName;

TEST(OsuCollectives, Names) {
  EXPECT_EQ(collectiveName(Collective::Allreduce), "allreduce");
  EXPECT_EQ(collectiveName(Collective::Barrier), "barrier");
  EXPECT_EQ(collectiveName(Collective::Alltoall), "alltoall");
}

TEST(OsuCollectives, AllCollectivesProducePositiveLatency) {
  const auto& m = byName("Eagle");
  for (const Collective coll :
       {Collective::Barrier, Collective::Bcast, Collective::Reduce,
        Collective::Allreduce, Collective::Allgather,
        Collective::Alltoall}) {
    CollectiveConfig cfg;
    cfg.collective = coll;
    cfg.ranks = 8;
    cfg.iterations = 10;
    cfg.binaryRuns = 5;
    const auto result = measureCollective(m, cfg);
    EXPECT_GT(result.latencyUs.mean, 0.0) << collectiveName(coll);
    EXPECT_EQ(result.ranks, 8);
  }
}

TEST(OsuCollectives, AllreduceAtLeastPointToPoint) {
  const auto& m = byName("Eagle");
  CollectiveConfig cfg;
  cfg.collective = Collective::Allreduce;
  cfg.ranks = 8;
  cfg.iterations = 10;
  // Recursive doubling over 8 ranks = 3 rounds; each round >= one-way
  // on-socket latency (0.17 us).
  EXPECT_GT(collectiveTruth(m, cfg).us(), 3.0 * 0.17);
}

TEST(OsuCollectives, LatencyGrowsWithMessageSize) {
  const auto& m = byName("Manzano");
  CollectiveConfig cfg;
  cfg.collective = Collective::Bcast;
  cfg.ranks = 8;
  cfg.iterations = 5;
  cfg.messageSize = ByteCount::bytes(8);
  const double small = collectiveTruth(m, cfg).us();
  cfg.messageSize = ByteCount::kib(64);
  const double big = collectiveTruth(m, cfg).us();
  EXPECT_GT(big, 2.0 * small);
}

TEST(OsuCollectives, BarrierScalesWithRanks) {
  const auto& m = byName("Sawtooth");
  CollectiveConfig cfg;
  cfg.collective = Collective::Barrier;
  cfg.iterations = 10;
  cfg.ranks = 4;
  const double small = collectiveTruth(m, cfg).us();
  cfg.ranks = 32;
  const double big = collectiveTruth(m, cfg).us();
  EXPECT_GT(big, small);  // linear barrier through rank 0
}

TEST(OsuCollectives, ValidatesConfiguration) {
  const auto& m = byName("Eagle");
  CollectiveConfig cfg;
  cfg.ranks = 1;
  EXPECT_THROW((void)collectiveTruth(m, cfg), PreconditionError);
  cfg.ranks = 10000;  // more ranks than cores
  EXPECT_THROW((void)collectiveTruth(m, cfg), PreconditionError);
}

TEST(OsuCollectives, DeterministicTruth) {
  const auto& m = byName("Eagle");
  CollectiveConfig cfg;
  cfg.collective = Collective::Alltoall;
  cfg.ranks = 6;
  cfg.iterations = 5;
  EXPECT_DOUBLE_EQ(collectiveTruth(m, cfg).ns(),
                   collectiveTruth(m, cfg).ns());
}

}  // namespace
}  // namespace nodebench::osu
