#include "osu/message_rate.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"
#include "netsim/network.hpp"

namespace nodebench::osu {
namespace {

using machines::byName;

TEST(MessageRate, SinglePairMatchesWindowedBandwidthScale) {
  const auto& m = byName("Eagle");
  MessageRateConfig cfg;
  cfg.pairs = 1;
  cfg.binaryRuns = 5;
  const auto r = measureMessageRate(m, cfg);
  EXPECT_GT(r.messagesPerSecondM.mean, 1.0);   // > 1 M msgs/s at 75 ns post
  EXPECT_LT(r.messagesPerSecondM.mean, 20.0);
}

TEST(MessageRate, IntraNodePairsScaleNearlyLinearly) {
  const auto& m = byName("Sawtooth");
  MessageRateConfig cfg;
  cfg.binaryRuns = 5;
  cfg.pairs = 1;
  const double one = measureMessageRate(m, cfg).messagesPerSecondM.mean;
  cfg.pairs = 8;
  const double eight = measureMessageRate(m, cfg).messagesPerSecondM.mean;
  EXPECT_GT(eight, 6.0 * one);
  EXPECT_LT(eight, 9.0 * one);
}

TEST(MessageRate, InterNodeAggregateCapsAtInjectionBandwidth) {
  const auto& m = byName("Frontier");
  MessageRateConfig cfg;
  cfg.binaryRuns = 5;
  cfg.messageSize = ByteCount::kib(64);
  cfg.network = netsim::networkFor(m);
  cfg.pairs = 1;
  const double one = measureMessageRate(m, cfg).aggregateBandwidthGBps.mean;
  cfg.pairs = 8;
  const double eight =
      measureMessageRate(m, cfg).aggregateBandwidthGBps.mean;
  // Aggregate barely grows once the shared NIC is saturated.
  EXPECT_LT(eight, 1.5 * one);
  EXPECT_LE(eight, cfg.network->injectionBandwidth.inGBps() * 1.05);
}

TEST(MessageRate, BandwidthGrowsWithMessageSize) {
  const auto& m = byName("Eagle");
  MessageRateConfig cfg;
  cfg.binaryRuns = 3;
  cfg.messageSize = ByteCount::bytes(8);
  const double small =
      measureMessageRate(m, cfg).aggregateBandwidthGBps.mean;
  cfg.messageSize = ByteCount::kib(4);
  const double large =
      measureMessageRate(m, cfg).aggregateBandwidthGBps.mean;
  EXPECT_GT(large, 20.0 * small);
}

TEST(MessageRate, Validation) {
  const auto& m = byName("Eagle");
  MessageRateConfig cfg;
  cfg.pairs = 0;
  EXPECT_THROW((void)measureMessageRate(m, cfg), PreconditionError);
  cfg = MessageRateConfig{};
  cfg.pairs = 10000;
  EXPECT_THROW((void)measureMessageRate(m, cfg), PreconditionError);
}

}  // namespace
}  // namespace nodebench::osu
