#include "osu/latency.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"
#include "osu/pairs.hpp"

namespace nodebench::osu {
namespace {

using machines::byName;
using mpisim::BufferSpace;

TEST(Pairs, OnSocketUsesCoresZeroAndOne) {
  const auto& m = byName("Sawtooth");
  const auto [a, b] = onSocketPair(m);
  EXPECT_EQ(a.core.value, 0);
  EXPECT_EQ(b.core.value, 1);
  EXPECT_FALSE(a.gpu.has_value());
}

TEST(Pairs, OnNodeCrossesSocketsOnXeon) {
  const auto& m = byName("Eagle");
  const auto [a, b] = onNodePair(m);
  EXPECT_EQ(m.topology.core(a.core).socket.value, 0);
  EXPECT_EQ(m.topology.core(b.core).socket.value, 1);
}

TEST(Pairs, OnNodeUsesFirstAndLastCoreOnKnl) {
  const auto& m = byName("Theta");
  const auto [a, b] = onNodePair(m);
  EXPECT_EQ(a.core.value, 0);
  EXPECT_EQ(b.core.value, 63);
}

TEST(Pairs, DevicePairBindsGpusAndDistinctCores) {
  const auto& m = byName("Summit");
  const auto [a, b] = devicePair(m, topo::LinkClass::B);
  ASSERT_TRUE(a.gpu.has_value() && b.gpu.has_value());
  EXPECT_NE(*a.gpu, *b.gpu);
  EXPECT_NE(a.core.value, b.core.value);
  // Class B on Summit crosses sockets.
  EXPECT_NE(m.topology.gpu(topo::GpuId{*a.gpu}).socket,
            m.topology.gpu(topo::GpuId{*b.gpu}).socket);
}

TEST(Pairs, MissingClassThrows) {
  EXPECT_THROW((void)devicePair(byName("Polaris"), topo::LinkClass::C),
               PreconditionError);
}

TEST(Latency, TruthMatchesTransportModel) {
  const auto& m = byName("Manzano");
  const auto [a, b] = onSocketPair(m);
  const LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Host);
  // 8 B eager one-way: 0.32 us + 8 B / 8 GB/s = 0.321 us.
  EXPECT_NEAR(bench.truthOneWay(ByteCount::bytes(8), 100).us(),
              0.32 + 8.0 / 8000.0, 1e-9);
}

TEST(Latency, MeasureAggregatesBinaryRuns) {
  const auto& m = byName("Eagle");
  const auto [a, b] = onSocketPair(m);
  const LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Host);
  LatencyConfig cfg;
  cfg.binaryRuns = 100;
  const LatencyResult result = bench.measure(cfg);
  EXPECT_EQ(result.latencyUs.count, 100u);
  EXPECT_NEAR(result.latencyUs.mean, 0.17, 0.01);
  EXPECT_GT(result.latencyUs.stddev, 0.0);
}

TEST(Latency, DeviceBuffersNeedGpus) {
  const auto& m = byName("Summit");
  const auto [a, b] = onSocketPair(m);
  EXPECT_THROW(LatencyBenchmark(m, a, b, BufferSpace::Kind::Device),
               PreconditionError);
}

TEST(Latency, DeviceLatencyMatchesPaperScale) {
  const auto& m = byName("Frontier");
  const auto [a, b] = devicePair(m, topo::LinkClass::A);
  const LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Device);
  LatencyConfig cfg;
  cfg.binaryRuns = 50;
  EXPECT_NEAR(bench.measure(cfg).latencyUs.mean, 0.44, 0.02);
}

TEST(Latency, SweepIsMonotoneInSize) {
  const auto& m = byName("Sawtooth");
  const auto [a, b] = onSocketPair(m);
  const LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Host);
  LatencyConfig cfg;
  cfg.binaryRuns = 3;
  cfg.iterations = 20;  // keep the test fast
  const auto sweep = bench.sweep(ByteCount::kib(64), cfg);
  ASSERT_GE(sweep.size(), 16u);
  EXPECT_EQ(sweep.front().messageSize.count(), 0u);
  for (std::size_t i = 2; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].latencyUs.mean, sweep[i - 1].latencyUs.mean * 0.95)
        << "size " << sweep[i].messageSize.count();
  }
  // Large messages are clearly slower than small ones.
  EXPECT_GT(sweep.back().latencyUs.mean, 2.0 * sweep[1].latencyUs.mean);
}

TEST(Latency, EagerRendezvousStepAtThreshold) {
  // On a machine with expensive software overheads (Theta's old
  // cray-mpich), crossing into rendezvous adds a clear handshake step.
  const auto& m = byName("Theta");
  const auto [a, b] = onSocketPair(m);
  const LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Host);
  const ByteCount thr = m.hostMpi.eagerThreshold;
  const double atThreshold = bench.truthOneWay(thr, 10).us();
  const double justOver =
      bench.truthOneWay(ByteCount::bytes(thr.count() + 1), 10).us();
  EXPECT_GT(justOver - atThreshold, 1.0);
}

TEST(Latency, OnNodeAtLeastOnSocket) {
  for (const char* name : {"Trinity", "Theta", "Sawtooth", "Eagle",
                           "Manzano"}) {
    const auto& m = byName(name);
    const auto [sa, sb] = onSocketPair(m);
    const auto [na, nb] = onNodePair(m);
    const LatencyBenchmark sock(m, sa, sb, BufferSpace::Kind::Host);
    const LatencyBenchmark node(m, na, nb, BufferSpace::Kind::Host);
    const ByteCount size = ByteCount::bytes(8);
    EXPECT_GE(node.truthOneWay(size, 10).ns() + 1e-6,
              sock.truthOneWay(size, 10).ns())
        << name;
  }
}

TEST(Latency, InvalidIterationCountRejected) {
  const auto& m = byName("Eagle");
  const auto [a, b] = onSocketPair(m);
  const LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Host);
  EXPECT_THROW((void)bench.truthOneWay(ByteCount::bytes(8), 0),
               PreconditionError);
}

}  // namespace
}  // namespace nodebench::osu
