#include "osu/bandwidth.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"
#include "osu/pairs.hpp"

namespace nodebench::osu {
namespace {

using machines::byName;
using mpisim::BufferSpace;

BandwidthBenchmark hostBench(const machines::Machine& m,
                             bool bidirectional = false) {
  const auto [a, b] = onSocketPair(m);
  return BandwidthBenchmark(m, a, b, BufferSpace::Kind::Host, bidirectional);
}

TEST(OsuBw, LargeMessagesApproachEagerBandwidth) {
  const auto& m = byName("Eagle");
  BandwidthConfig cfg;
  cfg.messageSize = ByteCount::kib(4);  // eager regime, overhead amortized
  cfg.windowSize = 64;
  cfg.iterations = 5;
  const double gbps = hostBench(m).truthGBps(cfg);
  // Must reach a solid fraction of the 8 GB/s eager path.
  EXPECT_GT(gbps, 0.6 * m.hostMpi.eagerBandwidth.inGBps());
  EXPECT_LE(gbps, m.hostMpi.eagerBandwidth.inGBps() * 1.01);
}

TEST(OsuBw, SmallMessagesAreOverheadBound) {
  const auto& m = byName("Eagle");
  BandwidthConfig cfg;
  cfg.messageSize = ByteCount::bytes(8);
  cfg.iterations = 5;
  const double gbps = hostBench(m).truthGBps(cfg);
  // 8 B per ~75 ns post => well under 1 GB/s.
  EXPECT_LT(gbps, 1.0);
}

TEST(OsuBw, BandwidthIsMonotoneInMessageSize) {
  const auto& m = byName("Sawtooth");
  BandwidthConfig cfg;
  cfg.binaryRuns = 3;
  cfg.iterations = 3;
  const auto sweep = hostBench(m).sweep(ByteCount::mib(1), cfg);
  ASSERT_GT(sweep.size(), 10u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].bandwidthGBps.mean,
              sweep[i - 1].bandwidthGBps.mean * 0.85)
        << "size " << sweep[i].messageSize.count();
  }
}

TEST(OsuBibw, DoublesUnidirectionalForSymmetricChannels) {
  const auto& m = byName("Eagle");
  BandwidthConfig cfg;
  cfg.messageSize = ByteCount::kib(4);
  cfg.iterations = 5;
  const double uni = hostBench(m, false).truthGBps(cfg);
  const double bi = hostBench(m, true).truthGBps(cfg);
  // Each direction has its own channel in the model, so bibw approaches
  // 2x bw (minus the shared software overheads).
  EXPECT_GT(bi, 1.4 * uni);
  EXPECT_LT(bi, 2.1 * uni);
}

TEST(OsuBw, DeviceBuffersRideTheFabric) {
  const auto& m = byName("Frontier");
  const auto [a, b] = devicePair(m, topo::LinkClass::A);
  BandwidthBenchmark bench(m, a, b, BufferSpace::Kind::Device);
  BandwidthConfig cfg;
  cfg.messageSize = ByteCount::kib(4);
  cfg.iterations = 5;
  // Quad Infinity Fabric: far above the host shared-memory path.
  EXPECT_GT(bench.truthGBps(cfg), 20.0);
}

TEST(OsuBw, MeasureAddsCalibratedNoise) {
  const auto& m = byName("Eagle");
  BandwidthConfig cfg;
  cfg.binaryRuns = 50;
  const auto result = hostBench(m).measure(cfg);
  EXPECT_EQ(result.bandwidthGBps.count, 50u);
  EXPECT_GT(result.bandwidthGBps.stddev, 0.0);
}

TEST(OsuBw, ConfigValidation) {
  const auto& m = byName("Eagle");
  BandwidthConfig cfg;
  cfg.windowSize = 0;
  EXPECT_THROW((void)hostBench(m).truthGBps(cfg), PreconditionError);
}

}  // namespace
}  // namespace nodebench::osu
