#include "machines/validate.hpp"

#include <gtest/gtest.h>

#include "machines/machine_card.hpp"
#include "machines/registry.hpp"

namespace nodebench::machines {
namespace {

TEST(Validate, EveryRegistryMachinePasses) {
  for (const Machine& m : allMachines()) {
    EXPECT_TRUE(isValid(m)) << m.info.name;
    EXPECT_NO_THROW(ensureValid(m)) << m.info.name;
    // Registry machines should also be warning-free.
    for (const auto& issue : validate(m)) {
      EXPECT_NE(issue.severity, ValidationIssue::Severity::Warning)
          << m.info.name << ": " << issue.message;
    }
  }
}

TEST(Validate, EmptyMachineFails) {
  Machine empty;
  EXPECT_FALSE(isValid(empty));
  EXPECT_THROW(ensureValid(empty), PreconditionError);
}

TEST(Validate, DetectsAcceleratorInconsistencies) {
  Machine m = byName("Frontier");  // copy
  m.device.reset();                // GPUs without device params
  bool found = false;
  for (const auto& issue : validate(m)) {
    found = found || issue.message.find("device parameters") !=
                         std::string::npos;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(isValid(m));
}

TEST(Validate, DetectsBadHostParameters) {
  Machine m = byName("Eagle");
  m.hostMemory.perCoreBw = Bandwidth::zero();
  EXPECT_FALSE(isValid(m));
  Machine n = byName("Eagle");
  n.hostMpi.cv = 0.9;
  EXPECT_FALSE(isValid(n));
}

TEST(Validate, DetectsAchievableAbovePeak) {
  Machine m = byName("Summit");
  m.device->hbmPeak = Bandwidth::gbps(100.0);  // below achievable
  EXPECT_FALSE(isValid(m));
}

TEST(Validate, MissingFlopsIsOnlyAWarning) {
  Machine m = byName("Eagle");
  m.hostPeakFp64Gflops = 0.0;
  EXPECT_TRUE(isValid(m));
  bool warned = false;
  for (const auto& issue : validate(m)) {
    warned = warned ||
             (issue.severity == ValidationIssue::Severity::Warning &&
              issue.message.find("FLOPS") != std::string::npos);
  }
  EXPECT_TRUE(warned);
}

TEST(MachineCard, ContainsIdentityAndCalibration) {
  const std::string card = machineCard(byName("Frontier"));
  EXPECT_NE(card.find("=== Frontier ==="), std::string::npos);
  EXPECT_NE(card.find("Top500 rank 1"), std::string::npos);
  EXPECT_NE(card.find("cray-mpich/8.1.23"), std::string::npos);
  EXPECT_NE(card.find("8 GPU(s)"), std::string::npos);
  EXPECT_NE(card.find("HBM achievable"), std::string::npos);
  EXPECT_NE(card.find("D2D class residuals"), std::string::npos);
  EXPECT_NE(card.find("device MPI base"), std::string::npos);
}

TEST(MachineCard, CpuCardOmitsDeviceSection) {
  const std::string card = machineCard(byName("Trinity"));
  EXPECT_NE(card.find("mesh base/per-hop"), std::string::npos);
  EXPECT_EQ(card.find("HBM achievable"), std::string::npos);
  EXPECT_NE(card.find("peak FP64"), std::string::npos);
}

}  // namespace
}  // namespace nodebench::machines
