#include "machines/validate.hpp"

#include <gtest/gtest.h>

#include "machines/machine_card.hpp"
#include "machines/registry.hpp"

namespace nodebench::machines {
namespace {

TEST(Validate, EveryRegistryMachinePasses) {
  for (const Machine& m : allMachines()) {
    EXPECT_TRUE(isValid(m)) << m.info.name;
    EXPECT_NO_THROW(ensureValid(m)) << m.info.name;
    // Registry machines should also be warning-free.
    for (const auto& issue : validate(m)) {
      EXPECT_NE(issue.severity, ValidationIssue::Severity::Warning)
          << m.info.name << ": " << issue.message;
    }
  }
}

TEST(Validate, EmptyMachineFails) {
  Machine empty;
  EXPECT_FALSE(isValid(empty));
  EXPECT_THROW(ensureValid(empty), PreconditionError);
}

TEST(Validate, DetectsAcceleratorInconsistencies) {
  Machine m = byName("Frontier");  // copy
  m.device.reset();                // GPUs without device params
  bool found = false;
  for (const auto& issue : validate(m)) {
    found = found || issue.message.find("device parameters") !=
                         std::string::npos;
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(isValid(m));
}

TEST(Validate, DetectsBadHostParameters) {
  Machine m = byName("Eagle");
  m.hostMemory.perCoreBw = Bandwidth::zero();
  EXPECT_FALSE(isValid(m));
  Machine n = byName("Eagle");
  n.hostMpi.cv = 0.9;
  EXPECT_FALSE(isValid(n));
}

TEST(Validate, DetectsAchievableAbovePeak) {
  Machine m = byName("Summit");
  m.device->hbmPeak = Bandwidth::gbps(100.0);  // below achievable
  EXPECT_FALSE(isValid(m));
}

TEST(Validate, MissingFlopsIsOnlyAWarning) {
  Machine m = byName("Eagle");
  m.hostPeakFp64Gflops = 0.0;
  EXPECT_TRUE(isValid(m));
  bool warned = false;
  for (const auto& issue : validate(m)) {
    warned = warned ||
             (issue.severity == ValidationIssue::Severity::Warning &&
              issue.message.find("FLOPS") != std::string::npos);
  }
  EXPECT_TRUE(warned);
}

// --- Per-branch regression tests: every validation branch reports its
// offending field, and ensureValid() surfaces machine name + field. ----------

/// True when validate(m) reports an issue tagged with `field` at `sev`.
bool hasIssue(const Machine& m, const std::string& field,
              ValidationIssue::Severity sev = ValidationIssue::Severity::Error) {
  for (const auto& issue : validate(m)) {
    if (issue.severity == sev && issue.field == field) {
      return true;
    }
  }
  return false;
}

TEST(ValidateBranches, EmptyName) {
  Machine m = byName("Eagle");
  m.info.name.clear();
  EXPECT_TRUE(hasIssue(m, "info.name"));
}

TEST(ValidateBranches, NoCoresAndNoSockets) {
  Machine m;
  m.info.name = "bare";
  EXPECT_TRUE(hasIssue(m, "topology.cores"));
  EXPECT_TRUE(hasIssue(m, "topology.sockets"));
}

TEST(ValidateBranches, AcceleratorFlagDisagreesWithTopology) {
  Machine m = byName("Frontier");
  m.info.acceleratorModel.clear();
  EXPECT_TRUE(hasIssue(m, "info.acceleratorModel"));
}

TEST(ValidateBranches, DeviceParamsMissing) {
  Machine m = byName("Frontier");
  m.device.reset();
  EXPECT_TRUE(hasIssue(m, "device"));
}

TEST(ValidateBranches, DeviceMpiParamsMissing) {
  Machine m = byName("Frontier");
  m.deviceMpi.reset();
  EXPECT_TRUE(hasIssue(m, "deviceMpi"));
}

TEST(ValidateBranches, GpuFlavorMissing) {
  Machine m = byName("Frontier");
  m.topology.setGpuFlavor(topo::GpuInterconnectFlavor::None);
  EXPECT_TRUE(hasIssue(m, "topology.gpuFlavor"));
}

TEST(ValidateBranches, GpuWithoutHostLink) {
  Machine m = byName("Perlmutter");
  // Kill GPU 0's host link: the validator's hostGpuLink lookup then
  // raises NotFoundError, exercising the no-host-link branch.
  const auto& links = m.topology.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    const bool hostGpu =
        (links[i].a.kind == topo::Link::EndpointKind::Socket &&
         links[i].b.kind == topo::Link::EndpointKind::Gpu &&
         links[i].b.id == 0) ||
        (links[i].b.kind == topo::Link::EndpointKind::Socket &&
         links[i].a.kind == topo::Link::EndpointKind::Gpu &&
         links[i].a.id == 0);
    if (hostGpu) {
      m.topology.setLinkFailed(i);
    }
  }
  EXPECT_TRUE(hasIssue(m, "topology.hostGpuLinks"));
}

TEST(ValidateBranches, HostParameterBranches) {
  Machine m = byName("Eagle");
  m.hostMemory.perCoreBw = Bandwidth::zero();
  EXPECT_TRUE(hasIssue(m, "hostMemory.perCoreBw"));

  m = byName("Eagle");
  m.hostMemory.perNumaSaturation = Bandwidth::zero();
  EXPECT_TRUE(hasIssue(m, "hostMemory.perNumaSaturation"));

  m = byName("Eagle");
  m.hostMemory.cacheModeOverhead = 0.5;
  EXPECT_TRUE(hasIssue(m, "hostMemory.cacheModeOverhead"));

  m = byName("Eagle");
  m.hostMpi.softwareOverhead = Duration::zero();
  EXPECT_TRUE(hasIssue(m, "hostMpi.softwareOverhead"));

  m = byName("Eagle");
  m.hostMpi.eagerBandwidth = Bandwidth::zero();
  EXPECT_TRUE(hasIssue(m, "hostMpi.eagerBandwidth/rendezvousBandwidth"));

  m = byName("Eagle");
  m.hostMpi.cv = 0.9;
  EXPECT_TRUE(hasIssue(m, "hostMpi.cv"));
}

TEST(ValidateBranches, MissingInterSocketLinkWarns) {
  Machine m = byName("Eagle");
  const auto& links = m.topology.links();
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (links[i].a.kind == topo::Link::EndpointKind::Socket &&
        links[i].b.kind == topo::Link::EndpointKind::Socket) {
      m.topology.setLinkFailed(i);
    }
  }
  EXPECT_TRUE(
      hasIssue(m, "topology.socketLinks", ValidationIssue::Severity::Warning));
}

TEST(ValidateBranches, HostWarningBranches) {
  Machine m = byName("Eagle");
  m.hostMemory.peak = Bandwidth::zero();
  EXPECT_TRUE(
      hasIssue(m, "hostMemory.peak", ValidationIssue::Severity::Warning));

  m = byName("Eagle");
  m.hostPeakFp64Gflops = 0.0;
  EXPECT_TRUE(
      hasIssue(m, "hostPeakFp64Gflops", ValidationIssue::Severity::Warning));
}

TEST(ValidateBranches, DeviceParameterBranches) {
  Machine m = byName("Summit");
  m.device->hbmBw = Bandwidth::zero();
  EXPECT_TRUE(hasIssue(m, "device.hbmBw"));

  m = byName("Summit");
  m.device->kernelLaunch = Duration::zero();
  EXPECT_TRUE(hasIssue(m, "device.kernelLaunch/syncWait"));

  m = byName("Summit");
  m.device->h2dDmaSetup = Duration::zero();
  EXPECT_TRUE(
      hasIssue(m, "device.memcpyCallOverhead/h2dDmaSetup/d2dDmaSetup"));

  m = byName("Summit");
  m.device->hbmPeak = Bandwidth::gbps(100.0);  // below achievable
  EXPECT_TRUE(hasIssue(m, "device.hbmPeak"));

  m = byName("Summit");
  m.device->peakFp64Gflops = 0.0;
  EXPECT_TRUE(
      hasIssue(m, "device.peakFp64Gflops", ValidationIssue::Severity::Warning));

  m = byName("Summit");
  m.deviceMpi->baseOneWay = Duration::microseconds(-1.0);
  EXPECT_TRUE(hasIssue(m, "deviceMpi.baseOneWay"));
}

// Every cache-hierarchy validation branch, one test clause per branch
// (ISSUE: the ladder feeds both the memsim refinement and the memlab
// families, so a malformed hierarchy must fail loudly with its field).

TEST(ValidateBranches, CacheLevelFieldBranches) {
  Machine m = byName("Eagle");
  ASSERT_GE(m.cacheHierarchy.levels.size(), 2u);

  m.cacheHierarchy.levels[0].name.clear();
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[0].name"));

  m = byName("Eagle");
  m.cacheHierarchy.levels[0].capacity = ByteCount::bytes(0);
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[0].capacity"));

  m = byName("Eagle");
  m.cacheHierarchy.levels[0].lineSize = ByteCount::bytes(0);
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[0].lineSize"));

  m = byName("Eagle");
  m.cacheHierarchy.levels[0].loadToUseLatency = Duration::zero();
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[0].loadToUseLatency"));

  m = byName("Eagle");
  m.cacheHierarchy.levels[0].perCoreBandwidth = Bandwidth::zero();
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[0].perCoreBandwidth"));

  m = byName("Eagle");
  m.cacheHierarchy.levels[0].sharedByCores = 0;
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[0].sharedByCores"));

  m = byName("Eagle");
  m.cacheHierarchy.levels[0].sharedByCores = m.coreCount() + 1;
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[0].sharedByCores"));
}

TEST(ValidateBranches, CacheLadderOrderingBranches) {
  // Outer levels must strictly grow in capacity and latency and weakly
  // shrink in per-core bandwidth; each violation names the outer level.
  Machine m = byName("Eagle");
  m.cacheHierarchy.levels[1].capacity = m.cacheHierarchy.levels[0].capacity;
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[1].capacity"));

  m = byName("Eagle");
  m.cacheHierarchy.levels[1].loadToUseLatency =
      m.cacheHierarchy.levels[0].loadToUseLatency;
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[1].loadToUseLatency"));

  m = byName("Eagle");
  m.cacheHierarchy.levels[1].perCoreBandwidth = Bandwidth::gbps(
      m.cacheHierarchy.levels[0].perCoreBandwidth.inGBps() * 2.0);
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.levels[1].perCoreBandwidth"));
}

TEST(ValidateBranches, CacheHierarchyEnvelopeBranches) {
  Machine m = byName("Eagle");
  m.cacheHierarchy.memoryLatency =
      m.cacheHierarchy.levels.back().loadToUseLatency;
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.memoryLatency"));

  m = byName("Eagle");
  m.cacheHierarchy.coreClockGHz = 0.0;
  EXPECT_TRUE(hasIssue(m, "cacheHierarchy.coreClockGHz"));
}

TEST(ValidateBranches, EmptyHierarchyIsStillValid) {
  // Legacy machine cards carry no ladder; that must stay a valid state
  // (the memlab families throw their own targeted error instead).
  Machine m = byName("Eagle");
  m.cacheHierarchy = CacheHierarchy{};
  EXPECT_TRUE(isValid(m));
}

TEST(ValidateBranches, EnsureValidNamesMachineAndField) {
  Machine m = byName("Eagle");
  m.hostMpi.cv = 0.9;
  try {
    ensureValid(m);
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("Eagle"), std::string::npos) << what;
    EXPECT_NE(what.find("hostMpi.cv"), std::string::npos) << what;
  }
}

TEST(MachineCard, ContainsIdentityAndCalibration) {
  const std::string card = machineCard(byName("Frontier"));
  EXPECT_NE(card.find("=== Frontier ==="), std::string::npos);
  EXPECT_NE(card.find("Top500 rank 1"), std::string::npos);
  EXPECT_NE(card.find("cray-mpich/8.1.23"), std::string::npos);
  EXPECT_NE(card.find("8 GPU(s)"), std::string::npos);
  EXPECT_NE(card.find("HBM achievable"), std::string::npos);
  EXPECT_NE(card.find("D2D class residuals"), std::string::npos);
  EXPECT_NE(card.find("device MPI base"), std::string::npos);
}

TEST(MachineCard, CpuCardOmitsDeviceSection) {
  const std::string card = machineCard(byName("Trinity"));
  EXPECT_NE(card.find("mesh base/per-hop"), std::string::npos);
  EXPECT_EQ(card.find("HBM achievable"), std::string::npos);
  EXPECT_NE(card.find("peak FP64"), std::string::npos);
}

}  // namespace
}  // namespace nodebench::machines
