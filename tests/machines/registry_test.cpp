#include "machines/registry.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nodebench::machines {
namespace {

TEST(Registry, ThirteenSystemsInRankOrder) {
  const auto& all = allMachines();
  ASSERT_EQ(all.size(), 13u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].info.top500Rank, all[i].info.top500Rank);
  }
  EXPECT_EQ(all.front().info.name, "Frontier");
  EXPECT_EQ(all.front().info.top500Rank, 1);
  EXPECT_EQ(all.back().info.name, "Manzano");
  EXPECT_EQ(all.back().info.top500Rank, 141);
}

TEST(Registry, FiveCpuAndEightGpuSystems) {
  EXPECT_EQ(cpuMachines().size(), 5u);
  EXPECT_EQ(gpuMachines().size(), 8u);
}

TEST(Registry, LookupIsCaseInsensitive) {
  EXPECT_EQ(byName("frontier").info.top500Rank, 1);
  EXPECT_EQ(byName("PERLMUTTER").info.name, "Perlmutter");
  EXPECT_THROW((void)byName("Fugaku"), NotFoundError);
}

TEST(Registry, SeedsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (const Machine& m : allMachines()) {
    EXPECT_TRUE(seeds.insert(m.seed).second)
        << m.info.name << " shares a seed";
  }
}

TEST(Registry, AcceleratorGroupsMatchPaperTable7) {
  const auto groups = acceleratorGroups();
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].name, "V100");
  EXPECT_EQ(groups[0].members.size(), 3u);
  EXPECT_EQ(groups[1].name, "A100");
  EXPECT_EQ(groups[1].members.size(), 2u);
  EXPECT_EQ(groups[2].name, "MI250X");
  EXPECT_EQ(groups[2].members.size(), 3u);
  // Every accelerator machine appears in exactly one group.
  std::set<const Machine*> seen;
  for (const auto& g : groups) {
    for (const Machine* m : g.members) {
      EXPECT_TRUE(m->accelerated());
      EXPECT_TRUE(seen.insert(m).second);
    }
  }
  EXPECT_EQ(seen.size(), gpuMachines().size());
}

/// Per-machine structural invariants, parameterized over all 13 systems.
class MachineInvariantTest : public ::testing::TestWithParam<const char*> {
 protected:
  const Machine& machine() const { return byName(GetParam()); }
};

TEST_P(MachineInvariantTest, TopologyIsPopulated) {
  const Machine& m = machine();
  EXPECT_GT(m.topology.socketCount(), 0);
  EXPECT_GT(m.topology.numaCount(), 0);
  EXPECT_GE(m.coreCount(), 32);
  EXPECT_GE(m.hardwareThreadCount(), m.coreCount());
}

TEST_P(MachineInvariantTest, AcceleratedConsistency) {
  const Machine& m = machine();
  EXPECT_EQ(m.accelerated(), m.device.has_value());
  EXPECT_EQ(m.accelerated(), m.deviceMpi.has_value());
  EXPECT_EQ(m.accelerated(), m.topology.gpuCount() > 0);
  EXPECT_EQ(m.accelerated(), !m.env.deviceLibrary.empty());
  if (m.accelerated()) {
    EXPECT_GE(m.topology.gpuCount(), 4);
    EXPECT_NE(m.topology.gpuFlavor(), topo::GpuInterconnectFlavor::None);
  }
}

TEST_P(MachineInvariantTest, HostParametersArePositive) {
  const Machine& m = machine();
  EXPECT_GT(m.hostMemory.perCoreBw.inGBps(), 0.0);
  EXPECT_GT(m.hostMemory.perNumaSaturation.inGBps(), 0.0);
  EXPECT_GE(m.hostMemory.cacheModeOverhead, 1.0);
  EXPECT_GT(m.hostMpi.softwareOverhead, Duration::zero());
  EXPECT_GT(m.hostMpi.eagerBandwidth.inGBps(), 0.0);
  EXPECT_GT(m.hostMpi.eagerThreshold.count(), 0u);
  EXPECT_LT(m.hostMpi.cv, 0.5);
}

TEST_P(MachineInvariantTest, DeviceParametersArePositive) {
  const Machine& m = machine();
  if (!m.accelerated()) {
    GTEST_SKIP() << "CPU-only system";
  }
  const DeviceParams& d = *m.device;
  EXPECT_GT(d.hbmBw.inGBps(), 500.0);
  EXPECT_GE(d.hbmPeak.inGBps(), d.hbmBw.inGBps());
  EXPECT_GT(d.kernelLaunch, Duration::zero());
  EXPECT_GT(d.syncWait, Duration::zero());
  EXPECT_GT(d.memcpyCallOverhead, Duration::zero());
  EXPECT_GT(d.h2dDmaSetup, Duration::zero());
  EXPECT_GT(d.d2dDmaSetup, Duration::zero());
  EXPECT_GT(m.deviceMpi->baseOneWay, Duration::zero());
}

TEST_P(MachineInvariantTest, GpuMemoryMatchesModel) {
  const Machine& m = machine();
  if (!m.accelerated()) {
    GTEST_SKIP();
  }
  for (int g = 0; g < m.topology.gpuCount(); ++g) {
    const auto& gpu = m.topology.gpu(topo::GpuId{g});
    EXPECT_GE(gpu.memory, ByteCount::gib(16));
    EXPECT_EQ(gpu.socket.value >= 0, true);
  }
}

TEST_P(MachineInvariantTest, EnvironmentStringsPresent) {
  const Machine& m = machine();
  EXPECT_FALSE(m.env.compiler.empty());
  EXPECT_FALSE(m.env.mpi.empty());
}

INSTANTIATE_TEST_SUITE_P(AllMachines, MachineInvariantTest,
                         ::testing::Values("Frontier", "Summit", "Sierra",
                                           "Perlmutter", "Polaris", "Trinity",
                                           "Lassen", "Theta", "Sawtooth",
                                           "RZVernal", "Eagle", "Tioga",
                                           "Manzano"));

TEST(MachineShapes, LinkClassInventoryMatchesPaperColumns) {
  // MI250X machines: classes A, B, C, D. V100 machines: A, B.
  // A100 machines: A only.
  for (const char* name : {"Frontier", "RZVernal", "Tioga"}) {
    EXPECT_EQ(byName(name).topology.presentGpuLinkClasses().size(), 4u)
        << name;
  }
  for (const char* name : {"Summit", "Sierra", "Lassen"}) {
    const auto classes = byName(name).topology.presentGpuLinkClasses();
    ASSERT_EQ(classes.size(), 2u) << name;
    EXPECT_EQ(classes[0], topo::LinkClass::A);
    EXPECT_EQ(classes[1], topo::LinkClass::B);
  }
  for (const char* name : {"Perlmutter", "Polaris"}) {
    const auto classes = byName(name).topology.presentGpuLinkClasses();
    ASSERT_EQ(classes.size(), 1u) << name;
    EXPECT_EQ(classes[0], topo::LinkClass::A);
  }
}

TEST(MachineShapes, GpuCountsMatchPaperFigures) {
  EXPECT_EQ(byName("Frontier").topology.gpuCount(), 8);   // 8 GCDs
  EXPECT_EQ(byName("Summit").topology.gpuCount(), 6);     // 6 V100
  EXPECT_EQ(byName("Sierra").topology.gpuCount(), 4);     // 4 V100
  EXPECT_EQ(byName("Lassen").topology.gpuCount(), 4);
  EXPECT_EQ(byName("Perlmutter").topology.gpuCount(), 4);  // 4 A100
  EXPECT_EQ(byName("Polaris").topology.gpuCount(), 4);
}

TEST(MachineShapes, KnlMachinesHaveMeshCores) {
  for (const char* name : {"Trinity", "Theta"}) {
    const Machine& m = byName(name);
    EXPECT_EQ(m.topology.socketCount(), 1) << name;
    EXPECT_TRUE(m.topology.core(topo::CoreId{0}).mesh.has_value()) << name;
    EXPECT_EQ(m.topology.core(topo::CoreId{0}).smtThreads, 4) << name;
  }
  EXPECT_EQ(byName("Trinity").coreCount(), 68);
  EXPECT_EQ(byName("Theta").coreCount(), 64);
}

TEST(MachineShapes, XeonMachinesAreDualSocket) {
  for (const char* name : {"Sawtooth", "Eagle", "Manzano"}) {
    const Machine& m = byName(name);
    EXPECT_EQ(m.topology.socketCount(), 2) << name;
    EXPECT_FALSE(m.topology.core(topo::CoreId{0}).mesh.has_value()) << name;
  }
  EXPECT_EQ(byName("Sawtooth").coreCount(), 48);
  EXPECT_EQ(byName("Eagle").coreCount(), 36);
}

}  // namespace
}  // namespace nodebench::machines
