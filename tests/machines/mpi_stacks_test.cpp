#include "machines/mpi_stacks.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"

namespace nodebench::machines {
namespace {

TEST(MpiStacks, EveryMachineGetsDefaultPlusAlternatives) {
  for (const Machine& m : allMachines()) {
    const auto variants = alternativeStacks(m);
    ASSERT_GE(variants.size(), 2u) << m.info.name;
    EXPECT_TRUE(variants.front().isDefault()) << m.info.name;
    EXPECT_NE(variants.front().name.find(m.env.mpi), std::string::npos)
        << m.info.name;
  }
}

TEST(MpiStacks, DefaultVariantIsIdentity) {
  const Machine& base = byName("Summit");
  const Machine same = withMpiStack(base, alternativeStacks(base).front());
  EXPECT_DOUBLE_EQ(same.hostMpi.softwareOverhead.ns(),
                   base.hostMpi.softwareOverhead.ns());
  EXPECT_DOUBLE_EQ(same.deviceMpi->baseOneWay.ns(),
                   base.deviceMpi->baseOneWay.ns());
}

TEST(MpiStacks, GdrLikeStackCutsDevicePathOnV100) {
  const Machine& base = byName("Summit");
  const auto variants = alternativeStacks(base);
  const auto gdr = std::find_if(variants.begin(), variants.end(), [](auto& v) {
    return v.name.find("gdr") != std::string::npos;
  });
  ASSERT_NE(gdr, variants.end());
  const Machine tuned = withMpiStack(base, *gdr);
  EXPECT_LT(tuned.deviceMpi->baseOneWay.us(),
            0.5 * base.deviceMpi->baseOneWay.us());

  // End-to-end: class-A D2D latency drops by the same order.
  const auto [a, b] = osu::devicePair(tuned, topo::LinkClass::A);
  osu::LatencyConfig cfg;
  cfg.binaryRuns = 5;
  const double tunedUs =
      osu::LatencyBenchmark(tuned, a, b, mpisim::BufferSpace::Kind::Device)
          .measure(cfg)
          .latencyUs.mean;
  const double baseUs =
      osu::LatencyBenchmark(base, a, b, mpisim::BufferSpace::Kind::Device)
          .measure(cfg)
          .latencyUs.mean;
  EXPECT_LT(tunedUs, 0.6 * baseUs);
  EXPECT_GT(tunedUs, 5.0);  // still far from the MI250X RMA regime
}

TEST(MpiStacks, ScalesApplyToHostOverheadAndThreshold) {
  const Machine& base = byName("Eagle");
  const MpiStackVariant v{"test", 2.0, 1.0, 0.5};
  const Machine scaled = withMpiStack(base, v);
  EXPECT_DOUBLE_EQ(scaled.hostMpi.softwareOverhead.ns(),
                   2.0 * base.hostMpi.softwareOverhead.ns());
  EXPECT_EQ(scaled.hostMpi.eagerThreshold.count(),
            base.hostMpi.eagerThreshold.count() / 2);
}

TEST(MpiStacks, RejectsNonPositiveScales) {
  const Machine& base = byName("Eagle");
  EXPECT_THROW((void)withMpiStack(base, MpiStackVariant{"bad", 0.0, 1.0, 1.0}),
               PreconditionError);
  EXPECT_THROW((void)withMpiStack(base, MpiStackVariant{"bad", 1.0, -1.0, 1.0}),
               PreconditionError);
}

}  // namespace
}  // namespace nodebench::machines
