#include "machines/extra_machines.hpp"

#include <gtest/gtest.h>

#include "babelstream/driver.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "machines/registry.hpp"
#include "machines/validate.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"

namespace nodebench::machines {
namespace {

TEST(ExtraMachines, ThreeReferenceNodesAllValid) {
  const auto& extras = extraMachines();
  ASSERT_EQ(extras.size(), 3u);
  for (const Machine& m : extras) {
    EXPECT_TRUE(isValid(m)) << m.info.name;
    EXPECT_FALSE(m.accelerated()) << m.info.name;
    EXPECT_GT(m.hostPeakFp64Gflops, 0.0) << m.info.name;
  }
}

TEST(ExtraMachines, NotInTheMainRegistry) {
  // The paper's fourteen-system scope stays intact.
  EXPECT_EQ(allMachines().size(), 13u);
  EXPECT_THROW((void)byName("A64FX-node"), NotFoundError);
}

TEST(ExtraMachines, A64fxOutBandwidthsEveryXeon) {
  // The headline of the vendor comparison: HBM2 vs DDR4.
  babelstream::DriverConfig cfg;
  cfg.binaryRuns = 10;
  const auto bwOf = [&](const Machine& m) {
    babelstream::SimOmpBackend backend(
        m, ompenv::OmpConfig{m.coreCount(), ompenv::ProcBind::Spread,
                             ompenv::Places::Cores});
    return babelstream::run(backend, cfg).best().bandwidthGBps.mean;
  };
  const double a64fx = bwOf(makeA64fxNode());
  EXPECT_NEAR(a64fx, 830.0, 20.0);
  for (const char* xeon : {"Sawtooth", "Eagle", "Manzano"}) {
    EXPECT_GT(a64fx, 3.0 * bwOf(byName(xeon))) << xeon;
  }
}

TEST(ExtraMachines, ShapesMatchTheirArchitectures) {
  const Machine a64fx = makeA64fxNode();
  EXPECT_EQ(a64fx.topology.socketCount(), 1);
  EXPECT_EQ(a64fx.topology.numaCount(), 4);  // four CMGs
  EXPECT_EQ(a64fx.coreCount(), 48);
  EXPECT_EQ(a64fx.hardwareThreadCount(), 48);  // no SMT

  const Machine milan = makeEpycMilanNode();
  EXPECT_EQ(milan.topology.socketCount(), 2);
  EXPECT_EQ(milan.topology.numaCount(), 8);  // NPS4 x 2
  EXPECT_EQ(milan.coreCount(), 128);
  EXPECT_EQ(milan.hardwareThreadCount(), 256);

  const Machine altra = makeAmpereAltraNode();
  EXPECT_EQ(altra.coreCount(), 160);
  EXPECT_EQ(altra.hardwareThreadCount(), 160);
}

TEST(ExtraMachines, Table4MethodologyRunsEndToEnd) {
  for (const Machine& m : extraMachines()) {
    const auto [a, b] = osu::onSocketPair(m);
    osu::LatencyConfig cfg;
    cfg.binaryRuns = 5;
    const auto lat =
        osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Host)
            .measure(cfg);
    EXPECT_GT(lat.latencyUs.mean, 0.1) << m.info.name;
    EXPECT_LT(lat.latencyUs.mean, 2.0) << m.info.name;
  }
}

TEST(ExtraMachines, BalancePointsDiffer) {
  // A64FX: ~3 TFLOP/s on ~830 GB/s -> balance ~3.7, far below the Xeons'
  // ~19 — the design-point contrast the comparison is about.
  const Machine a64fx = makeA64fxNode();
  const double a64fxBalance =
      a64fx.hostPeakFp64Gflops /
      (a64fx.hostMemory.perNumaSaturation.inGBps() * 4.0);
  EXPECT_LT(a64fxBalance, 5.0);
  const Machine& sawtooth = byName("Sawtooth");
  const double xeonBalance =
      sawtooth.hostPeakFp64Gflops /
      (sawtooth.hostMemory.perNumaSaturation.inGBps() * 2.0);
  EXPECT_GT(xeonBalance, 3.0 * a64fxBalance);
}

}  // namespace
}  // namespace nodebench::machines
