#include "machines/machine_json.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/error.hpp"
#include "machines/registry.hpp"

namespace nodebench::machines {
namespace {

TEST(MachineJson, GpuMachineHasAllSections) {
  const std::string j = machineJson(byName("Frontier"));
  for (const char* key :
       {"\"name\": \"Frontier\"", "\"top500Rank\": 1", "\"software\"",
        "\"topology\"", "\"gpus\": 8", "\"hostMemory\"", "\"hostMpi\"",
        "\"device\"", "\"deviceMpi\"", "\"hbmGBps\"",
        "\"d2dClassResidualUs\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
}

TEST(MachineJson, CpuMachineOmitsDeviceSections) {
  const std::string j = machineJson(byName("Trinity"));
  EXPECT_EQ(j.find("\"device\""), std::string::npos);
  EXPECT_NE(j.find("\"cacheModeOverhead\": 1.15"), std::string::npos);
}

TEST(MachineJson, BracesBalanceForEveryMachine) {
  for (const Machine& m : allMachines()) {
    const std::string j = machineJson(m);
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'))
        << m.info.name;
    EXPECT_EQ(std::count(j.begin(), j.end(), '['),
              std::count(j.begin(), j.end(), ']'))
        << m.info.name;
    // Even number of unescaped quotes (cheap well-formedness check).
    std::size_t quotes = 0;
    for (std::size_t i = 0; i < j.size(); ++i) {
      if (j[i] == '"' && (i == 0 || j[i - 1] != '\\')) {
        ++quotes;
      }
    }
    EXPECT_EQ(quotes % 2, 0u) << m.info.name;
  }
}

TEST(MachineJson, RoundTripsCalibratedNumbers) {
  const std::string j = machineJson(byName("Polaris"));
  EXPECT_NE(j.find("\"kernelLaunchUs\": 1.83"), std::string::npos);
  EXPECT_NE(j.find("\"syncWaitUs\": 1.32"), std::string::npos);
}

// --- Cache-hierarchy round-trip (machine-JSON schema version 2) -------------

TEST(MachineJson, EveryMachineCarriesAVersionedHierarchy) {
  for (const Machine& m : allMachines()) {
    EXPECT_FALSE(m.cacheHierarchy.empty()) << m.info.name;
    const std::string j = machineJson(m);
    EXPECT_NE(j.find("\"schemaVersion\": 2"), std::string::npos)
        << m.info.name;
    EXPECT_NE(j.find("\"cacheHierarchy\""), std::string::npos)
        << m.info.name;
  }
}

TEST(MachineJson, HierarchyRoundTripsThroughTheStrictParser) {
  for (const Machine& m : allMachines()) {
    // emit -> parse -> emit is a fixed point: the parser recovers the
    // exact hierarchy the card embeds (same bytes, not just same shape).
    const CacheHierarchy parsed =
        machineCacheHierarchyFromJson(machineJson(m));
    EXPECT_EQ(cacheHierarchyJson(parsed),
              cacheHierarchyJson(m.cacheHierarchy))
        << m.info.name;
    ASSERT_EQ(parsed.levels.size(), m.cacheHierarchy.levels.size());
    EXPECT_EQ(parsed.levels.front().name, m.cacheHierarchy.levels.front().name);
  }
}

TEST(MachineJson, SectionParserIsTheInverseOfTheEmitter) {
  const CacheHierarchy& h = byName("Frontier").cacheHierarchy;
  const CacheHierarchy parsed = cacheHierarchyFromJson(cacheHierarchyJson(h));
  EXPECT_EQ(cacheHierarchyJson(parsed), cacheHierarchyJson(h));
}

TEST(MachineJson, VersionOneDocumentsYieldAnEmptyHierarchy) {
  // Pre-ladder cards carry no schemaVersion; they decode to "no
  // hierarchy", never to an error (forward compatibility contract).
  EXPECT_TRUE(machineCacheHierarchyFromJson(R"({"name": "old"})").empty());
  EXPECT_TRUE(
      machineCacheHierarchyFromJson(R"({"schemaVersion": 2, "name": "x"})")
          .empty());
}

TEST(MachineJson, StrictParserRejectsWithFieldNamedDiagnostics) {
  const auto expectRejects = [](const std::string& doc,
                                const std::string& needle) {
    try {
      (void)machineCacheHierarchyFromJson(doc);
      FAIL() << "accepted: " << doc;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << doc << " -> " << e.what();
    }
  };
  expectRejects(R"({"schemaVersion": 3})", "schemaVersion");
  expectRejects(R"({"schemaVersion": 0})", "schemaVersion");
  expectRejects(R"({"schemaVersion": 2.5})", "schemaVersion");
  expectRejects(R"([1])", "object");
  expectRejects(R"({"schemaVersion": 2, "cacheHierarchy": []})", "object");
  expectRejects(
      R"({"schemaVersion": 2, "cacheHierarchy":
          {"memoryLatencyNs": 90, "coreClockGHz": 2.0, "levels": [],
           "bogus": 1}})",
      "bogus");
  expectRejects(
      R"({"schemaVersion": 2, "cacheHierarchy":
          {"coreClockGHz": 2.0, "levels": []}})",
      "memoryLatencyNs");
  expectRejects(
      R"({"schemaVersion": 2, "cacheHierarchy":
          {"memoryLatencyNs": 90, "coreClockGHz": 2.0, "levels": 7}})",
      "levels");
  expectRejects(
      R"({"schemaVersion": 2, "cacheHierarchy":
          {"memoryLatencyNs": 90, "coreClockGHz": 2.0,
           "levels": [{"name": "L1"}]}})",
      "capacityBytes");
  expectRejects(
      R"({"schemaVersion": 2, "cacheHierarchy":
          {"memoryLatencyNs": 90, "coreClockGHz": 2.0,
           "levels": [{"name": "L1", "capacityBytes": -1,
                       "lineSizeBytes": 64, "loadToUseNs": 1.0,
                       "perCoreGBps": 100, "sharedByCores": 1}]}})",
      "capacityBytes");
  expectRejects(
      R"({"schemaVersion": 2, "cacheHierarchy":
          {"memoryLatencyNs": 90, "coreClockGHz": 2.0,
           "levels": [{"name": "L1", "capacityBytes": 32768,
                       "lineSizeBytes": 64, "loadToUseNs": 1.0,
                       "perCoreGBps": 100, "sharedByCores": 2000000}]}})",
      "sharedByCores");
}

TEST(MachineJson, StrictParserBoundsTheLevelCount) {
  std::string doc =
      R"({"schemaVersion": 2, "cacheHierarchy":
          {"memoryLatencyNs": 90, "coreClockGHz": 2.0, "levels": [)";
  for (int i = 0; i < 17; ++i) {
    if (i > 0) {
      doc += ", ";
    }
    doc += R"({"name": "L", "capacityBytes": 1024, "lineSizeBytes": 64,
               "loadToUseNs": 1.0, "perCoreGBps": 100, "sharedByCores": 1})";
  }
  doc += "]}}";
  try {
    (void)machineCacheHierarchyFromJson(doc);
    FAIL() << "accepted a 17-level ladder";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("16"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace nodebench::machines
