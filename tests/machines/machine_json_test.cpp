#include "machines/machine_json.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "machines/registry.hpp"

namespace nodebench::machines {
namespace {

TEST(MachineJson, GpuMachineHasAllSections) {
  const std::string j = machineJson(byName("Frontier"));
  for (const char* key :
       {"\"name\": \"Frontier\"", "\"top500Rank\": 1", "\"software\"",
        "\"topology\"", "\"gpus\": 8", "\"hostMemory\"", "\"hostMpi\"",
        "\"device\"", "\"deviceMpi\"", "\"hbmGBps\"",
        "\"d2dClassResidualUs\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << key;
  }
}

TEST(MachineJson, CpuMachineOmitsDeviceSections) {
  const std::string j = machineJson(byName("Trinity"));
  EXPECT_EQ(j.find("\"device\""), std::string::npos);
  EXPECT_NE(j.find("\"cacheModeOverhead\": 1.15"), std::string::npos);
}

TEST(MachineJson, BracesBalanceForEveryMachine) {
  for (const Machine& m : allMachines()) {
    const std::string j = machineJson(m);
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'))
        << m.info.name;
    EXPECT_EQ(std::count(j.begin(), j.end(), '['),
              std::count(j.begin(), j.end(), ']'))
        << m.info.name;
    // Even number of unescaped quotes (cheap well-formedness check).
    std::size_t quotes = 0;
    for (std::size_t i = 0; i < j.size(); ++i) {
      if (j[i] == '"' && (i == 0 || j[i - 1] != '\\')) {
        ++quotes;
      }
    }
    EXPECT_EQ(quotes % 2, 0u) << m.info.name;
  }
}

TEST(MachineJson, RoundTripsCalibratedNumbers) {
  const std::string j = machineJson(byName("Polaris"));
  EXPECT_NE(j.find("\"kernelLaunchUs\": 1.83"), std::string::npos);
  EXPECT_NE(j.find("\"syncWaitUs\": 1.32"), std::string::npos);
}

}  // namespace
}  // namespace nodebench::machines
