#include "machines/calibration.hpp"

#include <gtest/gtest.h>

#include "machines/builders.hpp"
#include "machines/node_shapes.hpp"
#include "machines/registry.hpp"

namespace nodebench::machines {
namespace {

using namespace nodebench::literals;

TEST(HostMemoryCalibration, InvertsTheStreamModel) {
  Machine m;
  m.topology = xeonDualSocketNode("X", 8);
  applyHostMemoryCalibration(
      m, HostMemoryTargets{10.0, 100.0, 150.0, "150", 1.0});
  EXPECT_DOUBLE_EQ(m.hostMemory.perCoreBw.inGBps(), 10.0);
  // Two NUMA domains share the 100 GB/s target.
  EXPECT_DOUBLE_EQ(m.hostMemory.perNumaSaturation.inGBps(), 50.0);
  EXPECT_EQ(m.hostMemory.peakNote, "150");
}

TEST(HostMemoryCalibration, CacheModeFactorRaisesPrimitives) {
  Machine m;
  m.topology = knlNode("KNL", 64, 4);
  applyHostMemoryCalibration(
      m, HostMemoryTargets{12.0, 300.0, 450.0, ">450", 1.15});
  EXPECT_DOUBLE_EQ(m.hostMemory.perCoreBw.inGBps(), 12.0 * 1.15);
  EXPECT_DOUBLE_EQ(m.hostMemory.perNumaSaturation.inGBps(), 300.0 * 1.15);
  EXPECT_DOUBLE_EQ(m.hostMemory.cacheModeOverhead, 1.15);
}

TEST(HostMemoryCalibration, RejectsBadTargets) {
  Machine m;
  m.topology = xeonDualSocketNode("X", 4);
  EXPECT_THROW(applyHostMemoryCalibration(
                   m, HostMemoryTargets{0.0, 100.0, 0.0, "", 1.0}),
               PreconditionError);
  EXPECT_THROW(applyHostMemoryCalibration(
                   m, HostMemoryTargets{10.0, 100.0, 0.0, "", 0.9}),
               PreconditionError);
}

TEST(CommScopeCalibration, SolvedModelHitsTargets) {
  // Build a fresh MI250X machine and verify that the *forward* model —
  // overheads + route + size/bw + wait — lands exactly on the calibration
  // targets at both probe sizes.
  Machine m = makeFrontier();
  const DeviceParams& d = *m.device;
  const auto& link =
      m.topology.hostGpuLink(m.topology.gpu(topo::GpuId{0}).socket,
                             topo::GpuId{0});
  const double latNs = d.memcpyCallOverhead.ns() + d.h2dDmaSetup.ns() +
                       link.latency.ns() +
                       128.0 / link.bandwidth.bytesPerNanosecond() +
                       d.syncWait.ns();
  EXPECT_NEAR(latNs / 1000.0, 12.91, 1e-6);

  const double S = 1024.0 * 1024.0 * 1024.0;
  const double bwTimeNs = d.memcpyCallOverhead.ns() + d.h2dDmaSetup.ns() +
                          link.latency.ns() +
                          S / link.bandwidth.bytesPerNanosecond() +
                          d.syncWait.ns();
  EXPECT_NEAR(S / bwTimeNs, 24.87, 1e-6);
}

TEST(CommScopeCalibration, AnchorClassHasZeroResidual) {
  for (const char* name :
       {"Frontier", "Summit", "Sierra", "Perlmutter", "Polaris", "Lassen",
        "RZVernal", "Tioga"}) {
    const Machine& m = byName(name);
    // Class A is the anchor on every studied machine.
    EXPECT_NEAR(m.device->d2dClassResidual[0].ns(), 0.0, 1e-6) << name;
  }
}

TEST(CommScopeCalibration, LaunchAndWaitAreVerbatim) {
  const Machine& m = byName("Polaris");
  EXPECT_DOUBLE_EQ(m.device->kernelLaunch.us(), 1.83);
  EXPECT_DOUBLE_EQ(m.device->syncWait.us(), 1.32);
}

TEST(DeviceStreamCalibration, ForwardModelReproducesTarget) {
  const Machine& m = byName("Summit");
  const DeviceParams& d = *m.device;
  // Triad at a 1 GiB vector: traffic = 3 GiB, one launch + one sync.
  const double traffic = 3.0 * 1024.0 * 1024.0 * 1024.0;
  const double timeNs = d.kernelLaunch.ns() + d.syncWait.ns() +
                        traffic / d.hbmBw.bytesPerNanosecond();
  EXPECT_NEAR(traffic / timeNs, 786.43, 1e-6);
}

TEST(DeviceStreamCalibration, AchievableBelowPeak) {
  for (const Machine* m : gpuMachines()) {
    EXPECT_LT(m->device->hbmBw.inGBps(), m->device->hbmPeak.inGBps())
        << m->info.name;
  }
}

TEST(DeviceMpiCalibration, BasePlusRouteEqualsTarget) {
  const Machine& m = byName("Summit");
  const auto pair = m.topology.representativePair(topo::LinkClass::A);
  ASSERT_TRUE(pair.has_value());
  const auto route = m.topology.routeGpuToGpu(pair->first, pair->second);
  EXPECT_NEAR(m.deviceMpi->baseOneWay.us() + route.latency.us(), 18.10, 1e-9);
}

TEST(DeviceMpiCalibration, Mi250xBaseIsSubMicrosecond) {
  // The GPU-RMA path: the paper's key MI250X observation.
  for (const char* name : {"Frontier", "RZVernal", "Tioga"}) {
    EXPECT_LT(byName(name).deviceMpi->baseOneWay.us(), 1.0) << name;
  }
  // Host-staging path on NVIDIA systems is tens of microseconds.
  for (const char* name : {"Summit", "Sierra", "Lassen"}) {
    EXPECT_GT(byName(name).deviceMpi->baseOneWay.us(), 10.0) << name;
  }
}

TEST(Calibration, RequiresDeviceParams) {
  Machine m;
  m.topology = a100Node("E", 32);
  EXPECT_THROW(applyCommScopeCalibration(m, CommScopeTargets{}),
               PreconditionError);
  EXPECT_THROW(applyDeviceStreamCalibration(m, 100.0, 200.0, "x", 0.01),
               PreconditionError);
}

}  // namespace
}  // namespace nodebench::machines
