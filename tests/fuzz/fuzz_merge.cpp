/// \file fuzz_merge.cpp
/// \brief Fuzz target for the shard-merge validator.
///
/// `nodebench merge` feeds operator-supplied files straight into
/// mergeShardJournals, so the whole validation pipeline — per-shard
/// decode, fingerprint comparison, manifest decoding, canonical-range
/// and coverage proofs — is an input boundary. The contract matches the
/// other decoders: every input either merges or raises the repository's
/// Error hierarchy, never a crash, hang, or over-allocation.
///
/// The input is a container, not one journal: repeated
/// [u32 LE length][shard bytes] entries (at most eight, a cap far above
/// any interesting shard-set shape but low enough to bound work). This
/// lets a fuzzer mutate *sets* — mismatched headers, forged manifests,
/// overlapping records — which a single-blob target could never reach.

#include "fuzz_targets.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "core/error.hpp"

namespace nodebench::fuzz {

int runMergeOneInput(const std::uint8_t* data, std::size_t size) {
  constexpr std::size_t kMaxShards = 8;
  std::vector<campaign::ShardInput> shards;
  std::size_t pos = 0;
  while (pos + 4 <= size && shards.size() < kMaxShards) {
    const std::size_t len = static_cast<std::size_t>(data[pos]) |
                            (static_cast<std::size_t>(data[pos + 1]) << 8) |
                            (static_cast<std::size_t>(data[pos + 2]) << 16) |
                            (static_cast<std::size_t>(data[pos + 3]) << 24);
    pos += 4;
    const std::size_t take = std::min(len, size - pos);
    campaign::ShardInput shard;
    shard.name = "fuzz-shard-" + std::to_string(shards.size());
    shard.bytes.assign(data + pos, data + pos + take);
    shards.push_back(std::move(shard));
    pos += take;
  }
  try {
    (void)campaign::mergeShardJournals(shards);
  } catch (const Error&) {
    // ShardMergeError (or Error) is the structured refusal path.
  }
  return 0;
}

}  // namespace nodebench::fuzz

#ifdef NODEBENCH_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return nodebench::fuzz::runMergeOneInput(data, size);
}
#endif
