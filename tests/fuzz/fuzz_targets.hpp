#pragma once
/// \file fuzz_targets.hpp
/// \brief The fuzz entry points, callable by name.
///
/// Each target lives in its own .cpp which also defines the canonical
/// `LLVMFuzzerTestOneInput` symbol when built as a libFuzzer driver
/// (NODEBENCH_FUZZ_DRIVER). The deterministic smoke test links *both*
/// targets into one gtest binary, which is only possible through these
/// named wrappers — two definitions of the C entry point cannot coexist.

#include <cstddef>
#include <cstdint>

namespace nodebench::fuzz {

/// Feeds `data` to the fault-plan JSON parser (raw JsonValue::parse and
/// the semantic FaultPlan::fromJson layer). Returns 0; any escape other
/// than the repository's Error hierarchy is a fuzz finding.
int runJsonOneInput(const std::uint8_t* data, std::size_t size);

/// Feeds `data` to the campaign-journal decoder (Journal::decode).
int runJournalOneInput(const std::uint8_t* data, std::size_t size);

/// Feeds `data` to the results-store decoder (stats::ResultStore::decode).
int runStoreOneInput(const std::uint8_t* data, std::size_t size);

/// Feeds `data` to the shard-merge validator (mergeShardJournals): the
/// input is a length-prefixed container of up to eight shard journal
/// images, so the fuzzer explores cross-shard validation (fingerprint
/// comparison, manifest forgery, coverage proofs) and not just
/// single-journal decoding.
int runMergeOneInput(const std::uint8_t* data, std::size_t size);

/// Feeds `data` to the machine-JSON cache-hierarchy parsers
/// (machines::machineCacheHierarchyFromJson and the bare section parser)
/// and, for accepted inputs, checks emit -> parse -> emit reaches a
/// fixed point (the hand-edited-card round-trip contract).
int runMachineJsonOneInput(const std::uint8_t* data, std::size_t size);

/// Feeds `data` to the serve campaign-request decoder
/// (serve::CampaignRequest::fromJson) and, for accepted inputs, checks
/// the canonical re-rendering is a fixed point (the crash-recovery
/// contract).
int runServeOneInput(const std::uint8_t* data, std::size_t size);

}  // namespace nodebench::fuzz
