/// \file fuzz_serve.cpp
/// \brief Fuzz target for the serve campaign-request decoder.
///
/// The daemon parses request bodies from untrusted local clients, so the
/// full fromJson stack (JSON reader, strict field whitelist, range
/// checks, inline fault-plan validation, machine-name canonicalization)
/// is an input boundary. For inputs that decode, the canonical form is
/// additionally required to re-decode to the same canonical bytes — the
/// crash-recovery path re-parses persisted canonical specs, so a
/// round-trip break there would surface as a resume failure in
/// production.
///
/// Build as a standalone fuzzer with
///   cmake -B build-fuzz -S . -DNODEBENCH_FUZZ=ON \
///         -DCMAKE_CXX_COMPILER=clang++
///   ./build-fuzz/tests/fuzz/nodebench_fuzz_serve tests/fuzz/corpus/serve
/// The same harness runs deterministically (corpus + seeded mutations,
/// no fuzzer runtime) inside ctest via fuzz_smoke_test.cpp.

#include "fuzz_targets.hpp"

#include <string>

#include "core/error.hpp"
#include "serve/request.hpp"

namespace nodebench::fuzz {

int runServeOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const serve::CampaignRequest req =
        serve::CampaignRequest::fromJson(text);
    // Decoded inputs must canonicalize stably (abort() under the fuzzer,
    // test failure in the smoke suite, via the Error below).
    const std::string canonical = req.canonicalJson();
    if (serve::CampaignRequest::fromJson(canonical).canonicalJson() !=
        canonical) {
      throw std::logic_error("canonical form is not a fixed point");
    }
    (void)req.measurementKey();
  } catch (const Error&) {
    // Structured rejection is the expected outcome for most inputs.
  }
  return 0;
}

}  // namespace nodebench::fuzz

#ifdef NODEBENCH_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return nodebench::fuzz::runServeOneInput(data, size);
}
#endif
