/// \file fuzz_store.cpp
/// \brief Fuzz target for the results-store decoder.
///
/// ResultStore::decode is the pure in-memory core of `nodebench
/// compare`/`gate` and of `--store --resume`: everything it reads is
/// untrusted bytes off disk. Its policy is stricter than the journal's
/// (no torn-tail recovery), so the contract is simply: return a
/// StoreContents or throw StoreCorruptError — never crash, hang, or
/// over-allocate on a hostile length field.

#include "fuzz_targets.hpp"

#include "core/error.hpp"
#include "stats/store.hpp"

namespace nodebench::fuzz {

int runStoreOneInput(const std::uint8_t* data, std::size_t size) {
  try {
    (void)stats::ResultStore::decode({data, size});
  } catch (const Error&) {
    // StoreCorruptError (or Error) is the structured rejection path.
  }
  return 0;
}

}  // namespace nodebench::fuzz

#ifdef NODEBENCH_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return nodebench::fuzz::runStoreOneInput(data, size);
}
#endif
