/// \file fuzz_machine_json.cpp
/// \brief Fuzz target for the machine-JSON cache-hierarchy boundary.
///
/// `nodebench card --json` documents are meant to be hand-edited and fed
/// back into tooling, so the schema-versioned strict parser
/// (machineCacheHierarchyFromJson and the bare section parser
/// cacheHierarchyFromJson) is an input boundary. For inputs that decode,
/// re-emitting through cacheHierarchyJson and re-parsing must reach a
/// fixed point — the same emit-parse-emit identity the machine-card
/// round-trip tests pin for registry machines, extended here to every
/// accepted document.
///
/// Build as a standalone fuzzer with
///   cmake -B build-fuzz -S . -DNODEBENCH_FUZZ=ON \
///         -DCMAKE_CXX_COMPILER=clang++
///   ./build-fuzz/tests/fuzz/nodebench_fuzz_machine_json \
///       tests/fuzz/corpus/machine_json
/// The same harness runs deterministically (corpus + seeded mutations,
/// no fuzzer runtime) inside ctest via fuzz_smoke_test.cpp.

#include "fuzz_targets.hpp"

#include <stdexcept>
#include <string>

#include "core/error.hpp"
#include "machines/machine_json.hpp"

namespace nodebench::fuzz {

int runMachineJsonOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  // Layer 1: a whole machine document (schemaVersion gate + section).
  try {
    const machines::CacheHierarchy h =
        machines::machineCacheHierarchyFromJson(text);
    const std::string emitted = machines::cacheHierarchyJson(h);
    if (machines::cacheHierarchyJson(
            machines::cacheHierarchyFromJson(emitted)) != emitted) {
      throw std::logic_error("cacheHierarchyJson is not a fixed point");
    }
  } catch (const Error&) {
    // Structured rejection is the expected outcome for most inputs.
  }
  // Layer 2: the bare cacheHierarchy section parser on the same bytes.
  try {
    (void)machines::cacheHierarchyFromJson(text);
  } catch (const Error&) {
  }
  return 0;
}

}  // namespace nodebench::fuzz

#ifdef NODEBENCH_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return nodebench::fuzz::runMachineJsonOneInput(data, size);
}
#endif
