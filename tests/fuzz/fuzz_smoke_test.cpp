/// \file fuzz_smoke_test.cpp
/// \brief Deterministic fuzz smoke suite — the in-tree stand-in for a
/// libFuzzer run.
///
/// ctest cannot assume a clang fuzzer runtime, so this gtest binary
/// replays the checked-in corpus and then drives both fuzz targets with
/// a fixed budget of seeded mutations (bit flips, truncations, byte
/// splices) derived from the corpus plus programmatically-built valid
/// journals. The acceptance bar is the fuzz contract: every input either
/// parses or raises the repository's Error hierarchy — no crash, hang,
/// or sanitizer report. A real fuzzing campaign (NODEBENCH_FUZZ=ON)
/// explores far deeper; this suite guards the boundary on every CI run.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/shard.hpp"
#include "core/rng.hpp"
#include "fuzz_targets.hpp"
#include "machines/machine_json.hpp"
#include "machines/registry.hpp"
#include "stats/store.hpp"

#ifndef NODEBENCH_FUZZ_CORPUS_DIR
#error "build system must define NODEBENCH_FUZZ_CORPUS_DIR"
#endif

namespace nodebench::fuzz {
namespace {

using Bytes = std::vector<std::uint8_t>;

std::vector<Bytes> readCorpus(const std::string& subdir) {
  const std::filesystem::path dir =
      std::filesystem::path(NODEBENCH_FUZZ_CORPUS_DIR) / subdir;
  std::vector<Bytes> out;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      paths.push_back(entry.path());
    }
  }
  // directory_iterator order is filesystem-dependent; sort for
  // deterministic mutation streams.
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in(p, std::ios::binary);
    Bytes bytes((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
    out.push_back(std::move(bytes));
  }
  return out;
}

/// A well-formed two-record journal, so mutations start from bytes that
/// reach the deepest decoder paths (header parse, record parse, payload
/// reads) rather than dying at the magic check.
Bytes validJournalSeed() {
  campaign::CampaignConfig cfg;
  cfg.registryHash = 0x1122334455667788ull;
  cfg.faultPlanHash = 0x99aabbccddeeff00ull;
  cfg.seed = 42;
  cfg.runs = 100;
  cfg.jobs = 8;
  Bytes bytes = campaign::Journal::encodeHeader(cfg);

  campaign::CellRecord ok;
  ok.machine = "Frontier";
  ok.cell = "T5 babelstream";
  ok.attempts = 1;
  campaign::PayloadWriter w;
  campaign::putSummary(w, Summary{});
  ok.payload = w.bytes();
  const Bytes r1 = campaign::Journal::encodeRecord(ok);
  bytes.insert(bytes.end(), r1.begin(), r1.end());

  campaign::CellRecord failed;
  failed.machine = "Theta";
  failed.cell = "T4 stream-triad";
  failed.attempts = 3;
  failed.failed = true;
  failed.error = "injected: link flap";
  const Bytes r2 = campaign::Journal::encodeRecord(failed);
  bytes.insert(bytes.end(), r2.begin(), r2.end());
  return bytes;
}

/// A well-formed two-record results store: header fingerprint plus one
/// bandwidth and one latency record with real sample vectors, so
/// mutations exercise the string/UTF-8 checks, the Summary read, and the
/// sample-count cross-check rather than dying at the magic.
Bytes validStoreSeed() {
  campaign::CampaignConfig cfg;
  cfg.registryHash = 0x1122334455667788ull;
  cfg.faultPlanHash = 0x99aabbccddeeff00ull;
  cfg.seed = 42;
  cfg.runs = 4;
  cfg.jobs = 8;
  Bytes bytes = stats::ResultStore::encodeHeader(cfg);

  stats::SampleRecord bw;
  bw.machine = "Frontier";
  bw.cell = "device bandwidth";
  bw.quantity = "bandwidth";
  bw.unit = "GB/s";
  bw.better = stats::Better::Higher;
  bw.samples = {1336.2, 1337.5, 1335.9, 1336.8};
  bw.summary = summarize(bw.samples);
  const Bytes r1 = stats::ResultStore::encodeRecord(bw);
  bytes.insert(bytes.end(), r1.begin(), r1.end());

  stats::SampleRecord lat;
  lat.machine = "Perlmutter";
  lat.cell = "cell \xc3\xa9\xe2\x82\xac";  // multi-byte UTF-8 is legal
  lat.quantity = "latency";
  lat.unit = "us";
  lat.better = stats::Better::Lower;
  lat.samples = {0.45, 0.46};
  lat.summary = summarize(lat.samples);
  const Bytes r2 = stats::ResultStore::encodeRecord(lat);
  bytes.insert(bytes.end(), r2.begin(), r2.end());
  return bytes;
}

/// A complete, *valid* two-shard merge container: both shards carry the
/// shard header extension, identical manifests with their canonical
/// ranges, and full cell coverage — so this seed actually merges, and
/// mutations explore the refusal paths from a byte pattern that reaches
/// the deepest validator stages (fingerprint diff, manifest equality,
/// range and coverage proofs) instead of dying at the magic check.
Bytes validMergeSeed() {
  const std::vector<campaign::GridCell> grid = {
      {"Trinity", "host bandwidth"},
      {"Trinity", "on-socket latency"},
      {"Manzano", "host bandwidth"},
  };
  Bytes container;
  const auto appendEntry = [&container](const Bytes& shard) {
    const auto len = static_cast<std::uint32_t>(shard.size());
    for (int i = 0; i < 4; ++i) {
      container.push_back(static_cast<std::uint8_t>((len >> (8 * i)) & 0xffu));
    }
    container.insert(container.end(), shard.begin(), shard.end());
  };
  for (std::uint32_t i = 0; i < 2; ++i) {
    campaign::CampaignConfig cfg;
    cfg.registryHash = 0x1122334455667788ull;
    cfg.seed = 7;
    cfg.runs = 5;
    cfg.jobs = 2;
    cfg.shardIndex = i;
    cfg.shardCount = 2;
    Bytes shard = campaign::Journal::encodeHeader(cfg);
    campaign::TableManifest manifest;
    manifest.label = "table 4";
    manifest.spec = {i, 2};
    manifest.cells = grid;
    manifest.assigned = campaign::shardRangeFor(grid.size(), manifest.spec);
    const Bytes m =
        campaign::Journal::encodeRecord(campaign::manifestRecord(manifest));
    shard.insert(shard.end(), m.begin(), m.end());
    for (std::size_t j = manifest.assigned.begin; j < manifest.assigned.end;
         ++j) {
      campaign::CellRecord cell;
      cell.machine = grid[j].machine;
      cell.cell = grid[j].cell;
      cell.attempts = 1;
      campaign::PayloadWriter w;
      campaign::putSummary(w, Summary{});
      cell.payload = w.bytes();
      const Bytes r = campaign::Journal::encodeRecord(cell);
      shard.insert(shard.end(), r.begin(), r.end());
    }
    appendEntry(shard);
  }
  return container;
}

/// One seeded mutation: flip bits, truncate, overwrite a run, or splice
/// in random bytes. Mirrors libFuzzer's default mutators closely enough
/// to shake out bounds bugs.
Bytes mutate(const Bytes& seed, Xoshiro256& rng) {
  Bytes out = seed;
  if (out.empty()) {
    out.push_back(static_cast<std::uint8_t>(rng.uniformInt(256)));
  }
  const std::uint64_t op = rng.uniformInt(4);
  switch (op) {
    case 0: {  // flip 1..8 random bits
      const std::uint64_t flips = 1 + rng.uniformInt(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        const std::size_t pos =
            static_cast<std::size_t>(rng.uniformInt(out.size()));
        out[pos] ^= static_cast<std::uint8_t>(1u << rng.uniformInt(8));
      }
      break;
    }
    case 1: {  // truncate at a random point
      out.resize(static_cast<std::size_t>(rng.uniformInt(out.size() + 1)));
      break;
    }
    case 2: {  // overwrite a short run with random bytes
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniformInt(out.size()));
      const std::size_t len = std::min<std::size_t>(
          out.size() - pos, 1 + static_cast<std::size_t>(rng.uniformInt(16)));
      for (std::size_t k = 0; k < len; ++k) {
        out[pos + k] = static_cast<std::uint8_t>(rng.uniformInt(256));
      }
      break;
    }
    default: {  // splice random bytes into the middle
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniformInt(out.size() + 1));
      const std::size_t len = 1 + static_cast<std::size_t>(rng.uniformInt(8));
      Bytes noise(len);
      for (auto& b : noise) {
        b = static_cast<std::uint8_t>(rng.uniformInt(256));
      }
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                 noise.begin(), noise.end());
      break;
    }
  }
  return out;
}

void drive(int (*target)(const std::uint8_t*, std::size_t),
           const std::vector<Bytes>& seeds, std::uint64_t rngSeed,
           int mutations) {
  ASSERT_FALSE(seeds.empty());
  for (const Bytes& s : seeds) {
    EXPECT_EQ(target(s.data(), s.size()), 0);
  }
  Xoshiro256 rng(rngSeed);
  for (int i = 0; i < mutations; ++i) {
    const Bytes& base =
        seeds[static_cast<std::size_t>(rng.uniformInt(seeds.size()))];
    const Bytes mutated = mutate(base, rng);
    EXPECT_EQ(target(mutated.data(), mutated.size()), 0);
  }
}

TEST(FuzzSmoke, JsonCorpusAndTenThousandMutations) {
  drive(&runJsonOneInput, readCorpus("json"), 0x6a736f6e5f667a31ull, 10'000);
}

TEST(FuzzSmoke, JournalCorpusAndTenThousandMutations) {
  std::vector<Bytes> seeds = readCorpus("journal");
  seeds.push_back(validJournalSeed());
  drive(&runJournalOneInput, seeds, 0x6e62636a5f667a31ull, 10'000);
}

TEST(FuzzSmoke, StoreCorpusAndTenThousandMutations) {
  std::vector<Bytes> seeds = readCorpus("store");
  seeds.push_back(validStoreSeed());
  drive(&runStoreOneInput, seeds, 0x6e62727335f67a31ull, 10'000);
}

TEST(FuzzSmoke, MergeCorpusAndTenThousandMutations) {
  std::vector<Bytes> seeds = readCorpus("merge");
  seeds.push_back(validMergeSeed());
  drive(&runMergeOneInput, seeds, 0x6d72675f667a3176ull, 10'000);
}

TEST(FuzzSmoke, ServeCorpusAndTenThousandMutations) {
  drive(&runServeOneInput, readCorpus("serve"), 0x7372765f667a3176ull, 10'000);
}

TEST(FuzzSmoke, MachineJsonCorpusAndTenThousandMutations) {
  std::vector<Bytes> seeds = readCorpus("machine_json");
  // Every registry card is a live seed: the fixed-point check then runs
  // against the exact documents `nodebench card --json` ships.
  for (const machines::Machine& m : machines::allMachines()) {
    const std::string j = machines::machineJson(m);
    seeds.emplace_back(j.begin(), j.end());
  }
  drive(&runMachineJsonOneInput, seeds, 0x6d6a736e5f667a31ull, 10'000);
}

/// Cross-pollination: each format's bytes into the other decoders.
/// Cheap, and catches "assumed the other format's framing" bugs —
/// journal and store share their CRC framing but not their magic or
/// payload schema, so each must cleanly reject the other.
TEST(FuzzSmoke, CrossFormatInputsAreRejectedGracefully) {
  const Bytes journal = validJournalSeed();
  const Bytes store = validStoreSeed();
  EXPECT_EQ(runJsonOneInput(journal.data(), journal.size()), 0);
  EXPECT_EQ(runStoreOneInput(journal.data(), journal.size()), 0);
  EXPECT_EQ(runJournalOneInput(store.data(), store.size()), 0);
  EXPECT_EQ(runJsonOneInput(store.data(), store.size()), 0);
  EXPECT_EQ(runServeOneInput(journal.data(), journal.size()), 0);
  EXPECT_EQ(runServeOneInput(store.data(), store.size()), 0);
  // Bare journals/stores into the merge container parser: the length
  // prefix reads as garbage lengths, and a store is not a journal.
  EXPECT_EQ(runMergeOneInput(journal.data(), journal.size()), 0);
  EXPECT_EQ(runMergeOneInput(store.data(), store.size()), 0);
  const Bytes mergeSeed = validMergeSeed();
  EXPECT_EQ(runJournalOneInput(mergeSeed.data(), mergeSeed.size()), 0);
  EXPECT_EQ(runStoreOneInput(mergeSeed.data(), mergeSeed.size()), 0);
  for (const Bytes& doc : readCorpus("json")) {
    EXPECT_EQ(runJournalOneInput(doc.data(), doc.size()), 0);
    EXPECT_EQ(runStoreOneInput(doc.data(), doc.size()), 0);
    // Fault-plan documents are also near-miss serve requests (a serve
    // spec embeds a plan under "fault_plan"), a good confusion corpus.
    EXPECT_EQ(runServeOneInput(doc.data(), doc.size()), 0);
  }
}

}  // namespace
}  // namespace nodebench::fuzz
