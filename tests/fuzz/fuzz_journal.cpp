/// \file fuzz_journal.cpp
/// \brief Fuzz target for the campaign-journal decoder.
///
/// Journal::decode is the pure in-memory core of `--resume`: everything
/// it reads is untrusted bytes off disk. The decoder must either return
/// a Decoded (possibly with a torn-tail warning) or throw
/// JournalCorruptError — never crash, hang, or over-allocate.

#include "fuzz_targets.hpp"

#include "campaign/journal.hpp"
#include "core/error.hpp"

namespace nodebench::fuzz {

int runJournalOneInput(const std::uint8_t* data, std::size_t size) {
  try {
    (void)campaign::Journal::decode({data, size});
  } catch (const Error&) {
    // JournalCorruptError (or Error) is the structured rejection path.
  }
  return 0;
}

}  // namespace nodebench::fuzz

#ifdef NODEBENCH_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return nodebench::fuzz::runJournalOneInput(data, size);
}
#endif
