/// \file fuzz_json.cpp
/// \brief Fuzz target for the fault-plan input boundary.
///
/// Build as a standalone fuzzer with
///   cmake -B build-fuzz -S . -DNODEBENCH_FUZZ=ON \
///         -DCMAKE_CXX_COMPILER=clang++
///   ./build-fuzz/tests/fuzz/nodebench_fuzz_json tests/fuzz/corpus/json
/// The same harness runs deterministically (corpus + seeded mutations,
/// no fuzzer runtime) inside ctest via fuzz_smoke_test.cpp.

#include "fuzz_targets.hpp"

#include <string>

#include "core/error.hpp"
#include "faults/fault_plan.hpp"
#include "faults/json_value.hpp"

namespace nodebench::fuzz {

int runJsonOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  // Layer 1: the raw JSON reader.
  try {
    (void)faults::JsonValue::parse(text);
  } catch (const Error&) {
    // Structured rejection is the expected outcome for most inputs.
  }
  // Layer 2: the semantic plan loader (spec validation on top of JSON).
  try {
    (void)faults::FaultPlan::fromJson(text);
  } catch (const Error&) {
  }
  return 0;
}

}  // namespace nodebench::fuzz

#ifdef NODEBENCH_FUZZ_DRIVER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return nodebench::fuzz::runJsonOneInput(data, size);
}
#endif
