/// \file queue_test.cpp
/// \brief Admission-queue tests: global and per-tenant limits, the
/// cross-tenant overtake in pop(), drain semantics, and a multi-threaded
/// hammer that doubles as the tsan surface for the serve queue (this file
/// is also built into nodebench_concurrency_tests).

#include "serve/queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace nodebench::serve {
namespace {

QueueLimits limits(std::size_t depth, std::size_t queued,
                   std::size_t inflight) {
  QueueLimits l;
  l.maxQueueDepth = depth;
  l.maxQueuedPerTenant = queued;
  l.maxInflightPerTenant = inflight;
  return l;
}

Ticket ticket(const std::string& tenant, int n) {
  return Ticket{tenant + "-" + std::to_string(n), tenant};
}

TEST(AdmissionQueue, GlobalDepthCapRejectsWithQueueFull) {
  AdmissionQueue q(limits(2, 10, 10));
  EXPECT_EQ(q.tryPush(ticket("a", 1)), Admit::Admitted);
  EXPECT_EQ(q.tryPush(ticket("b", 1)), Admit::Admitted);
  EXPECT_EQ(q.tryPush(ticket("c", 1)), Admit::QueueFull);
  EXPECT_GE(q.retryAfterSeconds(Admit::QueueFull), 1);
}

TEST(AdmissionQueue, TenantBudgetIsQueuedCapPlusFreeSlots) {
  // queued cap 1, inflight cap 1: a tenant may hold one queued ticket
  // plus one for its free executor slot, so the third is rejected.
  AdmissionQueue q(limits(100, 1, 1));
  EXPECT_EQ(q.tryPush(ticket("a", 1)), Admit::Admitted);
  EXPECT_EQ(q.tryPush(ticket("a", 2)), Admit::Admitted);
  EXPECT_EQ(q.tryPush(ticket("a", 3)), Admit::TenantQueueFull);
  // Other tenants are unaffected by a's limits.
  EXPECT_EQ(q.tryPush(ticket("b", 1)), Admit::Admitted);
}

TEST(AdmissionQueue, ZeroQueuedCapReportsInflightFull) {
  // The synchronous per-tenant configuration: one running, none queued.
  AdmissionQueue q(limits(100, 0, 1));
  EXPECT_EQ(q.tryPush(ticket("a", 1)), Admit::Admitted);
  const auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(q.tryPush(ticket("a", 2)), Admit::TenantInflightFull);
  q.finish(*first);
  EXPECT_EQ(q.tryPush(ticket("a", 3)), Admit::Admitted);
}

TEST(AdmissionQueue, PopLetsLaterTenantsOvertakeACappedOne) {
  AdmissionQueue q(limits(100, 4, 1));
  EXPECT_EQ(q.tryPush(ticket("a", 1)), Admit::Admitted);
  EXPECT_EQ(q.tryPush(ticket("a", 2)), Admit::Admitted);
  EXPECT_EQ(q.tryPush(ticket("b", 1)), Admit::Admitted);

  const auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, "a-1");
  // a is now at its inflight cap; the head of the queue is a-2, but pop
  // must hand out b-1 instead of head-of-line blocking on a.
  const auto second = q.pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, "b-1");
  q.finish(*first);
  const auto third = q.pop();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->id, "a-2");
}

TEST(AdmissionQueue, CloseDrainsRemainingTicketsThenReturnsNullopt) {
  AdmissionQueue q(limits(100, 10, 10));
  EXPECT_EQ(q.tryPush(ticket("a", 1)), Admit::Admitted);
  q.close();
  EXPECT_EQ(q.tryPush(ticket("a", 2)), Admit::Draining);
  const auto first = q.pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, "a-1");
  q.finish(*first);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // stays closed
}

TEST(AdmissionQueue, RecoveredTicketsBypassAdmissionLimits) {
  AdmissionQueue q(limits(1, 0, 1));
  EXPECT_EQ(q.tryPush(ticket("a", 1)), Admit::Admitted);
  EXPECT_EQ(q.tryPush(ticket("a", 2)), Admit::QueueFull);
  q.pushRecovered(ticket("a", 3));  // over every limit, still queued
  EXPECT_EQ(q.stats().queued, 2u);
}

TEST(AdmissionQueue, ConcurrentProducersConsumersAndStats) {
  // The tsan surface: producers admit against live quotas while
  // consumers pop/finish and a spectator polls stats. Every admitted
  // ticket must be consumed exactly once.
  AdmissionQueue q(limits(64, 8, 2));
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::atomic<int> pushed{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> workers;
  workers.reserve(kProducers + 3);
  for (int p = 0; p < kProducers; ++p) {
    workers.emplace_back([&, p] {
      const std::string tenant = "t" + std::to_string(p);
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.tryPush(ticket(tenant, i)) == Admit::Admitted) {
          pushed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    workers.emplace_back([&] {
      while (const auto t = q.pop()) {
        popped.fetch_add(1);
        q.finish(*t);
      }
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      (void)q.stats();
      std::this_thread::yield();
    }
  });

  for (int p = 0; p < kProducers; ++p) {
    workers[static_cast<std::size_t>(p)].join();
  }
  q.close();
  for (std::size_t i = kProducers; i < workers.size(); ++i) {
    workers[i].join();
  }
  EXPECT_EQ(popped.load(), pushed.load());
  const auto s = q.stats();
  EXPECT_EQ(s.queued, 0u);
  EXPECT_EQ(s.inflight, 0u);
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(popped.load()));
}

}  // namespace
}  // namespace nodebench::serve
