/// \file request_test.cpp
/// \brief Serve request decoder tests: strict validation (every rejection
/// names its field), canonical-form round-trips, and the measurement-key
/// envelope/measurement split that makes daemon memoization sound.

#include "serve/request.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"

namespace nodebench::serve {
namespace {

TEST(ServeRequest, DefaultsFromEmptyObject) {
  const CampaignRequest req = CampaignRequest::fromJson("{}");
  EXPECT_EQ(req.tenant, "default");
  EXPECT_EQ(req.tables, (std::vector<int>{4}));
  EXPECT_EQ(req.runs, 100);
  EXPECT_EQ(req.jobs, 1);
  EXPECT_TRUE(req.machines.empty());
  EXPECT_FALSE(req.faultPlan.has_value());
  EXPECT_FALSE(req.storeSamples);
  EXPECT_EQ(req.watchdogMs, 0);
  EXPECT_TRUE(req.wait);
}

TEST(ServeRequest, TablesAreSortedAndDeduplicated) {
  const CampaignRequest req =
      CampaignRequest::fromJson(R"({"tables":[7,5,5,4]})");
  EXPECT_EQ(req.tables, (std::vector<int>{4, 5, 7}));
}

TEST(ServeRequest, MachineNamesAreCanonicalizedAndSorted) {
  const CampaignRequest req = CampaignRequest::fromJson(
      R"({"machines":["theta","EAGLE","theta"]})");
  EXPECT_EQ(req.machines, (std::vector<std::string>{"Eagle", "Theta"}));
}

TEST(ServeRequest, RejectionsNameTheField) {
  const auto expectErrorMentioning = [](const std::string& doc,
                                        const std::string& needle) {
    try {
      (void)CampaignRequest::fromJson(doc);
      FAIL() << "accepted: " << doc;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << doc << " -> " << e.what();
    }
  };
  expectErrorMentioning(R"({"bogus":1})", "bogus");
  expectErrorMentioning(R"({"tables":[3]})", "tables");
  expectErrorMentioning(R"({"tables":[]})", "tables");
  expectErrorMentioning(R"({"runs":0})", "runs");
  expectErrorMentioning(R"({"runs":2.5})", "runs");
  expectErrorMentioning(R"({"jobs":1000})", "jobs");
  expectErrorMentioning(R"({"tenant":"has space"})", "tenant");
  expectErrorMentioning(R"({"tenant":""})", "tenant");
  expectErrorMentioning(R"({"machines":["Atlantis"]})", "Atlantis");
  expectErrorMentioning(R"({"watchdog_ms":-1})", "watchdog_ms");
  expectErrorMentioning(R"({"seed":7})", "fault_plan");
  expectErrorMentioning(
      R"({"retry_backoff_base_ms":100,"retry_backoff_max_ms":10})",
      "retry_backoff_max_ms");
  expectErrorMentioning("[]", "object");
  expectErrorMentioning("", "JSON");
}

TEST(ServeRequest, FamiliesAreSortedDeduplicatedAndValidated) {
  const CampaignRequest req = CampaignRequest::fromJson(
      R"({"families":["sweep","chase","sweep"]})");
  EXPECT_EQ(req.families, (std::vector<std::string>{"chase", "sweep"}));
  // A families-only request runs just the families — no implicit table.
  EXPECT_TRUE(req.tables.empty());

  const CampaignRequest both = CampaignRequest::fromJson(
      R"({"tables":[5],"families":["chase"]})");
  EXPECT_EQ(both.tables, (std::vector<int>{5}));
  EXPECT_EQ(both.families, (std::vector<std::string>{"chase"}));

  const auto expectErrorMentioning = [](const std::string& doc,
                                        const std::string& needle) {
    try {
      (void)CampaignRequest::fromJson(doc);
      FAIL() << "accepted: " << doc;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << doc << " -> " << e.what();
    }
  };
  expectErrorMentioning(R"({"families":[]})", "families");
  expectErrorMentioning(R"({"families":["stream"]})", "stream");
  expectErrorMentioning(R"({"families":[4]})", "string");
}

TEST(ServeRequest, FamiliesOnlyCanonicalFormRoundTrips) {
  // The canonical form must omit the empty "tables" key (the strict
  // decoder rejects empty arrays) and still re-parse to the same bytes —
  // the crash-recovery contract for persisted family campaigns.
  const CampaignRequest req =
      CampaignRequest::fromJson(R"({"families":["sweep"],"runs":3})");
  const std::string canonical = req.canonicalJson();
  EXPECT_EQ(canonical.find("\"tables\""), std::string::npos);
  const CampaignRequest reparsed = CampaignRequest::fromJson(canonical);
  EXPECT_EQ(reparsed.canonicalJson(), canonical);
  EXPECT_TRUE(reparsed.tables.empty());
  EXPECT_EQ(reparsed.families, (std::vector<std::string>{"sweep"}));
}

TEST(ServeRequest, FamiliesChangeTheMeasurementKey) {
  const CampaignRequest tablesOnly =
      CampaignRequest::fromJson(R"({"tables":[4],"runs":5})");
  const CampaignRequest withFamily = CampaignRequest::fromJson(
      R"({"tables":[4],"families":["chase"],"runs":5})");
  const CampaignRequest otherFamily = CampaignRequest::fromJson(
      R"({"tables":[4],"families":["sweep"],"runs":5})");
  EXPECT_NE(tablesOnly.measurementKey(), withFamily.measurementKey());
  EXPECT_NE(withFamily.measurementKey(), otherFamily.measurementKey());

  // Legacy requests keep their pre-families key (daemon memo stability).
  EXPECT_EQ(tablesOnly.measurementKey().find("families"), std::string::npos);
}

TEST(ServeRequest, CanonicalJsonRoundTripsToSameBytes) {
  const CampaignRequest req = CampaignRequest::fromJson(R"({
    "tenant": "alice", "tables": [6,5], "runs": 7, "jobs": 2,
    "machines": ["summit", "Frontier"],
    "fault_plan": {"seed": 9,
      "faults": [{"type": "link-degrade", "machine": "Frontier",
                  "link": "A", "bandwidth_factor": 0.5}]},
    "watchdog_ms": 1000, "wait": false, "cell_retries": 1,
    "retry_backoff_base_ms": 5, "retry_backoff_max_ms": 40
  })");
  const std::string canonical = req.canonicalJson();
  const CampaignRequest reparsed = CampaignRequest::fromJson(canonical);
  EXPECT_EQ(reparsed.canonicalJson(), canonical);
  EXPECT_EQ(reparsed.tenant, "alice");
  EXPECT_EQ(reparsed.tables, (std::vector<int>{5, 6}));
  EXPECT_EQ(reparsed.machines,
            (std::vector<std::string>{"Frontier", "Summit"}));
  ASSERT_TRUE(reparsed.faultPlan.has_value());
  EXPECT_FALSE(reparsed.wait);
}

TEST(ServeRequest, MeasurementKeyIgnoresTheServeEnvelope) {
  const CampaignRequest a = CampaignRequest::fromJson(
      R"({"tenant":"alice","tables":[4],"runs":5,"watchdog_ms":99,
          "wait":false,"jobs":2})");
  const CampaignRequest b = CampaignRequest::fromJson(
      R"({"tenant":"bob","tables":[4],"runs":5,"jobs":7})");
  // Different tenant / watchdog / wait / jobs: same measured bytes by the
  // determinism contract, so the keys must collide (that is the cache).
  EXPECT_EQ(a.measurementKey(), b.measurementKey());

  const CampaignRequest c =
      CampaignRequest::fromJson(R"({"tables":[4],"runs":6})");
  EXPECT_NE(a.measurementKey(), c.measurementKey());
  const CampaignRequest d =
      CampaignRequest::fromJson(R"({"tables":[4],"runs":5,
                                    "machines":["Theta"]})");
  EXPECT_NE(a.measurementKey(), d.measurementKey());
}

TEST(ServeRequest, TableOptionsReflectTheRequest) {
  const CampaignRequest req = CampaignRequest::fromJson(
      R"({"runs":9,"jobs":3,"machines":["Theta"],"cell_retries":5,
          "retry_backoff_base_ms":2,"retry_backoff_max_ms":20})");
  const report::TableOptions opt = req.tableOptions();
  EXPECT_EQ(opt.binaryRuns, 9);
  EXPECT_EQ(opt.jobs, 3);
  ASSERT_NE(opt.machines, nullptr);
  EXPECT_EQ(*opt.machines, req.machines);
  EXPECT_EQ(opt.cellRetries, 5);
  EXPECT_EQ(opt.retryBackoffBaseMs, 2);
  EXPECT_EQ(opt.retryBackoffMaxMs, 20);
  EXPECT_EQ(opt.faults, nullptr);
}

}  // namespace
}  // namespace nodebench::serve
