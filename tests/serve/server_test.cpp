/// \file server_test.cpp
/// \brief End-to-end daemon tests over a real unix socket: request
/// lifecycle, structured back-pressure, watchdog cancellation that
/// leaves concurrent tenants untouched, and the drain -> restart ->
/// resume path producing byte-identical results (ISSUE 7's robustness
/// proof; the SIGKILL variant lives in tools/run_crash_suite.sh, which
/// kills the real binary).

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>

namespace nodebench::serve {
namespace {

namespace fs = std::filesystem;

struct Response {
  int status = 0;
  std::map<std::string, std::string> headers;  // lowercased keys
  std::string body;
};

/// Minimal HTTP/1.1 client: one request, read to EOF (the daemon sends
/// Connection: close), parse status/headers/body.
Response roundTrip(const std::string& socketPath, const std::string& raw) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                      sizeof(addr)),
            0)
      << socketPath;
  std::size_t off = 0;
  while (off < raw.size()) {
    const ssize_t n = ::write(fd, raw.data() + off, raw.size() - off);
    if (n <= 0) {
      ADD_FAILURE() << "write to daemon failed";
      ::close(fd);
      return Response{};
    }
    off += static_cast<std::size_t>(n);
  }
  std::string in;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      break;
    }
    in.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  Response resp;
  const std::size_t headerEnd = in.find("\r\n\r\n");
  EXPECT_NE(headerEnd, std::string::npos) << in;
  if (headerEnd == std::string::npos) {
    return resp;
  }
  resp.body = in.substr(headerEnd + 4);
  const std::string head = in.substr(0, headerEnd);
  std::size_t lineEnd = head.find("\r\n");
  const std::string statusLine = head.substr(0, lineEnd);
  resp.status = std::stoi(statusLine.substr(statusLine.find(' ') + 1));
  std::size_t pos = lineEnd + 2;
  while (pos < head.size()) {
    std::size_t end = head.find("\r\n", pos);
    if (end == std::string::npos) {
      end = head.size();
    }
    const std::string line = head.substr(pos, end - pos);
    pos = end + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string key = line.substr(0, colon);
    for (char& c : key) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    std::string value = line.substr(colon + 1);
    while (!value.empty() && value.front() == ' ') {
      value.erase(value.begin());
    }
    resp.headers[key] = value;
  }
  return resp;
}

Response post(const std::string& socketPath, const std::string& body) {
  return roundTrip(socketPath,
                   "POST /requests HTTP/1.1\r\nContent-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body);
}

Response get(const std::string& socketPath, const std::string& target) {
  return roundTrip(socketPath, "GET " + target + " HTTP/1.1\r\n\r\n");
}

class ServeServerTest : public ::testing::Test {
 protected:
  /// Per-test socket path + state dir under the system temp dir; short
  /// socket names because sun_path is tiny.
  std::string scratch(const std::string& leaf) {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string dir =
        (fs::temp_directory_path() / ("nbsrv-" + std::string(info->name())))
            .string();
    fs::create_directories(dir);
    return dir + "/" + leaf;
  }

  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    fs::remove_all(fs::temp_directory_path() /
                   ("nbsrv-" + std::string(info->name())));
  }

  ServerOptions baseOptions(const std::string& tag) {
    ServerOptions opt;
    opt.socketPath = scratch(tag + ".sock");
    opt.stateDir = scratch(tag + "-state");
    opt.allowDebugHooks = true;
    opt.ioThreads = 2;
    opt.executorThreads = 1;
    return opt;
  }
};

// A tiny fast request: one CPU machine, two runs, Table 4 = 4 cells.
constexpr const char* kTinySpec =
    R"({"tables":[4],"runs":2,"machines":["Theta"]})";

TEST_F(ServeServerTest, HealthzRoutingAndBadRequests) {
  Server server(baseOptions("a"));
  server.start();
  const std::string sock = scratch("a.sock");

  const Response health = get(sock, "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"state\":\"serving\""), std::string::npos);

  EXPECT_EQ(get(sock, "/nope").status, 404);
  EXPECT_EQ(get(sock, "/requests/not-an-id").status, 400);
  EXPECT_EQ(get(sock, "/requests/req-999999").status, 404);
  const Response bad = post(sock, "{\"runs\":0}");
  EXPECT_EQ(bad.status, 400);
  EXPECT_NE(bad.body.find("runs"), std::string::npos);
  EXPECT_EQ(post(sock, "not json").status, 400);

  server.requestDrain();
  server.waitUntilStopped();
}

TEST_F(ServeServerTest, SubmitWaitReturnsTableAndPersistsResult) {
  Server server(baseOptions("b"));
  server.start();
  const std::string sock = scratch("b.sock");

  const Response resp = post(sock, kTinySpec);
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"state\":\"done\""), std::string::npos);
  EXPECT_NE(resp.body.find("Table 4"), std::string::npos);
  EXPECT_NE(resp.body.find("Theta"), std::string::npos);

  // Status GET serves the same persisted document.
  const Response status = get(sock, "/requests/req-000001");
  EXPECT_EQ(status.status, 200);
  EXPECT_EQ(status.body, resp.body);

  // An identical spec from another tenant hits the process-wide memo.
  const Response again =
      post(sock, R"({"tenant":"other","tables":[4],"runs":2,)"
                 R"("machines":["Theta"]})");
  EXPECT_EQ(again.status, 200);
  const Response health = get(sock, "/healthz");
  EXPECT_NE(health.body.find("\"memo_hits\":1"), std::string::npos)
      << health.body;

  server.requestDrain();
  server.waitUntilStopped();
}

TEST_F(ServeServerTest, MemoEvictionIsBoundedLruAndByteIdentical) {
  // A one-slot memo table: the second distinct spec evicts the first,
  // and a recomputed result after eviction is byte-identical to the
  // originally memoized one (determinism is what makes eviction safe).
  ServerOptions opt = baseOptions("m");
  opt.memoMaxEntries = 1;
  Server server(opt);
  server.start();
  const std::string sock = scratch("m.sock");

  constexpr const char* kOtherSpec =
      R"({"tables":[4],"runs":2,"machines":["Trinity"]})";
  const auto tablesOf = [](const Response& r) {
    const std::size_t pos = r.body.find("\"tables\"");
    EXPECT_NE(pos, std::string::npos) << r.body;
    return pos == std::string::npos ? std::string() : r.body.substr(pos);
  };

  const Response first = post(sock, kTinySpec);
  EXPECT_EQ(first.status, 200);
  // Same spec again: a hit, no eviction.
  EXPECT_EQ(post(sock, kTinySpec).status, 200);
  Response health = get(sock, "/healthz");
  EXPECT_NE(health.body.find("\"memo_hits\":1"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"memo_evictions\":0"), std::string::npos)
      << health.body;

  // A different spec fills the only slot, evicting the first.
  EXPECT_EQ(post(sock, kOtherSpec).status, 200);
  health = get(sock, "/healthz");
  EXPECT_NE(health.body.find("\"memo_evictions\":1"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"memo_entries\":1"), std::string::npos)
      << health.body;
  EXPECT_NE(health.body.find("\"memo_max_entries\":1"), std::string::npos)
      << health.body;

  // The evicted spec recomputes (no new hit) — byte-identical tables.
  const Response again = post(sock, kTinySpec);
  EXPECT_EQ(again.status, 200);
  EXPECT_EQ(tablesOf(again), tablesOf(first));
  health = get(sock, "/healthz");
  EXPECT_NE(health.body.find("\"memo_hits\":1"), std::string::npos)
      << "recomputation after eviction must not count as a hit: "
      << health.body;
  EXPECT_NE(health.body.find("\"memo_evictions\":2"), std::string::npos)
      << health.body;

  server.requestDrain();
  server.waitUntilStopped();
}

TEST_F(ServeServerTest, BackPressureIsStructuredWithRetryAfter) {
  ServerOptions opt = baseOptions("c");
  opt.limits.maxQueueDepth = 2;
  opt.limits.maxQueuedPerTenant = 1;
  opt.limits.maxInflightPerTenant = 1;
  Server server(std::move(opt));
  server.start();
  const std::string sock = scratch("c.sock");

  // Park the single executor on a slow request, then fill alice's quota:
  // one queued + zero free slots -> the next submission bounces.
  const std::string slow =
      R"({"tenant":"alice","tables":[4],"runs":2,"machines":["Theta"],)"
      R"("debug_cell_delay_ms":300,"wait":false})";
  EXPECT_EQ(post(sock, slow).status, 202);
  // Give the executor time to pop the first request off the queue, so
  // the counts below are deterministic: alice has 1 inflight, 0 queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(post(sock, slow).status, 202);
  const Response rejected = post(sock, slow);
  EXPECT_EQ(rejected.status, 429);
  EXPECT_NE(rejected.body.find("\"reason\":\"tenant-"), std::string::npos)
      << rejected.body;
  EXPECT_NE(rejected.body.find("\"retry_after_s\":"), std::string::npos);
  ASSERT_TRUE(rejected.headers.count("retry-after"));

  // bob's quota is independent, but the *global* depth cap (2) is now
  // reachable: one bob admission fills it, the next is queue-full.
  const std::string bobSlow =
      R"({"tenant":"bob","tables":[4],"runs":2,"machines":["Theta"],)"
      R"("debug_cell_delay_ms":300,"wait":false})";
  EXPECT_EQ(post(sock, bobSlow).status, 202);
  const Response full = post(sock, bobSlow);
  EXPECT_EQ(full.status, 429);
  EXPECT_NE(full.body.find("\"reason\":\"queue-full\""), std::string::npos)
      << full.body;

  // A rejected submission leaves no residue: its spec is removed, so a
  // later restart has nothing to resume for it.
  server.requestDrain();
  server.waitUntilStopped();
}

TEST_F(ServeServerTest, WatchdogCancelsStuckRequestOthersUnaffected) {
  ServerOptions opt = baseOptions("d");
  opt.executorThreads = 2;
  opt.watchdogPollMs = 10;
  Server server(std::move(opt));
  server.start();
  const std::string sock = scratch("d.sock");

  // The stuck request: per-cell delay far past its watchdog budget.
  Response stuck;
  std::thread stuckClient([&] {
    stuck = post(sock,
                 R"({"tenant":"stuck","tables":[4],"runs":2,)"
                 R"("machines":["Theta"],"watchdog_ms":80,)"
                 R"("debug_cell_delay_ms":400})");
  });
  // A healthy neighbour on the second executor, meanwhile.
  const Response healthy =
      post(sock, R"({"tenant":"ok","tables":[4],"runs":2,)"
                 R"("machines":["Eagle"]})");
  stuckClient.join();

  EXPECT_EQ(healthy.status, 200);
  EXPECT_NE(healthy.body.find("\"state\":\"done\""), std::string::npos);

  EXPECT_EQ(stuck.status, 200);
  EXPECT_NE(stuck.body.find("\"state\":\"cancelled\""), std::string::npos)
      << stuck.body;
  EXPECT_NE(stuck.body.find("\"kind\":\"watchdog\""), std::string::npos);

  const Response health = get(sock, "/healthz");
  EXPECT_NE(health.body.find("\"watchdog_cancelled\":1"), std::string::npos)
      << health.body;

  server.requestDrain();
  server.waitUntilStopped();
}

TEST_F(ServeServerTest, DrainThenResumeProducesByteIdenticalResult) {
  const std::string stateDir = scratch("e-state");
  const std::string spec =
      R"({"tables":[4],"runs":2,"machines":["Theta"],)"
      R"("debug_cell_delay_ms":150,"wait":false})";

  {
    ServerOptions opt = baseOptions("e");
    Server server(std::move(opt));
    server.start();
    EXPECT_EQ(post(scratch("e.sock"), spec).status, 202);
    // Let it start measuring, then drain mid-request: the spec must stay
    // on disk without a result.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    server.requestDrain();
    server.waitUntilStopped();
  }
  ASSERT_TRUE(fs::exists(stateDir + "/req-000001.spec.json"));
  ASSERT_FALSE(fs::exists(stateDir + "/req-000001.result.json"));
  ASSERT_TRUE(fs::exists(stateDir + "/req-000001.journal"))
      << "drain should have journalled the in-flight cell(s)";

  {
    ServerOptions opt = baseOptions("e");
    opt.socketPath = scratch("e2.sock");
    opt.resume = true;
    Server server(std::move(opt));
    server.start();
    // The recovered request finishes without any client involvement.
    for (int i = 0; i < 100 && !fs::exists(stateDir + "/req-000001.result.json");
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const Response status = get(scratch("e2.sock"), "/requests/req-000001");
    EXPECT_EQ(status.status, 200);
    EXPECT_NE(status.body.find("\"state\":\"done\""), std::string::npos)
        << status.body;
    server.requestDrain();
    server.waitUntilStopped();
  }

  // The reference: the same spec executed uninterrupted in a fresh state
  // dir gets the same id, so the result documents must match bytewise.
  {
    ServerOptions opt = baseOptions("e");
    opt.socketPath = scratch("f.sock");
    opt.stateDir = scratch("f-state");
    Server server(std::move(opt));
    server.start();
    EXPECT_EQ(
        post(scratch("f.sock"),
             R"({"tables":[4],"runs":2,"machines":["Theta"],"wait":true})")
            .status,
        200);
    server.requestDrain();
    server.waitUntilStopped();
  }

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };
  const std::string resumed = slurp(stateDir + "/req-000001.result.json");
  const std::string fresh =
      slurp(scratch("f-state") + "/req-000001.result.json");
  ASSERT_FALSE(resumed.empty());
  EXPECT_EQ(resumed, fresh)
      << "resumed result must be byte-identical to an uninterrupted run";
}

TEST_F(ServeServerTest, DebugHooksAreGatedByServerOption) {
  ServerOptions opt = baseOptions("g");
  opt.allowDebugHooks = false;
  Server server(std::move(opt));
  server.start();
  const Response resp =
      post(scratch("g.sock"),
           R"({"tables":[4],"runs":2,"debug_cell_delay_ms":10})");
  EXPECT_EQ(resp.status, 400);
  EXPECT_NE(resp.body.find("--test-hooks"), std::string::npos);
  server.requestDrain();
  server.waitUntilStopped();
}

}  // namespace
}  // namespace nodebench::serve
