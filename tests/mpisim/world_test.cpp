#include "mpisim/world.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "machines/registry.hpp"
#include "mpisim/transport.hpp"

namespace nodebench::mpisim {
namespace {

using machines::byName;
using topo::CoreId;

std::vector<RankPlacement> hostPair(const machines::Machine& m, int a = 0,
                                    int b = 1) {
  return {RankPlacement{CoreId{a}, std::nullopt},
          RankPlacement{CoreId{b}, std::nullopt}};
}

TEST(Transport, EagerOneWayComposition) {
  const auto& m = byName("Eagle");
  const auto ranks = hostPair(m);
  const PathTiming t = resolvePath(m, ranks[0], ranks[1],
                                   BufferSpace::host(), BufferSpace::host());
  // On-socket: softwareOverhead + sameNumaHop = 0.15 + 0.02 = 0.17 us.
  EXPECT_NEAR(t.eagerOneWay(ByteCount{0}).us(), 0.17, 1e-9);
  // Payload adds size/eagerBandwidth.
  const double with1k = t.eagerOneWay(ByteCount::kib(1)).us();
  EXPECT_NEAR(with1k - 0.17, 1024.0 / (8.0 * 1000.0), 1e-9);
}

TEST(Transport, CrossSocketUsesCrossHop) {
  const auto& m = byName("Eagle");
  const auto ranks = hostPair(m, 0, 18);  // second socket's first core
  const PathTiming t = resolvePath(m, ranks[0], ranks[1],
                                   BufferSpace::host(), BufferSpace::host());
  EXPECT_NEAR(t.eagerOneWay(ByteCount{0}).us(), 0.38, 1e-9);
}

TEST(Transport, KnlMeshDistanceScalesLatency) {
  const auto& m = byName("Trinity");
  const auto near = hostPair(m, 0, 1);   // same tile
  const auto far = hostPair(m, 0, 67);   // across the mesh
  const PathTiming tn = resolvePath(m, near[0], near[1], BufferSpace::host(),
                                    BufferSpace::host());
  const PathTiming tf = resolvePath(m, far[0], far[1], BufferSpace::host(),
                                    BufferSpace::host());
  EXPECT_NEAR(tn.eagerOneWay(ByteCount{0}).us(), 0.67, 1e-9);
  EXPECT_NEAR(tf.eagerOneWay(ByteCount{0}).us(), 0.99, 1e-9);
}

TEST(Transport, DevicePathMuchSlowerOnV100ThanMi250x) {
  const auto& summit = byName("Summit");
  const auto& frontier = byName("Frontier");
  const RankPlacement a{CoreId{0}, 0};
  const RankPlacement b{CoreId{1}, 1};
  const PathTiming v100 =
      resolvePath(summit, a, b, BufferSpace::onDevice(0),
                  BufferSpace::onDevice(1));
  const PathTiming mi = resolvePath(frontier, a, b, BufferSpace::onDevice(0),
                                    BufferSpace::onDevice(1));
  EXPECT_GT(v100.eagerOneWay(ByteCount::bytes(8)).us(), 15.0);
  EXPECT_LT(mi.eagerOneWay(ByteCount::bytes(8)).us(), 1.0);
}

TEST(Transport, DeviceBuffersRequireBoundGpus) {
  const auto& m = byName("Summit");
  const RankPlacement noGpu{CoreId{0}, std::nullopt};
  const RankPlacement withGpu{CoreId{1}, 1};
  EXPECT_THROW((void)resolvePath(m, noGpu, withGpu, BufferSpace::onDevice(0),
                                 BufferSpace::onDevice(1)),
               PreconditionError);
}

TEST(Transport, DeviceBuffersOnCpuMachineRejected) {
  const auto& m = byName("Eagle");
  const RankPlacement a{CoreId{0}, std::nullopt};
  const RankPlacement b{CoreId{1}, std::nullopt};
  EXPECT_THROW((void)resolvePath(m, a, b, BufferSpace::onDevice(0),
                                 BufferSpace::onDevice(1)),
               PreconditionError);
}

TEST(MpiWorld, PingPongMatchesAnalyticEagerLatency) {
  const auto& m = byName("Manzano");
  const auto ranks = hostPair(m);
  MpiWorld world(m, ranks);
  const ByteCount size = ByteCount::bytes(8);
  Duration elapsed = Duration::zero();
  world.runEach({
      [&](Communicator& c) {
        const Duration start = c.now();
        for (int i = 0; i < 10; ++i) {
          c.send(1, 7, size);
          c.recv(1, 7, size);
        }
        elapsed = c.now() - start;
      },
      [](Communicator& c) {
        for (int i = 0; i < 10; ++i) {
          c.recv(0, 7, ByteCount::bytes(8));
          c.send(0, 7, ByteCount::bytes(8));
        }
      },
  });
  const PathTiming t = resolvePath(m, ranks[0], ranks[1],
                                   BufferSpace::host(), BufferSpace::host());
  EXPECT_NEAR(elapsed.us() / 20.0, t.eagerOneWay(size).us(), 1e-9);
}

TEST(MpiWorld, RendezvousCostsExceedRawCopy) {
  const auto& m = byName("Manzano");
  MpiWorld world(m, hostPair(m));
  const ByteCount big = ByteCount::kib(64);  // above the 8 KiB threshold
  Duration elapsed = Duration::zero();
  world.runEach({
      [&](Communicator& c) {
        const Duration start = c.now();
        c.send(1, 1, big);
        c.recv(1, 1, big);
        elapsed = c.now() - start;
      },
      [&](Communicator& c) {
        c.recv(0, 1, big);
        c.send(0, 1, big);
      },
  });
  const PathTiming t = resolvePath(m, hostPair(m)[0], hostPair(m)[1],
                                   BufferSpace::host(), BufferSpace::host());
  const double oneWay = elapsed.us() / 2.0;
  // Handshake plus copy: strictly more than the raw single-copy time, and
  // more than the eager latency at the threshold (the protocol step).
  EXPECT_GT(oneWay, t.rendezvousBandwidth.transferTime(big).us());
  EXPECT_GT(oneWay, t.eagerOneWay(m.hostMpi.eagerThreshold).us());
}

TEST(MpiWorld, TagsMatchSelectively) {
  const auto& m = byName("Manzano");
  MpiWorld world(m, hostPair(m));
  std::vector<int> recvOrder;
  world.runEach({
      [&](Communicator& c) {
        c.send(1, /*tag=*/20, ByteCount::bytes(4));
        c.send(1, /*tag=*/10, ByteCount::bytes(4));
      },
      [&](Communicator& c) {
        // Receive in reverse tag order; matching must be by tag, not FIFO.
        c.recv(0, 10, ByteCount::bytes(4));
        recvOrder.push_back(10);
        c.recv(0, 20, ByteCount::bytes(4));
        recvOrder.push_back(20);
      },
  });
  EXPECT_EQ(recvOrder, (std::vector<int>{10, 20}));
}

TEST(MpiWorld, ReceiveBufferTooSmallThrows) {
  const auto& m = byName("Manzano");
  MpiWorld world(m, hostPair(m));
  EXPECT_THROW(
      world.runEach({
          [](Communicator& c) { c.send(1, 1, ByteCount::kib(1)); },
          [](Communicator& c) { c.recv(0, 1, ByteCount::bytes(16)); },
      }),
      PreconditionError);
}

TEST(MpiWorld, UnmatchedRecvDeadlocks) {
  const auto& m = byName("Manzano");
  MpiWorld world(m, hostPair(m));
  EXPECT_THROW(world.run([](Communicator& c) {
                 if (c.rank() == 0) {
                   c.recv(1, 99, ByteCount::bytes(8));  // never sent
                 }
               }),
               sim::DeadlockError);
}

TEST(MpiWorld, BarrierSynchronizesClocks) {
  const auto& m = byName("Sawtooth");
  std::vector<RankPlacement> ranks;
  for (int i = 0; i < 4; ++i) {
    ranks.push_back(RankPlacement{CoreId{i}, std::nullopt});
  }
  MpiWorld world(m, ranks);
  std::vector<double> afterBarrier(4, 0.0);
  world.run([&](Communicator& c) {
    // Stagger local work, then meet at the barrier.
    c.compute(Duration::microseconds(1.0 + c.rank() * 3.0));
    c.barrier();
    afterBarrier[c.rank()] = c.now().us();
  });
  // Nobody leaves the barrier before the slowest rank arrived.
  for (double t : afterBarrier) {
    EXPECT_GE(t, 10.0);
  }
}

TEST(MpiWorld, SelfSendRejected) {
  const auto& m = byName("Manzano");
  MpiWorld world(m, hostPair(m));
  EXPECT_THROW(world.run([](Communicator& c) {
                 if (c.rank() == 0) {
                   c.send(0, 1, ByteCount::bytes(8));
                 }
               }),
               PreconditionError);
}

TEST(MpiWorld, ValidatesPlacements) {
  const auto& m = byName("Manzano");
  EXPECT_THROW(MpiWorld(m, {RankPlacement{CoreId{0}, std::nullopt}}),
               PreconditionError);  // < 2 ranks
  EXPECT_THROW(MpiWorld(m, {RankPlacement{CoreId{0}, std::nullopt},
                            RankPlacement{CoreId{9999}, std::nullopt}}),
               PreconditionError);  // bad core
  EXPECT_THROW(MpiWorld(m, {RankPlacement{CoreId{0}, 3},
                            RankPlacement{CoreId{1}, std::nullopt}}),
               PreconditionError);  // GPU on a CPU-only machine
}

TEST(MpiWorld, DeterministicTimings) {
  const auto& m = byName("Theta");
  const auto run = [&] {
    MpiWorld world(m, hostPair(m, 0, 63));
    Duration elapsed = Duration::zero();
    world.runEach({
        [&](Communicator& c) {
          for (int i = 0; i < 50; ++i) {
            c.send(1, 3, ByteCount::bytes(64));
            c.recv(1, 3, ByteCount::bytes(64));
          }
          elapsed = c.now();
        },
        [](Communicator& c) {
          for (int i = 0; i < 50; ++i) {
            c.recv(0, 3, ByteCount::bytes(64));
            c.send(0, 3, ByteCount::bytes(64));
          }
        },
    });
    return elapsed.ns();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace nodebench::mpisim
