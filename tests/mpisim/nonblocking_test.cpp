#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "machines/registry.hpp"
#include "mpisim/world.hpp"

namespace nodebench::mpisim {
namespace {

using machines::byName;
using topo::CoreId;

std::vector<RankPlacement> hostPair(const machines::Machine& m) {
  return {RankPlacement{CoreId{0}, std::nullopt},
          RankPlacement{CoreId{1}, std::nullopt}};
}

TEST(NonBlocking, IsendIrecvRoundTripCompletes) {
  const auto& m = byName("Eagle");
  MpiWorld world(m, hostPair(m));
  bool done = false;
  world.runEach({
      [&](Communicator& c) {
        Request s = c.isend(1, 5, ByteCount::bytes(64));
        c.wait(s);
        EXPECT_FALSE(s.valid());
      },
      [&](Communicator& c) {
        Request r = c.irecv(0, 5, ByteCount::bytes(64));
        c.wait(r);
        done = true;
      },
  });
  EXPECT_TRUE(done);
}

TEST(NonBlocking, EagerSendBufferReusableImmediately) {
  const auto& m = byName("Eagle");
  MpiWorld world(m, hostPair(m));
  world.runEach({
      [&](Communicator& c) {
        const Duration before = c.now();
        Request s = c.isend(1, 1, ByteCount::bytes(8));
        const Duration posted = c.now();
        c.wait(s);
        // Eager: wait() does not advance past the post time.
        EXPECT_DOUBLE_EQ(c.now().ns(), posted.ns());
        EXPECT_GT(posted, before);  // the post itself costs software time
      },
      [](Communicator& c) { c.recv(0, 1, ByteCount::bytes(8)); },
  });
}

TEST(NonBlocking, LargeSendGatesSenderAtWait) {
  const auto& m = byName("Eagle");
  MpiWorld world(m, hostPair(m));
  world.runEach({
      [&](Communicator& c) {
        Request s = c.isend(1, 1, ByteCount::mib(1));
        const Duration posted = c.now();
        c.wait(s);
        EXPECT_GT(c.now(), posted);  // rendezvous copy drains at wait
      },
      [](Communicator& c) { c.recv(0, 1, ByteCount::mib(1)); },
  });
}

TEST(NonBlocking, WindowPipelinesOnChannel) {
  // A window of W messages must take ~post + W * transfer, not
  // W * (full one-way latency): the channel pipelines payloads.
  const auto& m = byName("Eagle");
  const ByteCount size = ByteCount::kib(4);
  const int window = 16;
  MpiWorld world(m, hostPair(m));
  Duration elapsed = Duration::zero();
  world.runEach({
      [&](Communicator& c) {
        std::vector<Request> reqs;
        for (int i = 0; i < window; ++i) {
          reqs.push_back(c.isend(1, 1, size));
        }
        c.waitAll(reqs);
      },
      [&](Communicator& c) {
        std::vector<Request> reqs;
        for (int i = 0; i < window; ++i) {
          reqs.push_back(c.irecv(0, 1, size));
        }
        c.waitAll(reqs);
        elapsed = c.now();
      },
  });
  const PathTiming path =
      resolvePath(m, RankPlacement{CoreId{0}, std::nullopt},
                  RankPlacement{CoreId{1}, std::nullopt},
                  BufferSpace::host(), BufferSpace::host());
  const double pipelined =
      window * path.eagerBandwidth.transferTime(size).ns();
  const double serialized = window * path.eagerOneWay(size).ns();
  EXPECT_GT(elapsed.ns(), pipelined);
  EXPECT_LT(elapsed.ns(), serialized);
}

TEST(NonBlocking, WaitOnInvalidRequestThrows) {
  const auto& m = byName("Eagle");
  MpiWorld world(m, hostPair(m));
  EXPECT_THROW(world.runEach({
                   [](Communicator& c) {
                     Request s = c.isend(1, 1, ByteCount::bytes(8));
                     c.wait(s);
                     c.wait(s);  // already completed
                   },
                   [](Communicator& c) { c.recv(0, 1, ByteCount::bytes(8)); },
               }),
               PreconditionError);
}

TEST(NonBlocking, MixedBlockingAndNonblockingMatch) {
  // isend pairs with blocking recv and vice versa (irecv + wait with a
  // blocking eager sender).
  const auto& m = byName("Manzano");
  MpiWorld world(m, hostPair(m));
  world.runEach({
      [](Communicator& c) {
        Request s = c.isend(1, 7, ByteCount::bytes(32));
        c.wait(s);
        c.send(1, 8, ByteCount::bytes(32));
      },
      [](Communicator& c) {
        c.recv(0, 7, ByteCount::bytes(32));
        Request r = c.irecv(0, 8, ByteCount::bytes(32));
        c.wait(r);
      },
  });
}

TEST(Collectives, BcastReachesEveryRank) {
  const auto& m = byName("Sawtooth");
  std::vector<RankPlacement> ranks;
  for (int i = 0; i < 7; ++i) {  // non-power-of-two on purpose
    ranks.push_back(RankPlacement{CoreId{i}, std::nullopt});
  }
  MpiWorld world(m, ranks);
  std::vector<double> doneAt(7, -1.0);
  world.run([&](Communicator& c) {
    c.bcast(2, ByteCount::kib(1));
    doneAt[c.rank()] = c.now().us();
  });
  for (int r = 0; r < 7; ++r) {
    EXPECT_GE(doneAt[r], 0.0) << "rank " << r;
  }
  // The root finishes no later than the farthest leaf.
  EXPECT_LE(doneAt[2], *std::max_element(doneAt.begin(), doneAt.end()));
}

TEST(Collectives, ReduceCompletesAtRoot) {
  const auto& m = byName("Sawtooth");
  std::vector<RankPlacement> ranks;
  for (int i = 0; i < 8; ++i) {
    ranks.push_back(RankPlacement{CoreId{i}, std::nullopt});
  }
  MpiWorld world(m, ranks);
  double rootDone = -1.0;
  world.run([&](Communicator& c) {
    c.reduce(0, ByteCount::kib(4));
    if (c.rank() == 0) {
      rootDone = c.now().us();
    }
  });
  EXPECT_GT(rootDone, 0.0);
}

TEST(Collectives, AllreduceScalesLogarithmically) {
  const auto& m = byName("Sawtooth");
  const auto latencyFor = [&](int n) {
    std::vector<RankPlacement> ranks;
    for (int i = 0; i < n; ++i) {
      ranks.push_back(RankPlacement{CoreId{i}, std::nullopt});
    }
    MpiWorld world(m, ranks);
    double us = 0.0;
    world.run([&](Communicator& c) {
      c.allreduce(ByteCount::bytes(8));
      if (c.rank() == 0) {
        us = c.now().us();
      }
    });
    return us;
  };
  const double l4 = latencyFor(4);   // 2 rounds
  const double l16 = latencyFor(16); // 4 rounds
  EXPECT_GT(l16, l4);
  EXPECT_LT(l16, 3.0 * l4);  // log growth, not linear (x4)
}

TEST(Collectives, AllgatherRingCompletesForAllSizes) {
  const auto& m = byName("Sawtooth");
  for (const int n : {2, 3, 5, 8}) {
    std::vector<RankPlacement> ranks;
    for (int i = 0; i < n; ++i) {
      ranks.push_back(RankPlacement{CoreId{i}, std::nullopt});
    }
    MpiWorld world(m, ranks);
    int completed = 0;
    world.run([&](Communicator& c) {
      c.allgather(ByteCount::kib(16));  // rendezvous-sized blocks
      ++completed;
    });
    EXPECT_EQ(completed, n) << n << " ranks";
  }
}

TEST(Collectives, AlltoallCompletesPowerAndNonPowerOfTwo) {
  const auto& m = byName("Sawtooth");
  for (const int n : {4, 6}) {
    std::vector<RankPlacement> ranks;
    for (int i = 0; i < n; ++i) {
      ranks.push_back(RankPlacement{CoreId{i}, std::nullopt});
    }
    MpiWorld world(m, ranks);
    int completed = 0;
    world.run([&](Communicator& c) {
      c.alltoall(ByteCount::bytes(256));
      ++completed;
    });
    EXPECT_EQ(completed, n);
  }
}

TEST(Collectives, AlltoallCostsMoreThanBcast) {
  const auto& m = byName("Sawtooth");
  std::vector<RankPlacement> ranks;
  for (int i = 0; i < 8; ++i) {
    ranks.push_back(RankPlacement{CoreId{i}, std::nullopt});
  }
  const auto timeOf = [&](auto op) {
    MpiWorld world(m, ranks);
    double us = 0.0;
    world.run([&](Communicator& c) {
      op(c);
      if (c.rank() == 0) {
        us = c.now().us();
      }
    });
    return us;
  };
  const double bcast =
      timeOf([](Communicator& c) { c.bcast(0, ByteCount::kib(1)); });
  const double alltoall =
      timeOf([](Communicator& c) { c.alltoall(ByteCount::kib(1)); });
  EXPECT_GT(alltoall, bcast);
}

}  // namespace
}  // namespace nodebench::mpisim
