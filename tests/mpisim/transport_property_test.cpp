/// Property tests of the transport model across every machine: symmetry,
/// positivity, monotonicity and route-consistency invariants that the
/// individual calibration tests don't cover.

#include <gtest/gtest.h>

#include "machines/registry.hpp"
#include "mpisim/transport.hpp"

namespace nodebench::mpisim {
namespace {

using machines::Machine;
using topo::CoreId;
using topo::GpuId;

class TransportPropertyTest : public ::testing::TestWithParam<const char*> {
 protected:
  const Machine& machine() const { return machines::byName(GetParam()); }
};

TEST_P(TransportPropertyTest, HostPathIsSymmetric) {
  const Machine& m = machine();
  const int last = m.topology.coreCount() - 1;
  for (const auto& [a, b] : {std::pair{0, 1}, std::pair{0, last},
                             std::pair{1, last}}) {
    const RankPlacement pa{CoreId{a}, std::nullopt};
    const RankPlacement pb{CoreId{b}, std::nullopt};
    const PathTiming fwd = resolvePath(m, pa, pb, BufferSpace::host(),
                                       BufferSpace::host());
    const PathTiming rev = resolvePath(m, pb, pa, BufferSpace::host(),
                                       BufferSpace::host());
    EXPECT_DOUBLE_EQ(fwd.eagerOneWay(ByteCount::bytes(8)).ns(),
                     rev.eagerOneWay(ByteCount::bytes(8)).ns())
        << a << "<->" << b;
  }
}

TEST_P(TransportPropertyTest, EagerOneWayMonotoneInSize) {
  const Machine& m = machine();
  const RankPlacement a{CoreId{0}, std::nullopt};
  const RankPlacement b{CoreId{1}, std::nullopt};
  const PathTiming t =
      resolvePath(m, a, b, BufferSpace::host(), BufferSpace::host());
  Duration prev = Duration::zero();
  for (std::uint64_t size : {0ull, 1ull, 64ull, 1024ull, 8192ull}) {
    const Duration oneWay = t.eagerOneWay(ByteCount::bytes(size));
    EXPECT_GE(oneWay, prev) << size;
    prev = oneWay;
  }
}

TEST_P(TransportPropertyTest, AllTimingConstantsPositive) {
  const Machine& m = machine();
  const RankPlacement a{CoreId{0}, std::nullopt};
  const RankPlacement b{CoreId{1}, std::nullopt};
  const PathTiming t =
      resolvePath(m, a, b, BufferSpace::host(), BufferSpace::host());
  EXPECT_GT(t.sendOverhead, Duration::zero());
  EXPECT_GT(t.recvOverhead, Duration::zero());
  EXPECT_GE(t.latency, Duration::zero());
  EXPECT_GT(t.eagerBandwidth.inGBps(), 0.0);
  EXPECT_GT(t.rendezvousBandwidth.inGBps(), 0.0);
}

TEST_P(TransportPropertyTest, DevicePathSymmetricPerClass) {
  const Machine& m = machine();
  if (!m.accelerated()) {
    GTEST_SKIP() << "CPU-only system";
  }
  for (const topo::LinkClass c : m.topology.presentGpuLinkClasses()) {
    const auto pair = m.topology.representativePair(c);
    ASSERT_TRUE(pair.has_value());
    const RankPlacement a{CoreId{0}, pair->first.value};
    const RankPlacement b{CoreId{1}, pair->second.value};
    const PathTiming fwd =
        resolvePath(m, a, b, BufferSpace::onDevice(pair->first.value),
                    BufferSpace::onDevice(pair->second.value));
    const PathTiming rev =
        resolvePath(m, b, a, BufferSpace::onDevice(pair->second.value),
                    BufferSpace::onDevice(pair->first.value));
    EXPECT_DOUBLE_EQ(fwd.eagerOneWay(ByteCount::bytes(8)).ns(),
                     rev.eagerOneWay(ByteCount::bytes(8)).ns())
        << "class " << topo::linkClassName(c);
  }
}

TEST_P(TransportPropertyTest, GpuRoutesAreConsistent) {
  const Machine& m = machine();
  if (!m.accelerated()) {
    GTEST_SKIP();
  }
  const int n = m.topology.gpuCount();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto fwd = m.topology.routeGpuToGpu(GpuId{i}, GpuId{j});
      const auto rev = m.topology.routeGpuToGpu(GpuId{j}, GpuId{i});
      EXPECT_DOUBLE_EQ(fwd.latency.ns(), rev.latency.ns());
      EXPECT_DOUBLE_EQ(fwd.bottleneck.inGBps(), rev.bottleneck.inGBps());
      // Bottleneck really is the minimum over hops.
      for (const auto* hop : fwd.hops) {
        EXPECT_LE(fwd.bottleneck.inGBps(), hop->bandwidth.inGBps() + 1e-12);
      }
      // Routed (multi-hop) paths are never faster than any direct link.
      if (!fwd.direct()) {
        EXPECT_GE(fwd.hops.size(), 2u);
      }
    }
  }
}

TEST_P(TransportPropertyTest, MixedHostDevicePathResolves) {
  const Machine& m = machine();
  if (!m.accelerated()) {
    GTEST_SKIP();
  }
  const RankPlacement host{CoreId{0}, std::nullopt};
  const RankPlacement dev{CoreId{1}, 0};
  const PathTiming t = resolvePath(m, host, dev, BufferSpace::host(),
                                   BufferSpace::onDevice(0));
  EXPECT_GT(t.eagerOneWay(ByteCount::bytes(8)), Duration::zero());
}

INSTANTIATE_TEST_SUITE_P(AllMachines, TransportPropertyTest,
                         ::testing::Values("Frontier", "Summit", "Sierra",
                                           "Perlmutter", "Polaris",
                                           "Trinity", "Lassen", "Theta",
                                           "Sawtooth", "RZVernal", "Eagle",
                                           "Tioga", "Manzano"));

}  // namespace
}  // namespace nodebench::mpisim
