/// \file simcore_crosscheck_test.cpp
/// \brief Determinism cross-checks for the simulation-core fast paths
/// (ctest -L simcore; DESIGN.md §12).
///
/// Two families of invariants:
///  1. Scheduler modes: thread-mode and cooperative-mode
///     `VirtualTimeScheduler` produce identical per-rank clock sequences,
///     switch counts, and DeadlockError/TimeoutError behavior — across
///     synthetic programs and full MpiWorld runs (machines × fault
///     parameters × seeds).
///  2. Closed-form composition: the analytic fast path in
///     `mpisim/analytic.*` is bit-identical to event-by-event simulation
///     for the latency / bandwidth / inter-node kernels behind every
///     Table 4/5/6 point-to-point cell, and falls back to full simulation
///     whenever faults, contention, tracing, or a watchdog are in play.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "machines/registry.hpp"
#include "mpisim/analytic.hpp"
#include "mpisim/world.hpp"
#include "netsim/network.hpp"
#include "osu/bandwidth.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "sim/vt_scheduler.hpp"
#include "trace/trace.hpp"

namespace nodebench {
namespace {

using namespace nodebench::literals;
using machines::byName;
using mpisim::BufferSpace;
using mpisim::InterNodeParams;
using mpisim::RankPlacement;
using sim::VirtualTimeScheduler;
using Mode = sim::VirtualTimeScheduler::Mode;

/// Pins the analytic fast path on/off for a scope and restores it after.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool on) : prev_(mpisim::analytic::fastPathEnabled()) {
    mpisim::analytic::setFastPathEnabled(on);
  }
  ~FastPathGuard() { mpisim::analytic::setFastPathEnabled(prev_); }
  FastPathGuard(const FastPathGuard&) = delete;
  FastPathGuard& operator=(const FastPathGuard&) = delete;

 private:
  bool prev_;
};

// ---------------------------------------------------------------------------
// 1a. Scheduler-mode cross-check: synthetic programs.
// ---------------------------------------------------------------------------

/// Everything observable about one scheduler run: per-rank clock
/// sequences (one sample after every virtual-time op), the switch count,
/// and the error text if the run threw.
struct RunRecord {
  std::vector<std::vector<double>> clocks;
  std::uint64_t switches = 0;
  std::string error;
  std::string errorType;
};

RunRecord runSynthetic(
    Mode mode, int ranks,
    const std::function<void(sim::VirtualProcess&, std::vector<double>&)>&
        body,
    Duration watchdog = Duration::infinity()) {
  RunRecord rec;
  rec.clocks.resize(static_cast<std::size_t>(ranks));
  VirtualTimeScheduler sched;
  sched.setMode(mode);
  if (watchdog < Duration::infinity()) {
    sched.setWatchdog(watchdog);
  }
  std::vector<VirtualTimeScheduler::ProcessFn> fns;
  for (int r = 0; r < ranks; ++r) {
    fns.push_back([&rec, &body, r](sim::VirtualProcess& p) {
      body(p, rec.clocks[static_cast<std::size_t>(r)]);
    });
  }
  try {
    sched.run(fns);
  } catch (const sim::TimeoutError& e) {
    rec.errorType = "timeout";
    rec.error = e.what();
  } catch (const sim::DeadlockError& e) {
    rec.errorType = "deadlock";
    rec.error = e.what();
  } catch (const Error& e) {
    rec.errorType = "error";
    rec.error = e.what();
  }
  rec.switches = sched.switchCount();
  return rec;
}

void expectSameRun(const RunRecord& threads, const RunRecord& coop) {
  EXPECT_EQ(threads.clocks, coop.clocks);
  EXPECT_EQ(threads.switches, coop.switches);
  EXPECT_EQ(threads.errorType, coop.errorType);
  EXPECT_EQ(threads.error, coop.error);
}

#define SKIP_WITHOUT_COOP()                                   \
  if (!VirtualTimeScheduler::cooperativeSupported()) {        \
    GTEST_SKIP() << "cooperative mode not supported here";    \
  }

TEST(SimcoreModes, InterleavedAdvanceLoopsMatch) {
  SKIP_WITHOUT_COOP();
  const auto body = [](sim::VirtualProcess& p, std::vector<double>& out) {
    for (int i = 0; i < 6; ++i) {
      p.advance(Duration::microseconds(1.0 + 0.3 * p.rank()));
      out.push_back(p.now().ns());
    }
  };
  expectSameRun(runSynthetic(Mode::Threads, 4, body),
                runSynthetic(Mode::Cooperative, 4, body));
}

TEST(SimcoreModes, BlockAndWakePipelineMatches) {
  SKIP_WITHOUT_COOP();
  // Rank r waits for rank r-1's token, then advances and passes it on —
  // a wake chain exercising blockUntil re-evaluation in both modes.
  constexpr int kRanks = 5;
  const auto makeRun = [&](Mode mode) {
    std::vector<int> token(1, 0);
    return runSynthetic(
        mode, kRanks,
        [&](sim::VirtualProcess& p, std::vector<double>& out) {
          const int r = p.rank();
          for (int round = 0; round < 3; ++round) {
            const int want = round * kRanks + r;
            p.blockUntil([&token, want] { return token[0] == want; });
            p.advance(Duration::nanoseconds(100.0 * (r + 1)));
            out.push_back(p.now().ns());
            token[0]++;
            for (int other = 0; other < kRanks; ++other) {
              if (other != r) {
                p.wake(other);
              }
            }
          }
        });
  };
  expectSameRun(makeRun(Mode::Threads), makeRun(Mode::Cooperative));
}

TEST(SimcoreModes, DeadlockDetectionMatches) {
  SKIP_WITHOUT_COOP();
  const auto body = [](sim::VirtualProcess& p, std::vector<double>& out) {
    if (p.rank() == 1) {
      p.advance(2_us);
      out.push_back(p.now().ns());
    }
    p.blockUntil([] { return false; });
  };
  const RunRecord threads = runSynthetic(Mode::Threads, 3, body);
  const RunRecord coop = runSynthetic(Mode::Cooperative, 3, body);
  EXPECT_EQ(threads.errorType, "deadlock");
  expectSameRun(threads, coop);
}

TEST(SimcoreModes, WatchdogTimeoutMatches) {
  SKIP_WITHOUT_COOP();
  const auto body = [](sim::VirtualProcess& p, std::vector<double>& out) {
    for (int i = 0; i < 100; ++i) {
      p.advance(1_us);
      out.push_back(p.now().ns());
    }
  };
  const RunRecord threads = runSynthetic(Mode::Threads, 2, body, 10_us);
  const RunRecord coop = runSynthetic(Mode::Cooperative, 2, body, 10_us);
  EXPECT_EQ(threads.errorType, "timeout");
  expectSameRun(threads, coop);
}

TEST(SimcoreModes, ProcessExceptionPropagationMatches) {
  SKIP_WITHOUT_COOP();
  const auto body = [](sim::VirtualProcess& p, std::vector<double>& out) {
    if (p.rank() == 1) {
      p.advance(1_us);
      throw Error("injected failure in rank 1");
    }
    out.push_back(p.now().ns());
    p.blockUntil([] { return false; });  // must be aborted, not hung
  };
  const RunRecord threads = runSynthetic(Mode::Threads, 2, body);
  const RunRecord coop = runSynthetic(Mode::Cooperative, 2, body);
  EXPECT_EQ(threads.errorType, "error");
  expectSameRun(threads, coop);
}

// ---------------------------------------------------------------------------
// 1b. Scheduler-mode cross-check: full MpiWorld programs across machines,
// fault parameters, and seeds.
// ---------------------------------------------------------------------------

/// Runs an intra-node ping-pong through the full event-by-event runtime
/// in the given scheduler mode, returning rank 0's per-iteration clocks
/// plus the switch count.
RunRecord runWorldPingPong(const machines::Machine& m, Mode mode,
                           ByteCount size, int iterations) {
  const auto [a, b] = osu::onSocketPair(m);
  mpisim::MpiWorld world(m, {a, b});
  world.setSchedulerMode(mode);
  RunRecord rec;
  rec.clocks.resize(2);
  world.runEach({[&](mpisim::Communicator& c) {
                   for (int i = 0; i < iterations; ++i) {
                     c.send(1, 7, size);
                     c.recv(1, 7, size);
                     rec.clocks[0].push_back(c.now().ns());
                   }
                 },
                 [&](mpisim::Communicator& c) {
                   for (int i = 0; i < iterations; ++i) {
                     c.recv(0, 7, size);
                     c.send(0, 7, size);
                     rec.clocks[1].push_back(c.now().ns());
                   }
                 }});
  rec.switches = world.schedulerSwitchCount();
  return rec;
}

TEST(SimcoreModes, MpiWorldPingPongMatchesAcrossMachines) {
  SKIP_WITHOUT_COOP();
  for (const char* name : {"Eagle", "Frontier", "Summit"}) {
    const machines::Machine& m = byName(name);
    for (const ByteCount size : {ByteCount::bytes(8), ByteCount::kib(64)}) {
      const RunRecord threads =
          runWorldPingPong(m, Mode::Threads, size, 20);
      const RunRecord coop =
          runWorldPingPong(m, Mode::Cooperative, size, 20);
      SCOPED_TRACE(std::string(name) + " @ " +
                   std::to_string(size.count()) + " B");
      expectSameRun(threads, coop);
    }
  }
}

/// Two-node ping-pong with Bernoulli packet loss: the retransmit draws are
/// seeded per message, so both modes must see identical delays and
/// retransmit counts for every fault seed.
TEST(SimcoreModes, FaultedInterNodeRunMatchesAcrossSeeds) {
  SKIP_WITHOUT_COOP();
  const machines::Machine& m = byName("Eagle");
  for (const std::uint64_t faultSeed : {1ull, 2ull, 99ull}) {
    InterNodeParams net = netsim::networkFor(m);
    net.packetLossRate = 0.05;
    net.faultSeed = faultSeed;
    const auto runMode = [&](Mode mode) {
      RankPlacement a;
      a.core = topo::CoreId{0};
      RankPlacement b;
      b.core = topo::CoreId{0};
      b.node = 1;
      mpisim::MpiWorld world(m, {a, b}, net);
      world.setSchedulerMode(mode);
      RunRecord rec;
      rec.clocks.resize(2);
      world.runEach(
          {[&](mpisim::Communicator& c) {
             for (int i = 0; i < 30; ++i) {
               c.send(1, 3, ByteCount::bytes(64));
               c.recv(1, 3, ByteCount::bytes(64));
               rec.clocks[0].push_back(c.now().ns());
             }
           },
           [&](mpisim::Communicator& c) {
             for (int i = 0; i < 30; ++i) {
               c.recv(0, 3, ByteCount::bytes(64));
               c.send(0, 3, ByteCount::bytes(64));
               rec.clocks[1].push_back(c.now().ns());
             }
           }});
      rec.switches = world.schedulerSwitchCount();
      rec.error = std::to_string(world.retransmitCount());
      return rec;
    };
    SCOPED_TRACE("faultSeed=" + std::to_string(faultSeed));
    expectSameRun(runMode(Mode::Threads), runMode(Mode::Cooperative));
  }
}

// ---------------------------------------------------------------------------
// 2. Closed-form composition vs event-by-event simulation (bit-identity).
// ---------------------------------------------------------------------------

TEST(SimcoreAnalytic, LatencyTruthBitIdenticalHostPairs) {
  const std::vector<ByteCount> sizes = {
      ByteCount::bytes(0),   ByteCount::bytes(1),  ByteCount::bytes(8),
      ByteCount::kib(4),     ByteCount::kib(8),    ByteCount::kib(64),
      ByteCount::mib(1)};
  for (const char* name : {"Eagle", "Frontier", "Summit", "Trinity"}) {
    const machines::Machine& m = byName(name);
    for (const bool onNode : {false, true}) {
      const auto [a, b] = onNode ? osu::onNodePair(m) : osu::onSocketPair(m);
      const osu::LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Host);
      for (const ByteCount size : sizes) {
        Duration fast;
        Duration slow;
        {
          FastPathGuard guard(true);
          fast = bench.truthOneWay(size, 10);
        }
        {
          FastPathGuard guard(false);
          slow = bench.truthOneWay(size, 10);
        }
        EXPECT_EQ(fast.ns(), slow.ns())
            << name << (onNode ? " on-node" : " on-socket") << " @ "
            << size.count() << " B";
      }
    }
  }
}

TEST(SimcoreAnalytic, LatencyTruthBitIdenticalDevicePairs) {
  const std::vector<std::pair<const char*, topo::LinkClass>> cells = {
      {"Frontier", topo::LinkClass::A}, {"Summit", topo::LinkClass::B}};
  for (const auto& [name, linkClass] : cells) {
    const machines::Machine& m = byName(name);
    const auto [a, b] = osu::devicePair(m, linkClass);
    const osu::LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Device);
    for (const ByteCount size :
         {ByteCount::bytes(8), ByteCount::kib(8), ByteCount::mib(1)}) {
      Duration fast;
      Duration slow;
      {
        FastPathGuard guard(true);
        fast = bench.truthOneWay(size, 10);
      }
      {
        FastPathGuard guard(false);
        slow = bench.truthOneWay(size, 10);
      }
      EXPECT_EQ(fast.ns(), slow.ns())
          << name << " device @ " << size.count() << " B";
    }
  }
}

TEST(SimcoreAnalytic, BandwidthTruthBitIdentical) {
  for (const char* name : {"Eagle", "Frontier"}) {
    const machines::Machine& m = byName(name);
    const auto [a, b] = osu::onSocketPair(m);
    for (const bool bidirectional : {false, true}) {
      const osu::BandwidthBenchmark bench(m, a, b, BufferSpace::Kind::Host,
                                          bidirectional);
      for (const ByteCount size :
           {ByteCount::bytes(1), ByteCount::kib(64), ByteCount::mib(1)}) {
        osu::BandwidthConfig cfg;
        cfg.messageSize = size;
        cfg.windowSize = 64;
        cfg.iterations = 5;
        double fast = 0.0;
        double slow = 0.0;
        {
          FastPathGuard guard(true);
          fast = bench.truthGBps(cfg);
        }
        {
          FastPathGuard guard(false);
          slow = bench.truthGBps(cfg);
        }
        EXPECT_EQ(fast, slow)
            << name << (bidirectional ? " bibw" : " bw") << " @ "
            << size.count() << " B";
      }
    }
  }
}

void expectSummaryEq(const Summary& x, const Summary& y,
                     const std::string& what) {
  EXPECT_EQ(x.mean, y.mean) << what;
  EXPECT_EQ(x.stddev, y.stddev) << what;
}

TEST(SimcoreAnalytic, InterNodeSinglePairBitIdentical) {
  for (const char* name : {"Eagle", "Frontier"}) {
    const machines::Machine& m = byName(name);
    for (const bool device : {false, true}) {
      if (device && !m.accelerated()) {
        continue;
      }
      netsim::InterNodeConfig cfg;
      cfg.messageSize = ByteCount::bytes(8);
      cfg.iterations = 50;
      cfg.binaryRuns = 10;
      cfg.pairsPerNode = 1;
      cfg.deviceBuffers = device;
      netsim::InterNodeResult fast;
      netsim::InterNodeResult slow;
      {
        FastPathGuard guard(true);
        fast = netsim::measureInterNode(m, cfg);
      }
      {
        FastPathGuard guard(false);
        slow = netsim::measureInterNode(m, cfg);
      }
      const std::string what =
          std::string(name) + (device ? " device" : " host");
      expectSummaryEq(fast.latencyUs, slow.latencyUs, what + " latency");
      expectSummaryEq(fast.perPairBandwidthGBps, slow.perPairBandwidthGBps,
                      what + " bw");
      EXPECT_EQ(fast.retransmits, slow.retransmits) << what;
    }
  }
}

TEST(SimcoreAnalytic, PacketLossForcesEventPath) {
  // With a loss plan the fast path must decline; results are identical
  // whether the knob is on or off, and retransmits actually happen.
  const machines::Machine& m = byName("Eagle");
  InterNodeParams net = netsim::networkFor(m);
  net.packetLossRate = 0.05;
  net.faultSeed = 7;
  netsim::InterNodeConfig cfg;
  cfg.messageSize = ByteCount::bytes(8);
  cfg.iterations = 40;
  cfg.binaryRuns = 5;
  cfg.pairsPerNode = 1;
  cfg.network = net;
  netsim::InterNodeResult on;
  netsim::InterNodeResult off;
  {
    FastPathGuard guard(true);
    on = netsim::measureInterNode(m, cfg);
  }
  {
    FastPathGuard guard(false);
    off = netsim::measureInterNode(m, cfg);
  }
  expectSummaryEq(on.latencyUs, off.latencyUs, "faulted latency");
  expectSummaryEq(on.perPairBandwidthGBps, off.perPairBandwidthGBps,
                  "faulted bw");
  EXPECT_EQ(on.retransmits, off.retransmits);
  EXPECT_GT(on.retransmits, 0u);
}

TEST(SimcoreAnalytic, WatchdogForcesEventPath) {
  // A watchdog needs the scheduler to raise TimeoutError; the fast path
  // must not swallow it.
  const machines::Machine& m = byName("Eagle");
  netsim::InterNodeConfig cfg;
  cfg.messageSize = ByteCount::bytes(8);
  cfg.iterations = 1000;
  cfg.binaryRuns = 1;
  cfg.pairsPerNode = 1;
  cfg.watchdog = 1_us;  // far below the run's virtual duration
  FastPathGuard guard(true);
  EXPECT_THROW((void)netsim::measureInterNode(m, cfg), sim::TimeoutError);
}

TEST(SimcoreAnalytic, ActiveTraceSessionForcesEventPath) {
  const machines::Machine& m = byName("Eagle");
  const auto [a, b] = osu::onSocketPair(m);
  const osu::LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Host);
  Duration untraced;
  {
    FastPathGuard guard(true);
    untraced = bench.truthOneWay(ByteCount::bytes(8), 10);
  }
  trace::Session session;
  Duration traced;
  std::size_t rankEvents = 0;
  {
    FastPathGuard guard(true);
    trace::Scope scope("simcore-test");
    traced = bench.truthOneWay(ByteCount::bytes(8), 10);
    rankEvents = scope.buffer()->events().size();
  }
  EXPECT_EQ(traced.ns(), untraced.ns());
  // The event path ran and recorded per-op events — proof of fallback.
  EXPECT_GT(rankEvents, 0u);
}

TEST(SimcoreAnalytic, ConcurrentTruthQueriesComputeOnce) {
  // Satellite regression: concurrent first queries of one (size,
  // iterations) key must agree (and not crash); the memo hands late
  // arrivals the owner's future instead of re-simulating.
  const machines::Machine& m = byName("Eagle");
  const auto [a, b] = osu::onSocketPair(m);
  const osu::LatencyBenchmark bench(m, a, b, BufferSpace::Kind::Host);
  std::vector<std::thread> workers;
  std::vector<double> results(8, 0.0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    workers.emplace_back([&bench, &results, i] {
      osu::LatencyConfig cfg;
      cfg.messageSize = ByteCount::bytes(8);
      cfg.binaryRuns = 3;
      results[i] = bench.measure(cfg).latencyUs.mean;
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]);
  }
}

}  // namespace
}  // namespace nodebench
