/// Cross-machine integration tests: run the full benchmark pipeline on
/// every system and check the *relationships* the paper's narrative calls
/// out (who wins, by roughly what factor) rather than individual cells.

#include <gtest/gtest.h>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "commscope/commscope.hpp"
#include "machines/registry.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"

namespace nodebench {
namespace {

using machines::byName;
using machines::Machine;

double deviceStreamGBps(const Machine& m) {
  babelstream::SimDeviceBackend backend(m, 0);
  babelstream::DriverConfig cfg;
  cfg.arrayBytes = ByteCount::gib(1);
  cfg.binaryRuns = 10;
  return babelstream::run(backend, cfg).best().bandwidthGBps.mean;
}

double deviceMpiUs(const Machine& m) {
  const auto [a, b] = osu::devicePair(m, topo::LinkClass::A);
  osu::LatencyConfig cfg;
  cfg.binaryRuns = 10;
  return osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Device)
      .measure(cfg)
      .latencyUs.mean;
}

double hostMpiUs(const Machine& m) {
  const auto [a, b] = osu::onSocketPair(m);
  osu::LatencyConfig cfg;
  cfg.binaryRuns = 10;
  return osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Host)
      .measure(cfg)
      .latencyUs.mean;
}

TEST(CrossMachine, V100GenerationHasLowestDeviceBandwidth) {
  // Paper §4: "the three NVIDIA V100 machines have a substantially lower
  // device memory bandwidth than the A100 and MI250X machines."
  for (const char* v100 : {"Summit", "Sierra", "Lassen"}) {
    for (const char* newer :
         {"Perlmutter", "Polaris", "Frontier", "RZVernal", "Tioga"}) {
      EXPECT_LT(deviceStreamGBps(byName(v100)),
                0.7 * deviceStreamGBps(byName(newer)))
          << v100 << " vs " << newer;
    }
  }
}

TEST(CrossMachine, A100AndMi250xReachSimilarBandwidth) {
  // Paper §4: "the latter two categories report fairly similar achieved
  // memory bandwidth (about 1.3 TB/s)."
  const double a100 = deviceStreamGBps(byName("Perlmutter"));
  const double mi = deviceStreamGBps(byName("Tioga"));
  EXPECT_NEAR(a100 / mi, 1.0, 0.1);
  EXPECT_GT(a100, 1250.0);
  EXPECT_LT(a100, 1450.0);
}

TEST(CrossMachine, HostMpiLatencySubMicrosecondEverywhereButTheta) {
  for (const Machine& m : machines::allMachines()) {
    const double us = hostMpiUs(m);
    if (m.info.name == "Theta") {
      EXPECT_GT(us, 5.0);
    } else {
      EXPECT_LT(us, 1.0) << m.info.name;
    }
  }
}

TEST(CrossMachine, DeviceMpiHierarchyMatchesPaper) {
  // V100 ~18-19 us, A100 10-14 us, MI250X sub-microsecond.
  for (const char* name : {"Summit", "Sierra", "Lassen"}) {
    const double us = deviceMpiUs(byName(name));
    EXPECT_GT(us, 17.0) << name;
    EXPECT_LT(us, 20.0) << name;
  }
  for (const char* name : {"Perlmutter", "Polaris"}) {
    const double us = deviceMpiUs(byName(name));
    EXPECT_GT(us, 9.0) << name;
    EXPECT_LT(us, 15.0) << name;
  }
  for (const char* name : {"Frontier", "RZVernal", "Tioga"}) {
    EXPECT_LT(deviceMpiUs(byName(name)), 1.0) << name;
  }
}

TEST(CrossMachine, DeviceMpiBeatsCommScopeD2dOnEveryGpuMachine) {
  // Paper §4: "Inter-device latency in Comm|Scope is substantially slower
  // than the inter-device latency shown by the OSU microbenchmarks"
  // (memcpyAsync vs MPI RMA) — on the MI250X machines by two orders of
  // magnitude.
  for (const Machine* m : machines::gpuMachines()) {
    commscope::CommScope scope(*m);
    commscope::Config cfg;
    cfg.binaryRuns = 5;
    const double commscopeUs =
        scope.d2dLatencyUs(topo::LinkClass::A, cfg).mean;
    EXPECT_GT(commscopeUs, deviceMpiUs(*m)) << m->info.name;
  }
}

TEST(CrossMachine, Mi250xWaitLatencyIsTiny) {
  // Paper: "Kernel wait latencies are ... .1-.2 us for the MI250X
  // machines" — an order below the A100s and nearly two below the V100s.
  for (const char* name : {"Frontier", "RZVernal", "Tioga"}) {
    commscope::CommScope scope(byName(name));
    EXPECT_LT(scope.truthSyncWait().us(), 0.2) << name;
  }
}

TEST(CrossMachine, TrinityBeatsThetaDespiteSameArchitecture) {
  // The paper's KNL anomaly: same CPU family, wildly different results.
  EXPECT_LT(hostMpiUs(byName("Trinity")), 0.2 * hostMpiUs(byName("Theta")));
}

TEST(CrossMachine, EveryAcceleratorMachineRunsTheFullSuite) {
  for (const Machine* m : machines::gpuMachines()) {
    commscope::CommScope scope(*m);
    commscope::Config cfg;
    cfg.binaryRuns = 3;
    const auto all = scope.measureAll(cfg);
    EXPECT_GT(all.launchUs.mean, 0.0) << m->info.name;
    EXPECT_GT(all.waitUs.mean, 0.0) << m->info.name;
    EXPECT_GT(all.hostDeviceBandwidthGBps.mean, 20.0) << m->info.name;
    EXPECT_TRUE(all.d2dLatencyUs[0].has_value()) << m->info.name;
    EXPECT_GT(deviceStreamGBps(*m), 700.0) << m->info.name;
    EXPECT_GT(deviceMpiUs(*m), 0.0) << m->info.name;
  }
}

}  // namespace
}  // namespace nodebench
