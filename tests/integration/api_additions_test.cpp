/// Tests of the cross-cutting API additions: stream-wait-event
/// dependencies, sendrecv, trace summary tables and confidence intervals.

#include <gtest/gtest.h>

#include "core/stats.hpp"
#include "gpusim/gpu_runtime.hpp"
#include "machines/registry.hpp"
#include "mpisim/world.hpp"

namespace nodebench {
namespace {

using machines::byName;
using namespace nodebench::literals;

TEST(StreamWaitEvent, CreatesCrossStreamDependency) {
  const auto& m = byName("Perlmutter");
  gpusim::GpuRuntime rt(m);
  const auto s0 = rt.createStream(0);
  const auto s1 = rt.createStream(1);
  rt.launchKernel(s0, 100_us);
  const auto done = rt.recordEvent(s0);
  rt.streamWaitEvent(s1, done);
  rt.launchKernel(s1, 10_us);
  // s1's kernel cannot finish before s0's kernel plus its own duration.
  EXPECT_GE(rt.streamTail(s1).us(), rt.eventTime(done).us() + 10.0);
  rt.streamSynchronize(s1);
  EXPECT_GE(rt.hostNow().us(), 110.0);
}

TEST(StreamWaitEvent, NoDependencyMeansOverlap) {
  const auto& m = byName("Perlmutter");
  gpusim::GpuRuntime rt(m);
  const auto s0 = rt.createStream(0);
  const auto s1 = rt.createStream(1);
  rt.launchKernel(s0, 100_us);
  rt.launchKernel(s1, 10_us);
  EXPECT_LT(rt.streamTail(s1).us(), 20.0);
}

TEST(Sendrecv, SymmetricExchangeOfLargeMessagesCompletes) {
  // Blocking send/recv of rendezvous-size messages in the same direction
  // order would deadlock; sendrecv must not.
  const auto& m = byName("Eagle");
  mpisim::MpiWorld world(
      m, {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt},
          mpisim::RankPlacement{topo::CoreId{1}, std::nullopt}});
  int completed = 0;
  world.run([&](mpisim::Communicator& c) {
    const int peer = 1 - c.rank();
    for (int i = 0; i < 3; ++i) {
      c.sendrecv(peer, 9, ByteCount::kib(64), peer, 9, ByteCount::kib(64));
    }
    ++completed;
  });
  EXPECT_EQ(completed, 2);
}

TEST(Sendrecv, TimingMatchesManualIsendRecvWait) {
  const auto& m = byName("Manzano");
  const auto run = [&](bool useSendrecv) {
    mpisim::MpiWorld world(
        m, {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt},
            mpisim::RankPlacement{topo::CoreId{1}, std::nullopt}});
    double us = 0.0;
    world.run([&](mpisim::Communicator& c) {
      const int peer = 1 - c.rank();
      if (useSendrecv) {
        c.sendrecv(peer, 4, ByteCount::bytes(256), peer, 4,
                   ByteCount::bytes(256));
      } else {
        auto r = c.isend(peer, 4, ByteCount::bytes(256));
        c.recv(peer, 4, ByteCount::bytes(256));
        c.wait(r);
      }
      if (c.rank() == 0) {
        us = c.now().us();
      }
    });
    return us;
  };
  EXPECT_DOUBLE_EQ(run(true), run(false));
}

TEST(TraceSummary, TableShowsPerRankTotals) {
  const auto& m = byName("Eagle");
  mpisim::Tracer tracer;
  mpisim::MpiWorld world(
      m, {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt},
          mpisim::RankPlacement{topo::CoreId{1}, std::nullopt}});
  world.setTracer(&tracer);
  world.run([](mpisim::Communicator& c) {
    c.compute(Duration::microseconds(5.0));
    if (c.rank() == 0) {
      c.send(1, 1, ByteCount::bytes(64));
    } else {
      c.recv(0, 1, ByteCount::bytes(64));
    }
  });
  const std::string table = tracer.summaryTable(2);
  EXPECT_NE(table.find("Per-rank virtual time"), std::string::npos);
  EXPECT_NE(table.find("5.0"), std::string::npos);  // compute column
  EXPECT_THROW((void)tracer.summaryTable(0), PreconditionError);
}

TEST(Ci95, ShrinksWithSampleCount) {
  const Summary few{4, 10.0, 2.0, 8.0, 12.0};
  const Summary many{400, 10.0, 2.0, 8.0, 12.0};
  EXPECT_GT(few.ci95(), many.ci95());
  EXPECT_NEAR(many.ci95(), 1.96 * 2.0 / 20.0, 1e-12);
  const Summary one{1, 10.0, 0.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(one.ci95(), 0.0);
}

}  // namespace
}  // namespace nodebench
