#include "ompenv/placement.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

namespace nodebench::ompenv {
namespace {

using topo::CoreId;
using topo::NodeTopology;
using topo::NumaId;
using topo::SocketId;

/// 2 sockets x 4 cores x 2-way SMT.
NodeTopology dualSocket() {
  NodeTopology node;
  for (int s = 0; s < 2; ++s) {
    const SocketId socket = node.addSocket("X");
    const NumaId numa = node.addNumaDomain(socket);
    node.addCores(numa, 4, 2);
  }
  return node;
}

TEST(Placement, DefaultThreadCountIsAllHardwareThreads) {
  const NodeTopology node = dualSocket();
  const ThreadPlacement p = place(node, OmpConfig{});
  EXPECT_EQ(p.threadCount(), 16);
  EXPECT_FALSE(p.bound);
  EXPECT_EQ(p.coresUsed(), 8);
  EXPECT_EQ(p.maxSmtOccupancy(), 2);
}

TEST(Placement, SingleThreadLandsOnCoreZero) {
  const NodeTopology node = dualSocket();
  const ThreadPlacement p =
      place(node, OmpConfig{1, ProcBind::True, Places::NotSet});
  ASSERT_EQ(p.threadCount(), 1);
  EXPECT_TRUE(p.bound);
  EXPECT_EQ(p.threads[0].core, (CoreId{0}));
  EXPECT_EQ(p.threads[0].smtSlot, 0);
  EXPECT_EQ(p.socketsUsed(node), 1);
}

TEST(Placement, ClosePolicyFillsFirstSocketFirst) {
  const NodeTopology node = dualSocket();
  const ThreadPlacement p =
      place(node, OmpConfig{4, ProcBind::Close, Places::Threads});
  EXPECT_EQ(p.socketsUsed(node), 1);
  EXPECT_EQ(p.coresUsed(), 4);
  EXPECT_EQ(p.maxSmtOccupancy(), 1);
}

TEST(Placement, SpreadPolicyCoversBothSockets) {
  const NodeTopology node = dualSocket();
  const ThreadPlacement p =
      place(node, OmpConfig{4, ProcBind::Spread, Places::Cores});
  EXPECT_EQ(p.socketsUsed(node), 2);
  EXPECT_EQ(p.coresUsed(), 4);
  // Interleaved: socket0.core0, socket1.core0, socket0.core1, socket1.core1.
  EXPECT_EQ(p.threads[0].core, (CoreId{0}));
  EXPECT_EQ(p.threads[1].core, (CoreId{4}));
}

TEST(Placement, SmtSlotsFillOnlyAfterAllCores) {
  const NodeTopology node = dualSocket();
  const ThreadPlacement p =
      place(node, OmpConfig{10, ProcBind::Close, Places::Threads});
  EXPECT_EQ(p.coresUsed(), 8);
  EXPECT_EQ(p.maxSmtOccupancy(), 2);
  int slot1 = 0;
  for (const auto& t : p.threads) {
    slot1 += t.smtSlot == 1 ? 1 : 0;
  }
  EXPECT_EQ(slot1, 2);  // 10 threads = 8 cores + 2 SMT seconds
}

TEST(Placement, OversubscriptionClampsToHardware) {
  const NodeTopology node = dualSocket();
  const ThreadPlacement p =
      place(node, OmpConfig{1000, ProcBind::True, Places::NotSet});
  EXPECT_EQ(p.threadCount(), 16);
}

TEST(Placement, UnboundFlagPropagates) {
  const NodeTopology node = dualSocket();
  EXPECT_FALSE(place(node, OmpConfig{8, ProcBind::NotSet, Places::NotSet}).bound);
  EXPECT_FALSE(place(node, OmpConfig{8, ProcBind::False, Places::NotSet}).bound);
  EXPECT_TRUE(place(node, OmpConfig{8, ProcBind::True, Places::NotSet}).bound);
}

TEST(Placement, NumaDomainsUsed) {
  const NodeTopology node = dualSocket();
  EXPECT_EQ(place(node, OmpConfig{2, ProcBind::Close, Places::Threads})
                .numaDomainsUsed(node),
            1);
  EXPECT_EQ(place(node, OmpConfig{2, ProcBind::Spread, Places::Cores})
                .numaDomainsUsed(node),
            2);
}

/// Property sweep over team sizes: placement always yields the requested
/// (clamped) count, distinct (core, slot) pairs, and valid slot indices.
class PlacementPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlacementPropertyTest, SlotsAreValidAndDistinct) {
  const NodeTopology node = dualSocket();
  for (const ProcBind bind :
       {ProcBind::NotSet, ProcBind::True, ProcBind::Close, ProcBind::Spread}) {
    const ThreadPlacement p =
        place(node, OmpConfig{GetParam(), bind, Places::NotSet});
    EXPECT_EQ(p.threadCount(), std::min(GetParam(), 16));
    std::set<std::pair<int, int>> seen;
    for (const auto& t : p.threads) {
      EXPECT_GE(t.core.value, 0);
      EXPECT_LT(t.core.value, node.coreCount());
      EXPECT_GE(t.smtSlot, 0);
      EXPECT_LT(t.smtSlot, node.core(t.core).smtThreads);
      EXPECT_TRUE(seen.insert({t.core.value, t.smtSlot}).second)
          << "duplicate slot assignment";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TeamSizes, PlacementPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 9, 15, 16, 17));

}  // namespace
}  // namespace nodebench::ompenv
