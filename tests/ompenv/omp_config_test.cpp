#include "ompenv/omp_config.hpp"

#include <gtest/gtest.h>

namespace nodebench::ompenv {
namespace {

TEST(OmpConfig, ParseThreads) {
  EXPECT_EQ(OmpConfig::parse("16", "", "").numThreads, 16);
  EXPECT_FALSE(OmpConfig::parse("", "", "").numThreads.has_value());
  EXPECT_FALSE(OmpConfig::parse("abc", "", "").numThreads.has_value());
  EXPECT_FALSE(OmpConfig::parse("0", "", "").numThreads.has_value());
}

TEST(OmpConfig, ParseProcBindCaseInsensitive) {
  EXPECT_EQ(OmpConfig::parse("", "TRUE", "").procBind, ProcBind::True);
  EXPECT_EQ(OmpConfig::parse("", "spread", "").procBind, ProcBind::Spread);
  EXPECT_EQ(OmpConfig::parse("", "Close", "").procBind, ProcBind::Close);
  EXPECT_EQ(OmpConfig::parse("", "false", "").procBind, ProcBind::False);
  EXPECT_EQ(OmpConfig::parse("", "", "").procBind, ProcBind::NotSet);
  EXPECT_EQ(OmpConfig::parse("", "garbage", "").procBind, ProcBind::NotSet);
}

TEST(OmpConfig, ParsePlaces) {
  EXPECT_EQ(OmpConfig::parse("", "", "cores").places, Places::Cores);
  EXPECT_EQ(OmpConfig::parse("", "", "THREADS").places, Places::Threads);
  EXPECT_EQ(OmpConfig::parse("", "", "sockets").places, Places::Sockets);
  EXPECT_EQ(OmpConfig::parse("", "", "").places, Places::NotSet);
}

TEST(OmpConfig, BoundSemantics) {
  EXPECT_FALSE((OmpConfig{1, ProcBind::NotSet, Places::NotSet}).bound());
  EXPECT_FALSE((OmpConfig{1, ProcBind::False, Places::NotSet}).bound());
  EXPECT_TRUE((OmpConfig{1, ProcBind::True, Places::NotSet}).bound());
  EXPECT_TRUE((OmpConfig{1, ProcBind::Spread, Places::Cores}).bound());
  EXPECT_TRUE((OmpConfig{1, ProcBind::Close, Places::Threads}).bound());
}

TEST(OmpConfig, ToStringRendersAllFields) {
  const OmpConfig cfg{8, ProcBind::Spread, Places::Cores};
  const std::string s = cfg.toString();
  EXPECT_NE(s.find("OMP_NUM_THREADS=8"), std::string::npos);
  EXPECT_NE(s.find("OMP_PROC_BIND=spread"), std::string::npos);
  EXPECT_NE(s.find("OMP_PLACES=cores"), std::string::npos);
  const OmpConfig unset{};
  EXPECT_NE(unset.toString().find("<unset>"), std::string::npos);
}

TEST(Table1Combinations, MatchesPaperStructure) {
  const auto combos = table1Combinations(24, 48);
  ASSERT_EQ(combos.size(), 8u);
  // Rows 1-2: single thread.
  EXPECT_EQ(combos[0].numThreads, 1);
  EXPECT_EQ(combos[0].procBind, ProcBind::NotSet);
  EXPECT_EQ(combos[1].numThreads, 1);
  EXPECT_EQ(combos[1].procBind, ProcBind::True);
  // Rows 3-5: #cores.
  EXPECT_EQ(combos[2].numThreads, 24);
  EXPECT_EQ(combos[3].procBind, ProcBind::True);
  EXPECT_EQ(combos[4].procBind, ProcBind::Spread);
  EXPECT_EQ(combos[4].places, Places::Cores);
  // Rows 6-8: #threads.
  EXPECT_EQ(combos[5].numThreads, 48);
  EXPECT_EQ(combos[7].procBind, ProcBind::Close);
  EXPECT_EQ(combos[7].places, Places::Threads);
}

TEST(Table1Combinations, Preconditions) {
  EXPECT_THROW((void)table1Combinations(0, 4), PreconditionError);
  EXPECT_THROW((void)table1Combinations(8, 4), PreconditionError);
  // No-SMT machine: #threads rows duplicate #cores rows.
  const auto combos = table1Combinations(16, 16);
  EXPECT_EQ(combos[5].numThreads, 16);
}

TEST(Names, EnumToString) {
  EXPECT_EQ(procBindName(ProcBind::Spread), "spread");
  EXPECT_EQ(procBindName(ProcBind::NotSet), "not set");
  EXPECT_EQ(placesName(Places::Threads), "threads");
  EXPECT_EQ(placesName(Places::NotSet), "not set");
}

}  // namespace
}  // namespace nodebench::ompenv
