#include "workload/gemm.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"
#include "report/roofline.hpp"

namespace nodebench::workload {
namespace {

using machines::byName;

TEST(Gemm, DenseKernelIsComputeBoundEverywhere) {
  for (const machines::Machine& m : machines::allMachines()) {
    GemmConfig cfg;
    const auto host = runGemm(m, cfg);
    EXPECT_TRUE(host.computeBound) << m.info.name;
    if (m.accelerated()) {
      cfg.useDevice = true;
      EXPECT_TRUE(runGemm(m, cfg).computeBound) << m.info.name;
    }
  }
}

TEST(Gemm, TinyBlocksTurnMemoryBound) {
  GemmConfig cfg;
  cfg.blockSize = 16;  // intensity ~ 2 flops/byte, under every ridge
  cfg.useDevice = true;
  const auto r = runGemm(byName("Frontier"), cfg);
  EXPECT_FALSE(r.computeBound);
  EXPECT_LT(r.achievedGflops, 0.9 * 23950.0);
}

TEST(Gemm, AchievedBoundedByEfficiencyTimesPeak) {
  GemmConfig cfg;
  cfg.useDevice = true;
  cfg.computeEfficiency = 0.9;
  for (const char* name : {"Summit", "Perlmutter", "Frontier"}) {
    const auto& m = byName(name);
    const auto r = runGemm(m, cfg);
    EXPECT_LE(r.achievedGflops,
              0.9 * m.device->peakFp64Gflops + 1e-6)
        << name;
    EXPECT_GT(r.achievedGflops, 0.5 * m.device->peakFp64Gflops) << name;
  }
}

TEST(Gemm, IntensityGrowsWithBlockSize) {
  GemmConfig small;
  small.blockSize = 32;
  GemmConfig large;
  large.blockSize = 256;
  const auto& m = byName("Perlmutter");
  EXPECT_GT(runGemm(m, large).intensityFlopsPerByte,
            runGemm(m, small).intensityFlopsPerByte);
}

TEST(Gemm, ValidatesConfig) {
  GemmConfig cfg;
  cfg.blockSize = 8;
  EXPECT_THROW((void)runGemm(byName("Eagle"), cfg), PreconditionError);
  cfg = GemmConfig{};
  cfg.n = 64;  // < blockSize
  EXPECT_THROW((void)runGemm(byName("Eagle"), cfg), PreconditionError);
  cfg = GemmConfig{};
  cfg.useDevice = true;
  EXPECT_THROW((void)runGemm(byName("Eagle"), cfg), PreconditionError);
}

TEST(Roofline, MatchesBalanceAtRidge) {
  const auto& m = byName("Frontier");
  const double ridge = report::ridgeIntensity(m, /*deviceSide=*/true);
  EXPECT_NEAR(ridge, 23950.0 / m.device->hbmBw.inGBps(), 1e-9);
  // Just below the ridge: memory-bound; just above: compute-bound.
  EXPECT_TRUE(report::rooflineAt(m, true, ridge * 0.9).memoryBound);
  EXPECT_FALSE(report::rooflineAt(m, true, ridge * 1.1).memoryBound);
}

TEST(Roofline, MemoryBoundRegionIsLinear) {
  const auto& m = byName("Summit");
  const auto p1 = report::rooflineAt(m, true, 0.25);
  const auto p2 = report::rooflineAt(m, true, 0.5);
  EXPECT_NEAR(p2.gflops / p1.gflops, 2.0, 1e-9);
}

TEST(Roofline, ComputeRegionIsFlatAtPeak) {
  const auto& m = byName("Perlmutter");
  const auto hi = report::rooflineAt(m, true, 1000.0);
  EXPECT_DOUBLE_EQ(hi.gflops, m.device->peakFp64Gflops);
}

TEST(Roofline, SweepCoversRequestedRange) {
  const auto sweep =
      report::rooflineSweep(byName("Frontier"), true, 0.125, 128.0);
  EXPECT_EQ(sweep.size(), 11u);  // 0.125 .. 128 by powers of two
  EXPECT_DOUBLE_EQ(sweep.front().intensityFlopsPerByte, 0.125);
}

TEST(Roofline, RenderedTableMarksComputeBound) {
  const std::vector<const machines::Machine*> ms{&byName("Frontier")};
  const Table t = report::renderRooflines(ms, true, {0.125, 1000.0});
  const std::string ascii = t.renderAscii();
  EXPECT_NE(ascii.find("*"), std::string::npos);
  EXPECT_NE(ascii.find("compute-bound"), std::string::npos);
}

TEST(Roofline, HostSideRequiresPeak) {
  machines::Machine m = byName("Eagle");
  m.hostPeakFp64Gflops = 0.0;
  EXPECT_THROW((void)report::rooflineAt(m, false, 1.0), PreconditionError);
  EXPECT_THROW((void)report::rooflineAt(byName("Eagle"), true, 1.0),
               PreconditionError);
}

}  // namespace
}  // namespace nodebench::workload
