#include "workload/stencil.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"

namespace nodebench::workload {
namespace {

using machines::byName;

StencilConfig smallConfig() {
  StencilConfig cfg;
  cfg.ranks = 4;
  cfg.cellsPerRank = 1 << 16;
  cfg.haloCells = 512;
  cfg.iterations = 3;
  return cfg;
}

TEST(Stencil, BreakdownSumsToTotal) {
  const auto r = runStencil(byName("Eagle"), smallConfig());
  EXPECT_GT(r.totalPerIteration, Duration::zero());
  const double parts = r.computePerIteration.us() +
                       r.haloPerIteration.us() +
                       r.reducePerIteration.us();
  // Rank 0's phases cover its whole iteration (barrier excluded).
  EXPECT_NEAR(parts / r.totalPerIteration.us(), 1.0, 0.05);
}

TEST(Stencil, DeterministicAcrossRuns) {
  const auto a = runStencil(byName("Eagle"), smallConfig());
  const auto b = runStencil(byName("Eagle"), smallConfig());
  EXPECT_DOUBLE_EQ(a.totalPerIteration.ns(), b.totalPerIteration.ns());
}

TEST(Stencil, MoreCellsMeansMoreComputeTime) {
  StencilConfig big = smallConfig();
  big.cellsPerRank *= 8;
  const auto small = runStencil(byName("Eagle"), smallConfig());
  const auto large = runStencil(byName("Eagle"), big);
  EXPECT_GT(large.computePerIteration.ns(),
            4.0 * small.computePerIteration.ns());
  EXPECT_LT(large.haloFraction(), small.haloFraction());
}

TEST(Stencil, DeviceModeUsesGpuRoofline) {
  StencilConfig cfg = smallConfig();
  cfg.cellsPerRank = 1 << 20;
  const auto host = runStencil(byName("Frontier"), cfg);
  cfg.useDevice = true;
  const auto device = runStencil(byName("Frontier"), cfg);
  // A GCD's 1.3 TB/s crushes a single EPYC core's ~14 GB/s on the
  // bandwidth-bound compute phase.
  EXPECT_LT(device.computePerIteration.ns(),
            0.1 * host.computePerIteration.ns());
}

TEST(Stencil, DeviceModeRequiresEnoughGpus) {
  StencilConfig cfg = smallConfig();
  cfg.useDevice = true;
  cfg.ranks = 16;  // > 8 GCDs
  EXPECT_THROW((void)runStencil(byName("Frontier"), cfg),
               PreconditionError);
  EXPECT_THROW((void)runStencil(byName("Eagle"), cfg), PreconditionError);
}

TEST(Stencil, ReduceCanBeDisabled) {
  StencilConfig cfg = smallConfig();
  cfg.reduceEvery = 0;
  const auto r = runStencil(byName("Eagle"), cfg);
  EXPECT_DOUBLE_EQ(r.reducePerIteration.ns(), 0.0);
}

TEST(Stencil, StrongScalingReducesTotalTime) {
  const std::uint64_t global = 1 << 20;
  StencilConfig few = smallConfig();
  few.ranks = 2;
  few.cellsPerRank = global / 2;
  StencilConfig many = smallConfig();
  many.ranks = 16;
  many.cellsPerRank = global / 16;
  const auto slow = runStencil(byName("Sawtooth"), few);
  const auto fast = runStencil(byName("Sawtooth"), many);
  EXPECT_LT(fast.totalPerIteration.ns(), slow.totalPerIteration.ns());
  // But not perfectly: halo cost is fixed per rank.
  EXPECT_GT(fast.haloFraction(), slow.haloFraction());
}

TEST(Stencil, ValidatesConfig) {
  StencilConfig cfg = smallConfig();
  cfg.ranks = 1;
  EXPECT_THROW((void)runStencil(byName("Eagle"), cfg), PreconditionError);
  cfg = smallConfig();
  cfg.iterations = 0;
  EXPECT_THROW((void)runStencil(byName("Eagle"), cfg), PreconditionError);
}

TEST(StencilTrace, TimelineCoversAllRanksAndPhases) {
  mpisim::Tracer tracer;
  const auto cfg = smallConfig();
  (void)runStencil(byName("Eagle"), cfg, &tracer);
  ASSERT_FALSE(tracer.records().empty());
  bool sawCompute = false;
  bool sawRecv = false;
  bool sawPost = false;
  std::set<int> ranks;
  for (const auto& r : tracer.records()) {
    ranks.insert(r.rank);
    sawCompute = sawCompute || r.kind == mpisim::TraceRecord::Kind::Compute;
    sawRecv = sawRecv || r.kind == mpisim::TraceRecord::Kind::Recv;
    sawPost = sawPost || r.kind == mpisim::TraceRecord::Kind::SendPost;
    EXPECT_LE(r.begin, r.end);
  }
  EXPECT_EQ(ranks.size(), 4u);
  EXPECT_TRUE(sawCompute);
  EXPECT_TRUE(sawRecv);
  EXPECT_TRUE(sawPost);
}

TEST(StencilTrace, ChromeJsonIsWellFormedish) {
  mpisim::Tracer tracer;
  (void)runStencil(byName("Eagle"), smallConfig(), &tracer);
  const std::string json = tracer.toChromeJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("]}"), std::string::npos);
  // Balanced braces (cheap sanity check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(StencilTrace, TotalsMatchResultBreakdown) {
  mpisim::Tracer tracer;
  const auto cfg = smallConfig();
  const auto result = runStencil(byName("Eagle"), cfg, &tracer);
  const Duration traced =
      tracer.totalFor(0, mpisim::TraceRecord::Kind::Compute);
  EXPECT_NEAR(traced.us(),
              result.computePerIteration.us() * cfg.iterations, 0.01);
}

}  // namespace
}  // namespace nodebench::workload
