/// \file memlab_report_test.cpp
/// \brief Report-level tests for the memlab families: the --jobs
/// byte-identity contract of the cell harness, coverage of the machine
/// filter, the rendered table/chart shape, and the journal + store +
/// shard --> merge composition (merged artifacts byte-identical to the
/// uninterrupted single-process reference).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "campaign/shard.hpp"
#include "machines/registry.hpp"
#include "report/memlab_report.hpp"
#include "report/tables.hpp"
#include "stats/merge.hpp"
#include "stats/store.hpp"
#include "../shard/shard_test_util.hpp"

namespace nodebench::report {
namespace {

using shardtest::Bytes;
using shardtest::ScratchDir;

const std::vector<std::string> kSmallSet = {"Eagle", "Frontier"};

TableOptions smallOptions(int jobs) {
  TableOptions opt;
  opt.binaryRuns = 3;
  opt.jobs = jobs;
  opt.machines = &kSmallSet;
  return opt;
}

TEST(MemlabDeterminism, SweepIdenticalAcrossWorkerCounts) {
  const auto seq = computeSweep(smallOptions(1));
  const auto par = computeSweep(smallOptions(4));
  EXPECT_EQ(renderSweep(seq).renderAscii(), renderSweep(par).renderAscii());
  EXPECT_EQ(renderSweepChart(seq), renderSweepChart(par));
  EXPECT_FALSE(renderSweep(seq).renderAscii().empty());
  EXPECT_FALSE(renderSweepChart(seq).empty());
}

TEST(MemlabDeterminism, ChaseIdenticalAcrossWorkerCounts) {
  const auto seq = computeChase(smallOptions(1));
  const auto par = computeChase(smallOptions(4));
  EXPECT_EQ(renderChaseNs(seq).renderAscii(),
            renderChaseNs(par).renderAscii());
  EXPECT_EQ(renderChaseClk(seq).renderAscii(),
            renderChaseClk(par).renderAscii());
  EXPECT_EQ(renderChaseChart(seq), renderChaseChart(par));
  EXPECT_FALSE(renderChaseNs(seq).renderAscii().empty());
  EXPECT_FALSE(renderChaseChart(seq).empty());
}

TEST(MemlabReport, CoversTheMachineFilterInRegistryOrder) {
  const auto sweep = computeSweep(smallOptions(4));
  ASSERT_EQ(sweep.size(), 2u);
  // Registry order, not filter order: Frontier (rank 1) precedes Eagle.
  EXPECT_EQ(sweep[0].machine->info.name, "Frontier");
  EXPECT_EQ(sweep[1].machine->info.name, "Eagle");
  EXPECT_EQ(sweep[0].points.size(), memlab::sweepGrid({}).size());

  TableOptions all;
  all.binaryRuns = 2;
  all.jobs = 8;
  const auto chase = computeChase(all);
  EXPECT_EQ(chase.size(), machines::allMachines().size());
}

TEST(MemlabReport, SweepShowsTheCacheKnee) {
  const auto rows = computeSweep(smallOptions(4));
  for (const SweepRow& row : rows) {
    // The smallest (cache-resident) point must beat the largest
    // (DRAM-resident) point: the knee the family exists to expose.
    EXPECT_GT(row.points.front().bandwidthGBps.mean,
              1.2 * row.points.back().bandwidthGBps.mean)
        << row.machine->info.name;
  }
}

TEST(MemlabReport, ChaseLaddersAreMonotoneInTheMean) {
  const auto rows = computeChase(smallOptions(4));
  for (const ChaseRow& row : rows) {
    // Run-to-run noise is a few percent; the ladder spans an order of
    // magnitude, so means should still climb monotonically at the
    // resolution of adjacent octaves two levels apart.
    const auto& pts = row.points;
    EXPECT_LT(pts.front().nsPerAccess.mean, pts.back().nsPerAccess.mean)
        << row.machine->info.name;
    EXPECT_LT(pts.front().clkPerOp.mean, pts.back().clkPerOp.mean)
        << row.machine->info.name;
  }
}

TEST(MemlabReport, CellNamesAreStableIdentifiers) {
  // Journals, fault plans, shard manifests and stores all key on these;
  // changing them orphans every recorded campaign.
  EXPECT_EQ(sweepCellName(ByteCount::kib(48)), "ws 49152");
  EXPECT_EQ(chaseCellName(ByteCount::kib(4)), "chase 4096");
}

/// One in-process shard worker over both memlab families.
void runMemlabShard(const std::string& journalBase,
                    const std::string& storeBase,
                    const campaign::ShardSpec& spec, int jobs) {
  TableOptions opt = smallOptions(jobs);
  campaign::ShardPlan plan(spec);
  opt.shard = &plan;
  const campaign::CampaignConfig cfg = campaignConfig(opt);
  const auto journal =
      campaign::Journal::create(campaign::shardPath(journalBase, spec), cfg);
  const auto store =
      stats::ResultStore::create(campaign::shardPath(storeBase, spec), cfg);
  opt.journal = journal.get();
  opt.store = store.get();
  (void)computeSweep(opt);
  (void)computeChase(opt);
}

TEST(MemlabHarness, JournalStoreShardMergeRoundTrip) {
  ScratchDir dir("nb_memlab_shard");

  // Reference: uninterrupted single-process --jobs 1 run of both
  // families with journal + store attached.
  TableOptions ref = smallOptions(1);
  const campaign::CampaignConfig cfg = campaignConfig(ref);
  {
    const auto journal =
        campaign::Journal::create(dir.path("ref.journal"), cfg);
    const auto store = stats::ResultStore::create(dir.path("ref.store"), cfg);
    ref.journal = journal.get();
    ref.store = store.get();
    (void)computeSweep(ref);
    (void)computeChase(ref);
  }
  const Bytes refJournal = shardtest::readFileBytes(dir.path("ref.journal"));
  const Bytes refStore = shardtest::readFileBytes(dir.path("ref.store"));
  ASSERT_FALSE(refJournal.empty());
  ASSERT_FALSE(refStore.empty());

  // Resume replays the journal instead of re-measuring, byte-stable.
  {
    const auto journal = campaign::Journal::resume(dir.path("ref.journal"), cfg);
    TableOptions resumed = smallOptions(1);
    resumed.journal = journal.get();
    const auto sweep = computeSweep(resumed);
    const auto direct = computeSweep(smallOptions(1));
    EXPECT_EQ(renderSweep(sweep).renderAscii(),
              renderSweep(direct).renderAscii());
  }
  EXPECT_TRUE(shardtest::readFileBytes(dir.path("ref.journal")) == refJournal)
      << "resume must not grow a complete journal";

  // Sharded workers (counts crossing the uneven-partition edge) merge to
  // the reference bytes — the proof `nodebench merge` understands the
  // "sweep"/"chase" grids.
  for (const std::uint32_t count : {2u, 3u}) {
    for (const int jobs : {1, 4}) {
      SCOPED_TRACE(std::to_string(count) + " shards, jobs " +
                   std::to_string(jobs));
      const std::string base = dir.path("n" + std::to_string(count) + "-j" +
                                        std::to_string(jobs));
      for (std::uint32_t i = 0; i < count; ++i) {
        runMemlabShard(base + ".journal", base + ".store", {i, count}, jobs);
      }
      const campaign::MergedCampaign merged = campaign::mergeShardJournals(
          shardtest::collectShardJournals(base + ".journal", count));
      EXPECT_TRUE(merged.journalBytes == refJournal)
          << "merged journal differs (" << merged.journalBytes.size()
          << " vs " << refJournal.size() << " bytes)";

      std::vector<stats::ShardStoreInput> stores;
      for (std::uint32_t i = 0; i < count; ++i) {
        stores.push_back(stats::loadShardStoreInput(
            campaign::shardPath(base + ".store", {i, count})));
      }
      const Bytes mergedStore = stats::mergeShardStores(stores, merged);
      EXPECT_TRUE(mergedStore == refStore)
          << "merged store differs (" << mergedStore.size() << " vs "
          << refStore.size() << " bytes)";
    }
  }
}

}  // namespace
}  // namespace nodebench::report
