/// \file memlab_test.cpp
/// \brief Unit tests for the memlab benchmark families: grid shapes, the
/// pointer-chase analytic truth (ladder staircase, L1 and DRAM limits),
/// per-point measurement determinism, and the knee property of the
/// working-set sweep (cache-resident bandwidth beats DRAM-resident).

#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"
#include "machines/registry.hpp"
#include "memlab/chase.hpp"
#include "memlab/sweep.hpp"

namespace nodebench::memlab {
namespace {

using machines::byName;
using machines::Machine;

TEST(SweepGrid, DoublesFromL1ToTable4Size) {
  const SweepConfig cfg;
  const std::vector<ByteCount> grid = sweepGrid(cfg);
  ASSERT_FALSE(grid.empty());
  EXPECT_EQ(grid.front(), ByteCount::kib(16));
  EXPECT_EQ(grid.back(), ByteCount::mib(256));
  // 16 KiB .. 256 MiB doubling inclusive: 15 points.
  EXPECT_EQ(grid.size(), 15u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].count(), grid[i - 1].count() * 2) << i;
  }
}

TEST(ChaseGrid, DoublesAcrossTheLadder) {
  const ChaseConfig cfg;
  const std::vector<ByteCount> grid = chaseGrid(cfg);
  ASSERT_FALSE(grid.empty());
  EXPECT_EQ(grid.front(), ByteCount::kib(4));
  EXPECT_EQ(grid.back(), ByteCount::mib(512));
  EXPECT_EQ(grid.size(), 18u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].count(), grid[i - 1].count() * 2) << i;
  }
}

TEST(ChaseTruth, L1ResidentSetCostsL1Latency) {
  for (const Machine& m : machines::allMachines()) {
    ASSERT_FALSE(m.cacheHierarchy.empty()) << m.info.name;
    const double l1 = m.cacheHierarchy.levels.front().loadToUseLatency.ns();
    // Any working set no larger than L1 is fully resident: every miss
    // fraction is zero and the sum collapses to t_1 exactly.
    const ByteCount ws = m.cacheHierarchy.levels.front().capacity;
    EXPECT_DOUBLE_EQ(chaseNsPerAccessTruth(m, ws), l1) << m.info.name;
    EXPECT_DOUBLE_EQ(chaseNsPerAccessTruth(m, ByteCount::bytes(64)), l1)
        << m.info.name;
  }
}

TEST(ChaseTruth, MonotoneNondecreasingAcrossTheGrid) {
  const ChaseConfig cfg;
  for (const Machine& m : machines::allMachines()) {
    double prev = 0.0;
    for (const ByteCount ws : chaseGrid(cfg)) {
      const double ns = chaseNsPerAccessTruth(m, ws);
      EXPECT_GE(ns, prev) << m.info.name << " at " << ws.count();
      prev = ns;
    }
  }
}

TEST(ChaseTruth, DeepDramSetsApproachMemoryLatency) {
  for (const Machine& m : machines::allMachines()) {
    const double memNs = m.cacheHierarchy.memoryLatency.ns();
    // 512 MiB spills far past every modeled LLC instance; the telescoped
    // sum converges on the memory latency from below. The loosest case
    // is KNL, whose 16 GiB MCDRAM cache still holds the whole set, so
    // the curve plateaus at the ~170 ns MCDRAM latency instead.
    const double ns = chaseNsPerAccessTruth(m, ByteCount::mib(512));
    EXPECT_LT(ns, memNs) << m.info.name;
    EXPECT_GT(ns, 0.7 * memNs) << m.info.name;
  }
}

TEST(ChaseTruth, ThrowsWithoutAHierarchy) {
  Machine m = byName("Eagle");
  m.cacheHierarchy = machines::CacheHierarchy{};
  EXPECT_THROW((void)chaseNsPerAccessTruth(m, ByteCount::mib(1)), Error);
  ChaseConfig cfg;
  cfg.binaryRuns = 2;
  EXPECT_THROW((void)measureChasePoint(m, ByteCount::mib(1), cfg), Error);
}

TEST(ChaseMeasure, DeterministicAndSaltSensitive) {
  const Machine& m = byName("Frontier");
  ChaseConfig cfg;
  cfg.binaryRuns = 8;
  const ChasePoint a = measureChasePoint(m, ByteCount::mib(8), cfg);
  const ChasePoint b = measureChasePoint(m, ByteCount::mib(8), cfg);
  EXPECT_EQ(a.nsPerAccess.mean, b.nsPerAccess.mean);
  EXPECT_EQ(a.nsPerAccess.stddev, b.nsPerAccess.stddev);
  EXPECT_EQ(a.clkPerOp.mean, b.clkPerOp.mean);
  EXPECT_EQ(a.nsPerAccess.count, 8u);

  // The clk ladder is the ns ladder scaled by the core clock.
  EXPECT_NEAR(a.clkPerOp.mean,
              a.nsPerAccess.mean * m.cacheHierarchy.coreClockGHz, 1e-9);

  ChaseConfig salted = cfg;
  salted.seedSalt = 1;
  const ChasePoint c = measureChasePoint(m, ByteCount::mib(8), salted);
  EXPECT_NE(a.nsPerAccess.mean, c.nsPerAccess.mean);
}

TEST(ChaseMeasure, NoiseCentersOnTheTruth) {
  const Machine& m = byName("Trinity");
  ChaseConfig cfg;
  cfg.binaryRuns = 64;
  const ByteCount ws = ByteCount::mib(64);
  const ChasePoint p = measureChasePoint(m, ws, cfg);
  const double truth = chaseNsPerAccessTruth(m, ws);
  EXPECT_NEAR(p.nsPerAccess.mean, truth,
              truth * 4.0 * m.hostMemory.cvSingle);
  EXPECT_GT(p.nsPerAccess.stddev, 0.0);
}

TEST(SweepMeasure, CacheResidentBeatsDramResident) {
  // The knee property behind the whole family: a triad whose three
  // arrays sit in cache streams faster than the Table 4-sized DRAM run.
  for (const char* name : {"Frontier", "Eagle", "Theta"}) {
    const Machine& m = byName(name);
    SweepConfig cfg;
    cfg.binaryRuns = 4;
    const SweepPoint small = measureSweepPoint(m, ByteCount::kib(16), cfg);
    const SweepPoint large = measureSweepPoint(m, ByteCount::mib(256), cfg);
    EXPECT_GT(small.bandwidthGBps.mean, 1.2 * large.bandwidthGBps.mean)
        << name;
    EXPECT_EQ(small.workingSet.count(), 3u * small.arrayBytes.count());
  }
}

TEST(SweepMeasure, DeterministicAndSaltSensitive) {
  const Machine& m = byName("Perlmutter");
  SweepConfig cfg;
  cfg.binaryRuns = 4;
  const SweepPoint a = measureSweepPoint(m, ByteCount::mib(1), cfg);
  const SweepPoint b = measureSweepPoint(m, ByteCount::mib(1), cfg);
  EXPECT_EQ(a.bandwidthGBps.mean, b.bandwidthGBps.mean);
  EXPECT_EQ(a.bandwidthGBps.stddev, b.bandwidthGBps.stddev);

  SweepConfig salted = cfg;
  salted.seedSalt = 1;
  const SweepPoint c = measureSweepPoint(m, ByteCount::mib(1), salted);
  EXPECT_NE(a.bandwidthGBps.mean, c.bandwidthGBps.mean);

  // Adjacent grid sizes draw decorrelated noise streams.
  const SweepPoint d = measureSweepPoint(m, ByteCount::mib(2), cfg);
  EXPECT_NE(a.bandwidthGBps.mean, d.bandwidthGBps.mean);
}

}  // namespace
}  // namespace nodebench::memlab
