/// \file backoff_test.cpp
/// \brief Determinism and shape of the shard-reassignment backoff.
///
/// The contract under test (DESIGN.md §15): retry schedules are a pure
/// function of (campaign fingerprint, shard, attempt) — byte-reproducible
/// across processes and reruns — with capped-exponential growth and
/// bounded jitter. A flaking backoff would make every chaos-suite failure
/// unreproducible, so determinism here is regression-tested explicitly.

#include "supervise/backoff.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nodebench::supervise {
namespace {

campaign::CampaignConfig demoConfig() {
  campaign::CampaignConfig cfg;
  cfg.registryHash = 0x1234567890abcdefULL;
  cfg.faultPlanHash = 0xfeedface00ULL;
  cfg.seed = 42;
  cfg.runs = 100;
  cfg.jobs = 4;
  cfg.cellRetries = 2;
  cfg.cpuArrayBytes = 128ULL << 20;
  cfg.gpuArrayBytes = 1ULL << 30;
  cfg.mpiMessageSize = 8;
  return cfg;
}

TEST(BackoffSeed, IsStableAcrossCalls) {
  const auto cfg = demoConfig();
  EXPECT_EQ(retrySeed(cfg, 3, 1), retrySeed(cfg, 3, 1));
  EXPECT_EQ(retrySeed(cfg, 0, 2), retrySeed(cfg, 0, 2));
}

TEST(BackoffSeed, DistinguishesShardAndAttempt) {
  const auto cfg = demoConfig();
  std::set<std::uint64_t> seeds;
  for (std::uint32_t shard = 0; shard < 8; ++shard) {
    for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
      seeds.insert(retrySeed(cfg, shard, attempt));
    }
  }
  EXPECT_EQ(seeds.size(), 8u * 4u) << "seed collisions across (shard, "
                                      "attempt) would correlate retries";
}

TEST(BackoffSeed, DependsOnCampaignIdentityFields) {
  const auto base = demoConfig();
  auto changed = base;
  changed.registryHash ^= 1;
  EXPECT_NE(retrySeed(base, 1, 1), retrySeed(changed, 1, 1));
  changed = base;
  changed.runs = 99;
  EXPECT_NE(retrySeed(base, 1, 1), retrySeed(changed, 1, 1));
  changed = base;
  changed.faultPlanHash ^= 1;
  EXPECT_NE(retrySeed(base, 1, 1), retrySeed(changed, 1, 1));
}

TEST(BackoffSeed, IgnoresJobsLikeEveryFingerprintComparison) {
  // `jobs` is provenance, not identity: a supervised campaign resumed
  // with different worker parallelism must keep the same retry schedule.
  auto a = demoConfig();
  auto b = demoConfig();
  a.jobs = 1;
  b.jobs = 16;
  EXPECT_EQ(retrySeed(a, 2, 3), retrySeed(b, 2, 3));
}

TEST(BackoffDelay, GrowsExponentiallyThenCaps) {
  BackoffPolicy policy;
  policy.baseMs = 100;
  policy.capMs = 1000;
  policy.jitterFrac = 0.0;  // isolate the deterministic component
  const std::uint64_t seed = retrySeed(demoConfig(), 0, 1);
  EXPECT_EQ(backoffDelayMs(policy, seed, 1), 100u);
  EXPECT_EQ(backoffDelayMs(policy, seed, 2), 200u);
  EXPECT_EQ(backoffDelayMs(policy, seed, 3), 400u);
  EXPECT_EQ(backoffDelayMs(policy, seed, 4), 800u);
  EXPECT_EQ(backoffDelayMs(policy, seed, 5), 1000u);
  EXPECT_EQ(backoffDelayMs(policy, seed, 6), 1000u);
  // Far past the cap: the shift must not overflow into a tiny delay.
  EXPECT_EQ(backoffDelayMs(policy, seed, 40), 1000u);
}

TEST(BackoffDelay, JitterIsBoundedAndDeterministic) {
  BackoffPolicy policy;
  policy.baseMs = 200;
  policy.capMs = 5000;
  policy.jitterFrac = 0.5;
  const auto cfg = demoConfig();
  for (std::uint32_t attempt = 1; attempt <= 5; ++attempt) {
    const std::uint64_t seed = retrySeed(cfg, 1, attempt);
    const std::uint32_t first = backoffDelayMs(policy, seed, attempt);
    const std::uint32_t second = backoffDelayMs(policy, seed, attempt);
    EXPECT_EQ(first, second) << "attempt " << attempt;
    const std::uint32_t pure = std::min<std::uint32_t>(
        policy.capMs, policy.baseMs << (attempt - 1));
    EXPECT_GE(first, pure);
    EXPECT_LE(first, pure + static_cast<std::uint32_t>(pure * 0.5) + 1);
  }
}

TEST(BackoffDelay, GoldenScheduleRegression) {
  // The full schedule for one fixed campaign, frozen: any change to the
  // seed mix, the RNG, or the delay formula must show up here and be a
  // conscious format decision, because reproducing old chaos failures
  // depends on it.
  BackoffPolicy policy;  // defaults: 250ms base, 5000ms cap, 0.5 jitter
  const auto cfg = demoConfig();
  std::vector<std::uint32_t> schedule;
  for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
    schedule.push_back(
        backoffDelayMs(policy, retrySeed(cfg, 2, attempt), attempt));
  }
  const std::vector<std::uint32_t> again = [&] {
    std::vector<std::uint32_t> s;
    for (std::uint32_t attempt = 1; attempt <= 4; ++attempt) {
      s.push_back(
          backoffDelayMs(policy, retrySeed(cfg, 2, attempt), attempt));
    }
    return s;
  }();
  EXPECT_EQ(schedule, again);
}

}  // namespace
}  // namespace nodebench::supervise
