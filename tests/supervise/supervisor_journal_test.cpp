/// \file supervisor_journal_test.cpp
/// \brief On-disk format and recovery behaviour of the supervisor's own
/// crash-safe journal: create/append/resume round-trips, torn-tail
/// truncation with warnings, corrupt-header refusals, and the
/// parameter-mismatch refusal contract (which must name the parameter).

#include "supervise/journal.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "../shard/shard_test_util.hpp"

namespace nodebench::supervise {
namespace {

using shardtest::ScratchDir;
using shardtest::readFileBytes;

SupervisorConfig demoConfig() {
  SupervisorConfig cfg;
  cfg.campaign.registryHash = 0x1122334455667788ULL;
  cfg.campaign.faultPlanHash = 0x99aabbccULL;
  cfg.campaign.seed = 7;
  cfg.campaign.runs = 25;
  cfg.campaign.jobs = 4;
  cfg.campaign.cellRetries = 2;
  cfg.shards = 3;
  cfg.maxAttempts = 2;
  cfg.backoffBaseMs = 250;
  cfg.backoffCapMs = 5000;
  return cfg;
}

SupervisorEvent started(std::uint32_t shard, std::uint32_t attempt,
                        std::uint64_t pid) {
  SupervisorEvent e;
  e.kind = EventKind::AttemptStarted;
  e.shard = shard;
  e.attempt = attempt;
  e.pid = pid;
  return e;
}

SupervisorEvent failed(std::uint32_t shard, std::uint32_t attempt,
                       std::string detail) {
  SupervisorEvent e;
  e.kind = EventKind::AttemptFailed;
  e.shard = shard;
  e.attempt = attempt;
  e.detail = std::move(detail);
  return e;
}

void appendRaw(const std::string& path,
               const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(SupervisorJournal, CreateAppendResumeRoundTrip) {
  ScratchDir dir("nb-supervisor-journal-roundtrip");
  const std::string path = dir.path("sv.journal");
  const auto cfg = demoConfig();
  {
    const auto journal = SupervisorJournal::create(path, cfg);
    journal->append(started(0, 1, 101));
    journal->append(failed(0, 1, "worker was killed by signal 9"));
    journal->append(started(0, 2, 102));
  }
  const auto resumed = SupervisorJournal::resume(path, cfg);
  EXPECT_TRUE(resumed->warnings().empty());
  ASSERT_EQ(resumed->events().size(), 3u);
  EXPECT_EQ(resumed->events()[0], started(0, 1, 101));
  EXPECT_EQ(resumed->events()[1],
            failed(0, 1, "worker was killed by signal 9"));
  EXPECT_EQ(resumed->events()[2], started(0, 2, 102));
  EXPECT_TRUE(resumed->config() == cfg);
}

TEST(SupervisorJournal, CreateRefusesExistingFile) {
  ScratchDir dir("nb-supervisor-journal-exists");
  const std::string path = dir.path("sv.journal");
  const auto cfg = demoConfig();
  { (void)SupervisorJournal::create(path, cfg); }
  try {
    (void)SupervisorJournal::create(path, cfg);
    FAIL() << "create over an existing journal must refuse";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos)
        << "the refusal should point at --resume: " << e.what();
  }
}

TEST(SupervisorJournal, ResumeTruncatesTornTailOnce) {
  ScratchDir dir("nb-supervisor-journal-torn");
  const std::string path = dir.path("sv.journal");
  const auto cfg = demoConfig();
  {
    const auto journal = SupervisorJournal::create(path, cfg);
    journal->append(started(1, 1, 55));
    journal->append(failed(1, 1, "boom"));
  }
  const auto intact = readFileBytes(path);
  // A kill mid-append: half an event frame dangles off the end.
  auto torn = SupervisorJournal::encodeEvent(started(2, 1, 56));
  torn.resize(torn.size() / 2);
  appendRaw(path, torn);

  {
    const auto resumed = SupervisorJournal::resume(path, cfg);
    ASSERT_EQ(resumed->warnings().size(), 1u);
    EXPECT_NE(resumed->warnings()[0].find("torn tail"), std::string::npos)
        << resumed->warnings()[0];
    ASSERT_EQ(resumed->events().size(), 2u);
    EXPECT_EQ(resumed->events()[1], failed(1, 1, "boom"));
  }
  // The resume rewrote the file to the valid prefix…
  EXPECT_EQ(readFileBytes(path), intact);
  // …so a second resume is clean.
  const auto again = SupervisorJournal::resume(path, cfg);
  EXPECT_TRUE(again->warnings().empty());
  EXPECT_EQ(again->events().size(), 2u);
}

TEST(SupervisorJournal, ResumeRefusesParameterMismatchNamingIt) {
  ScratchDir dir("nb-supervisor-journal-mismatch");
  const auto cfg = demoConfig();
  const auto expectRefusal = [&](SupervisorConfig changed,
                                 const std::string& param) {
    const std::string path = dir.path("sv-" + param + ".journal");
    { (void)SupervisorJournal::create(path, cfg); }
    try {
      (void)SupervisorJournal::resume(path, changed);
      FAIL() << "resume under a different " << param << " must refuse";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(param), std::string::npos)
          << "diagnostic should name " << param << ": " << e.what();
    }
  };

  auto c = cfg;
  c.shards = 5;
  expectRefusal(c, "--shards");
  c = cfg;
  c.maxAttempts = 9;
  expectRefusal(c, "--max-attempts");
  c = cfg;
  c.backoffBaseMs = 1;
  expectRefusal(c, "--backoff-base-ms");
  c = cfg;
  c.backoffCapMs = 1;
  expectRefusal(c, "--backoff-cap-ms");
  c = cfg;
  c.campaign.runs = 26;
  expectRefusal(c, "--runs");
}

TEST(SupervisorJournal, ResumeIgnoresJobsLikeEveryFingerprintComparison) {
  ScratchDir dir("nb-supervisor-journal-jobs");
  const std::string path = dir.path("sv.journal");
  const auto cfg = demoConfig();
  { (void)SupervisorJournal::create(path, cfg); }
  auto differentJobs = cfg;
  differentJobs.campaign.jobs = 16;
  const auto resumed = SupervisorJournal::resume(path, differentJobs);
  EXPECT_TRUE(resumed->warnings().empty());
}

TEST(SupervisorJournal, DecodeRefusesBadMagicAndVersion) {
  const auto cfg = demoConfig();
  auto bytes = SupervisorJournal::encodeHeader(cfg);
  {
    auto bad = bytes;
    bad[0] ^= 0xff;
    EXPECT_THROW((void)SupervisorJournal::decode(bad),
                 SupervisorJournalError);
  }
  {
    auto bad = bytes;
    bad[4] = 0x7f;  // schema version nobody writes
    try {
      (void)SupervisorJournal::decode(bad);
      FAIL() << "unknown schema version must refuse";
    } catch (const SupervisorJournalError& e) {
      EXPECT_NE(std::string(e.what()).find("schema version"),
                std::string::npos)
          << e.what();
    }
  }
  EXPECT_THROW((void)SupervisorJournal::decode(
                   std::vector<std::uint8_t>{'N', 'B'}),
               SupervisorJournalError);
}

TEST(SupervisorJournal, DecodeRefusesCorruptHeader) {
  const auto cfg = demoConfig();
  auto bytes = SupervisorJournal::encodeHeader(cfg);
  // Flip one payload byte: the header CRC no longer matches. Unlike a
  // torn event tail this is a hard error — there is no campaign identity
  // to resume against.
  bytes.back() ^= 0x01;
  EXPECT_THROW((void)SupervisorJournal::decode(bytes),
               SupervisorJournalError);
  // Truncated mid-header is equally fatal.
  auto truncated = SupervisorJournal::encodeHeader(cfg);
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW((void)SupervisorJournal::decode(truncated),
               SupervisorJournalError);
}

TEST(SupervisorJournal, DecodeDropsInvalidEventsAsTornTail) {
  const auto cfg = demoConfig();
  const auto header = SupervisorJournal::encodeHeader(cfg);

  const auto expectTornAfterOne = [&](std::vector<std::uint8_t> tail,
                                      const std::string& whyFragment) {
    auto bytes = header;
    const auto good = SupervisorJournal::encodeEvent(started(0, 1, 9));
    bytes.insert(bytes.end(), good.begin(), good.end());
    bytes.insert(bytes.end(), tail.begin(), tail.end());
    const auto decoded = SupervisorJournal::decode(bytes);
    EXPECT_EQ(decoded.events.size(), 1u) << whyFragment;
    ASSERT_EQ(decoded.warnings.size(), 1u) << whyFragment;
    EXPECT_NE(decoded.warnings[0].find(whyFragment), std::string::npos)
        << decoded.warnings[0];
    EXPECT_EQ(decoded.validBytes, header.size() + good.size());
  };

  // A bit-flipped frame: the event checksum no longer matches.
  {
    auto flipped = SupervisorJournal::encodeEvent(failed(0, 1, "flip"));
    flipped.back() ^= 0x01;
    expectTornAfterOne(flipped, "checksum mismatch");
  }
  // CRC-valid frame naming a shard outside the campaign.
  expectTornAfterOne(
      SupervisorJournal::encodeEvent(started(cfg.shards + 4, 1, 9)),
      "names shard");
  // Half a frame (the classic kill-mid-append).
  auto half = SupervisorJournal::encodeEvent(failed(0, 1, "x"));
  half.resize(5);
  expectTornAfterOne(half, "incomplete event frame");
}

}  // namespace
}  // namespace nodebench::supervise
