/// \file partial_merge_test.cpp
/// \brief The degrade-to-partial merge contract (DESIGN.md §15): an
/// all-present partial merge is byte-identical to the strict merge, a
/// missing shard becomes an enumerated gap (never a silently smaller
/// table), quarantine records annotate gaps and refusals with attempt
/// counts and incidents, and the negative paths — out-of-range
/// quarantine indices, stores for quarantined shards — are refused.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/shard.hpp"
#include "stats/merge.hpp"
#include "stats/store.hpp"
#include "../shard/shard_test_util.hpp"

namespace nodebench::campaign {
namespace {

using shardtest::Bytes;
using shardtest::CampaignKnobs;
using shardtest::ScratchDir;

/// One three-way-sharded campaign (Table 4 over two CPU machines, six
/// cells, two cells per shard), built once. Partial-merge cases drop
/// shards from copies of this set.
struct PartialFixtureData {
  std::vector<ShardInput> shards;  ///< complete: 0/3, 1/3, 2/3
  std::vector<stats::ShardStoreInput> stores;
  Bytes reference;       ///< unsharded --jobs 1 journal
  Bytes referenceStore;  ///< its results store
};

const PartialFixtureData& fixture() {
  static const PartialFixtureData data = [] {
    static const ScratchDir dir("nb_supervise_partial");
    static const std::vector<std::string> machines = {"Trinity", "Manzano"};
    CampaignKnobs knobs;
    knobs.machines = &machines;
    knobs.withTable5 = false;
    knobs.binaryRuns = 2;

    PartialFixtureData out;
    const shardtest::Artifacts ref = shardtest::runReference(
        dir.path("ref.journal"), dir.path("ref.store"), knobs);
    out.reference = ref.journal;
    out.referenceStore = ref.store;
    for (std::uint32_t i = 0; i < 3; ++i) {
      shardtest::runShardWorker(dir.path("c.journal"), dir.path("c.store"),
                                {i, 3}, knobs);
      out.stores.push_back(stats::loadShardStoreInput(
          shardPath(dir.path("c.store"), {i, 3})));
    }
    out.shards = shardtest::collectShardJournals(dir.path("c.journal"), 3);
    return out;
  }();
  return data;
}

/// The merge set with shard `dropped` absent.
std::vector<ShardInput> without(std::uint32_t dropped) {
  std::vector<ShardInput> set;
  for (const ShardInput& s : fixture().shards) {
    const Journal::Decoded d = Journal::decode(s.bytes);
    if (d.config.shardIndex != dropped) {
      set.push_back(s);
    }
  }
  return set;
}

ShardGap quarantine(std::uint32_t shard, std::uint32_t attempts,
                    std::string incident) {
  ShardGap gap;
  gap.shard = shard;
  gap.attempts = attempts;
  gap.lastIncident = std::move(incident);
  return gap;
}

TEST(PartialMerge, AllPresentPartialMergeIsByteIdenticalToStrict) {
  const MergedCampaign strict = mergeShardJournals(fixture().shards);
  MergeOptions mopt;
  mopt.allowPartial = true;
  const MergedCampaign partial = mergeShardJournals(fixture().shards, mopt);
  EXPECT_FALSE(partial.partial);
  EXPECT_TRUE(partial.missingShards.empty());
  EXPECT_TRUE(partial.missingCells.empty());
  EXPECT_TRUE(partial.journalBytes == strict.journalBytes);
  EXPECT_TRUE(strict.journalBytes == fixture().reference);
  EXPECT_EQ(partial.presentShards,
            (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(PartialMerge, MissingShardBecomesEnumeratedGapNotRefusal) {
  MergeOptions mopt;
  mopt.allowPartial = true;
  const MergedCampaign merged = mergeShardJournals(without(1), mopt);
  EXPECT_TRUE(merged.partial);
  EXPECT_EQ(merged.presentShards, (std::vector<std::uint32_t>{0, 2}));
  ASSERT_EQ(merged.missingShards.size(), 1u);
  EXPECT_EQ(merged.missingShards[0].shard, 1u);
  EXPECT_EQ(merged.missingShards[0].attempts, 0u) << "no quarantine given";
  EXPECT_EQ(merged.missingShards[0].lastIncident,
            "shard journal missing from the merge set");
  // Six cells, three shards: shard 1 owned exactly two, and every one of
  // its cells — no more, no fewer — is enumerated as missing.
  ASSERT_EQ(merged.grid.size(), 6u);
  ASSERT_EQ(merged.missingCells.size(), 2u);
  for (const std::size_t g : merged.missingCells) {
    EXPECT_EQ(merged.ownerShard[g], 1u);
  }
  // The merged journal is the reference minus the gap cells: decodable,
  // with exactly the present cells, never byte-equal to the full run.
  const Journal::Decoded d = Journal::decode(merged.journalBytes);
  EXPECT_EQ(d.records.size(), 4u);
  EXPECT_FALSE(merged.journalBytes == fixture().reference);
}

TEST(PartialMerge, QuarantineRecordAnnotatesGapAndManifest) {
  MergeOptions mopt;
  mopt.allowPartial = true;
  mopt.quarantined = {
      quarantine(1, 3, "worker was killed by signal 9")};
  const MergedCampaign merged = mergeShardJournals(without(1), mopt);
  ASSERT_EQ(merged.missingShards.size(), 1u);
  EXPECT_EQ(merged.missingShards[0].attempts, 3u);
  EXPECT_EQ(merged.missingShards[0].lastIncident,
            "worker was killed by signal 9");

  const std::string manifest = renderGapManifest(merged);
  EXPECT_NE(manifest.find("\"schema\": \"nodebench-gap-manifest-v1\""),
            std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("\"shards\": 3"), std::string::npos) << manifest;
  EXPECT_NE(manifest.find("\"present_shards\": [0, 2]"), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("{\"shard\": 1, \"attempts\": 3, "
                          "\"last_incident\": \"worker was killed by "
                          "signal 9\"}"),
            std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("\"total_cells\": 6"), std::string::npos)
      << manifest;
  EXPECT_NE(manifest.find("\"present_cells\": 4"), std::string::npos)
      << manifest;
  // Every missing cell is named with its machine, cell, and owner shard.
  for (const std::size_t g : merged.missingCells) {
    EXPECT_NE(
        manifest.find("{\"machine\": \"" + merged.grid[g].machine +
                      "\", \"cell\": \"" + merged.grid[g].cell +
                      "\", \"shard\": 1}"),
        std::string::npos)
        << manifest;
  }
}

TEST(PartialMerge, GapManifestIsByteStableAcrossReruns) {
  MergeOptions mopt;
  mopt.allowPartial = true;
  mopt.quarantined = {quarantine(2, 2, "worker exited with code 1")};
  const std::string a =
      renderGapManifest(mergeShardJournals(without(2), mopt));
  const std::string b =
      renderGapManifest(mergeShardJournals(without(2), mopt));
  EXPECT_EQ(a, b);
}

TEST(PartialMerge, PartialStoreMergeSkipsTheQuarantinedShard) {
  MergeOptions mopt;
  mopt.allowPartial = true;
  mopt.quarantined = {quarantine(1, 2, "oom")};
  const MergedCampaign plan = mergeShardJournals(without(1), mopt);
  const Bytes merged = stats::mergeShardStores(
      {fixture().stores[0], fixture().stores[2]}, plan);
  // Decodable and smaller than the full-campaign store: the gap shard's
  // samples are absent by declaration, not silently.
  const stats::StoreContents contents = stats::ResultStore::decode(merged);
  EXPECT_LT(contents.records.size(),
            stats::ResultStore::decode(fixture().referenceStore)
                .records.size());
}

// --- negative paths ----------------------------------------------------------

TEST(PartialMerge, StrictRefusalNamesTheQuarantineIncident) {
  MergeOptions mopt;  // allowPartial stays false
  mopt.quarantined = {
      quarantine(1, 2, "worker missed heartbeats for 5000ms")};
  try {
    (void)mergeShardJournals(without(1), mopt);
    FAIL() << "strict merge with a missing shard must refuse";
  } catch (const ShardMergeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("shard 1/3 is missing"), std::string::npos) << what;
    EXPECT_NE(what.find("quarantined after 2 failed attempt(s)"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("worker missed heartbeats for 5000ms"),
              std::string::npos)
        << what;
  }
}

TEST(PartialMerge, OutOfRangeQuarantineShardIsRefusedEvenInPartialMode) {
  MergeOptions mopt;
  mopt.allowPartial = true;
  mopt.quarantined = {quarantine(7, 1, "x")};
  try {
    (void)mergeShardJournals(without(1), mopt);
    FAIL() << "quarantining a shard outside [0, N) must refuse";
  } catch (const ShardMergeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quarantine list names shard 7"), std::string::npos)
        << what;
    EXPECT_NE(what.find("3 shard(s)"), std::string::npos) << what;
  }
}

TEST(PartialMerge, StoreForAQuarantinedJournalShardIsRefused) {
  MergeOptions mopt;
  mopt.allowPartial = true;
  mopt.quarantined = {quarantine(1, 2, "oom")};
  const MergedCampaign plan = mergeShardJournals(without(1), mopt);
  try {
    (void)stats::mergeShardStores(fixture().stores, plan);
    FAIL() << "a store whose journal is a gap must refuse to merge";
  } catch (const ShardMergeError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("store shard 1/3"), std::string::npos) << what;
    EXPECT_NE(what.find("quarantined gap"), std::string::npos) << what;
  }
}

TEST(PartialMerge, PartialModeStillValidatesPresentShards) {
  // A present shard with a torn tail is refused exactly as strictly
  // under --allow-partial: degradation covers absent shards, never
  // corrupt ones.
  MergeOptions mopt;
  mopt.allowPartial = true;
  std::vector<ShardInput> set = without(1);
  for (int i = 0; i < 6; ++i) {
    set[0].bytes.push_back(0xff);
  }
  try {
    (void)mergeShardJournals(set, mopt);
    FAIL() << "partial mode must not accept a corrupt present shard";
  } catch (const ShardMergeError& e) {
    EXPECT_NE(std::string(e.what()).find("torn tail"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace nodebench::campaign
