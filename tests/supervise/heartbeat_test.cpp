/// \file heartbeat_test.cpp
/// \brief The worker-liveness file contract: path convention, atomic
/// write/read round-trips, malformed-file tolerance, and the background
/// HeartbeatWriter (including its stall-after-N test hook — the lever
/// the chaos suite uses to fake a wedged worker).

#include "supervise/heartbeat.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "../shard/shard_test_util.hpp"

namespace nodebench::supervise {
namespace {

using shardtest::ScratchDir;

TEST(Heartbeat, PathConventionSitsNextToTheShardJournal) {
  EXPECT_EQ(heartbeatPath("/tmp/c.journal.shard0of4"),
            "/tmp/c.journal.shard0of4.hb");
}

TEST(Heartbeat, WriteReadRoundTrip) {
  ScratchDir dir("nb-heartbeat-roundtrip");
  const std::string path = dir.path("w.hb");
  writeHeartbeatFile(path, Heartbeat{1234, 7});
  const auto beat = readHeartbeatFile(path);
  ASSERT_TRUE(beat.has_value());
  EXPECT_EQ(beat->pid, 1234u);
  EXPECT_EQ(beat->seq, 7u);
  // Rewrites replace, never append.
  writeHeartbeatFile(path, Heartbeat{1234, 8});
  const auto next = readHeartbeatFile(path);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->seq, 8u);
}

TEST(Heartbeat, MissingOrMalformedFileReadsAsNoBeat) {
  ScratchDir dir("nb-heartbeat-malformed");
  EXPECT_EQ(readHeartbeatFile(dir.path("absent.hb")), std::nullopt);

  const auto writeText = [&](const std::string& name,
                             const std::string& text) {
    const std::string path = dir.path(name);
    std::ofstream(path, std::ios::binary) << text;
    return path;
  };
  EXPECT_EQ(readHeartbeatFile(writeText("empty.hb", "")), std::nullopt);
  EXPECT_EQ(readHeartbeatFile(writeText("garbage.hb", "hello world\n")),
            std::nullopt);
  EXPECT_EQ(readHeartbeatFile(writeText("wrongmagic.hb", "xxhb 1 2\n")),
            std::nullopt);
  EXPECT_EQ(readHeartbeatFile(writeText("short.hb", "nbhb 12\n")),
            std::nullopt);
}

TEST(Heartbeat, WriterBeatsWithMonotonicSequence) {
  ScratchDir dir("nb-heartbeat-writer");
  const std::string path = dir.path("w.hb");
  HeartbeatWriter writer(path, 10);
  // The first beat is written synchronously-soon (immediately on thread
  // start); wait for a few more.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (writer.beats() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(writer.beats(), 3u) << "writer never beat";
  const auto beat = readHeartbeatFile(path);
  ASSERT_TRUE(beat.has_value());
  EXPECT_EQ(beat->pid, static_cast<std::uint64_t>(::getpid()));
  EXPECT_GE(beat->seq, 1u);
}

TEST(Heartbeat, StallAfterHookFreezesTheSequence) {
  ScratchDir dir("nb-heartbeat-stall");
  const std::string path = dir.path("w.hb");
  HeartbeatWriter writer(path, 5, /*stallAfter=*/2);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (writer.beats() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(writer.beats(), 2u) << "stall hook did not engage";
  // Give the writer ample opportunity to (wrongly) beat again: the
  // sequence must stay frozen — this is exactly what the supervisor's
  // monitor flags as a wedged worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(writer.beats(), 2u);
  const auto beat = readHeartbeatFile(path);
  ASSERT_TRUE(beat.has_value());
  EXPECT_EQ(beat->seq, 2u);
}

}  // namespace
}  // namespace nodebench::supervise
