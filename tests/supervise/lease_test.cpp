/// \file lease_test.cpp
/// \brief The lease state machine in virtual time: acquisition order,
/// backoff windows, poison quarantine, crash re-adoption (release), and
/// journal replay — including the refusal contract for inconsistent
/// event logs.

#include "supervise/lease.hpp"

#include <gtest/gtest.h>

#include "supervise/journal.hpp"

namespace nodebench::supervise {
namespace {

campaign::CampaignConfig demoConfig() {
  campaign::CampaignConfig cfg;
  cfg.registryHash = 0xabcdefULL;
  cfg.runs = 10;
  return cfg;
}

BackoffPolicy fastPolicy() {
  BackoffPolicy policy;
  policy.baseMs = 100;
  policy.capMs = 400;
  policy.jitterFrac = 0.0;  // exact windows for the assertions below
  return policy;
}

SupervisorEvent event(EventKind kind, std::uint32_t shard,
                      std::uint32_t attempt, std::uint64_t pid = 0,
                      std::string detail = "") {
  SupervisorEvent e;
  e.kind = kind;
  e.shard = shard;
  e.attempt = attempt;
  e.pid = pid;
  e.detail = std::move(detail);
  return e;
}

TEST(LeaseScheduler, AcquiresLowestPendingFirst) {
  LeaseScheduler sched(3, 3, fastPolicy(), demoConfig());
  EXPECT_EQ(sched.acquire(0), std::optional<std::uint32_t>(0));
  EXPECT_EQ(sched.acquire(0), std::optional<std::uint32_t>(1));
  EXPECT_EQ(sched.acquire(0), std::optional<std::uint32_t>(2));
  EXPECT_EQ(sched.acquire(0), std::nullopt) << "all leased";
  EXPECT_EQ(sched.leasedCount(), 3u);
}

TEST(LeaseScheduler, CompleteResolvesShard) {
  LeaseScheduler sched(2, 3, fastPolicy(), demoConfig());
  ASSERT_TRUE(sched.acquire(0).has_value());
  sched.complete(0);
  EXPECT_EQ(sched.lease(0).state, ShardState::Done);
  EXPECT_FALSE(sched.allResolved());
  ASSERT_TRUE(sched.acquire(0).has_value());
  sched.complete(1);
  EXPECT_TRUE(sched.allResolved());
  EXPECT_FALSE(sched.anyPoisoned());
  EXPECT_EQ(sched.doneShards(), (std::vector<std::uint32_t>{0, 1}));
}

TEST(LeaseScheduler, FailedAttemptBacksOffDeterministically) {
  LeaseScheduler sched(1, 3, fastPolicy(), demoConfig());
  ASSERT_TRUE(sched.acquire(0).has_value());
  EXPECT_EQ(sched.fail(0, "boom", 1000), ShardState::Pending);
  EXPECT_EQ(sched.lease(0).lastIncident, "boom");
  // First retry waits base (100ms, zero jitter): not ready before.
  EXPECT_EQ(sched.acquire(1000), std::nullopt);
  EXPECT_EQ(sched.acquire(1099), std::nullopt);
  EXPECT_TRUE(sched.acquire(1100).has_value());
  // Second failure doubles the window.
  EXPECT_EQ(sched.fail(0, "boom again", 2000), ShardState::Pending);
  EXPECT_EQ(sched.acquire(2199), std::nullopt);
  EXPECT_TRUE(sched.acquire(2200).has_value());
  EXPECT_EQ(sched.lease(0).attempts, 3u);
}

TEST(LeaseScheduler, PoisonsAfterMaxAttempts) {
  LeaseScheduler sched(2, 2, fastPolicy(), demoConfig());
  ASSERT_TRUE(sched.acquire(0).has_value());
  EXPECT_EQ(sched.fail(0, "first", 0), ShardState::Pending);
  ASSERT_TRUE(sched.acquire(1000).has_value());
  EXPECT_EQ(sched.fail(0, "second", 2000), ShardState::Poisoned);
  EXPECT_TRUE(sched.anyPoisoned());
  EXPECT_EQ(sched.acquire(10000), std::optional<std::uint32_t>(1))
      << "a poisoned shard is never re-leased";

  const auto gaps = sched.quarantined();
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_EQ(gaps[0].shard, 0u);
  EXPECT_EQ(gaps[0].attempts, 2u);
  EXPECT_EQ(gaps[0].lastIncident, "second");
}

TEST(LeaseScheduler, ReleaseUnburnsTheAttempt) {
  // Crash re-adoption: the supervisor died, not the worker, so the
  // in-flight attempt must not count toward the poison threshold.
  LeaseScheduler sched(1, 2, fastPolicy(), demoConfig());
  ASSERT_TRUE(sched.acquire(0).has_value());
  EXPECT_EQ(sched.lease(0).attempts, 1u);
  sched.release(0);
  EXPECT_EQ(sched.lease(0).state, ShardState::Pending);
  EXPECT_EQ(sched.lease(0).attempts, 0u);
  // The shard is immediately ready (no backoff — nothing failed).
  ASSERT_TRUE(sched.acquire(0).has_value());
  EXPECT_EQ(sched.fail(0, "a", 0), ShardState::Pending)
      << "the released attempt did not count";
  ASSERT_TRUE(sched.acquire(1000).has_value());
  EXPECT_EQ(sched.fail(0, "b", 2000), ShardState::Poisoned);
}

TEST(LeaseScheduler, NextPendingReadyMsReportsEarliestWindow) {
  LeaseScheduler sched(2, 3, fastPolicy(), demoConfig());
  ASSERT_TRUE(sched.acquire(0).has_value());
  ASSERT_TRUE(sched.acquire(0).has_value());
  EXPECT_EQ(sched.nextPendingReadyMs(), std::nullopt);
  (void)sched.fail(0, "x", 1000);
  (void)sched.fail(1, "y", 5000);
  ASSERT_TRUE(sched.nextPendingReadyMs().has_value());
  EXPECT_EQ(*sched.nextPendingReadyMs(), 1100);
}

TEST(LeaseScheduler, ReplayRebuildsState) {
  LeaseScheduler sched(3, 2, fastPolicy(), demoConfig());
  const std::vector<SupervisorEvent> events = {
      event(EventKind::AttemptStarted, 0, 1, 101),
      event(EventKind::AttemptStarted, 1, 1, 102),
      event(EventKind::ShardDone, 0, 1),
      event(EventKind::AttemptFailed, 1, 1, 0, "oom"),
      event(EventKind::AttemptStarted, 2, 1, 103),
      event(EventKind::AttemptFailed, 2, 1, 0, "crash"),
      event(EventKind::AttemptStarted, 2, 2, 104),
      event(EventKind::AttemptFailed, 2, 2, 0, "crash again"),
      event(EventKind::ShardPoisoned, 2, 2, 0, "crash again"),
      event(EventKind::AttemptStarted, 1, 2, 105),
  };
  sched.replay(events, 0);
  EXPECT_EQ(sched.lease(0).state, ShardState::Done);
  EXPECT_EQ(sched.lease(1).state, ShardState::Leased);
  EXPECT_EQ(sched.lease(1).pid, 105u);
  EXPECT_EQ(sched.lease(1).attempts, 2u);
  EXPECT_EQ(sched.lease(2).state, ShardState::Poisoned);
  EXPECT_EQ(sched.lease(2).lastIncident, "crash again");
}

TEST(LeaseScheduler, ReplayRefusesInconsistentLogs) {
  const auto cfg = demoConfig();
  {
    LeaseScheduler sched(2, 2, fastPolicy(), cfg);
    EXPECT_THROW(
        sched.replay({event(EventKind::AttemptStarted, 7, 1, 1)}, 0),
        SupervisorJournalError)
        << "out-of-range shard";
  }
  {
    LeaseScheduler sched(2, 2, fastPolicy(), cfg);
    EXPECT_THROW(sched.replay({event(EventKind::ShardDone, 0, 1)}, 0),
                 SupervisorJournalError)
        << "done without a started attempt";
  }
  {
    LeaseScheduler sched(2, 2, fastPolicy(), cfg);
    EXPECT_THROW(
        sched.replay({event(EventKind::AttemptFailed, 0, 1, 0, "x")}, 0),
        SupervisorJournalError)
        << "failure without a started attempt";
  }
  {
    LeaseScheduler sched(2, 2, fastPolicy(), cfg);
    EXPECT_THROW(
        sched.replay({event(EventKind::AttemptStarted, 0, 1, 1),
                      event(EventKind::AttemptStarted, 0, 2, 2)},
                     0),
        SupervisorJournalError)
        << "double lease";
  }
  {
    LeaseScheduler sched(2, 2, fastPolicy(), cfg);
    EXPECT_THROW(
        sched.replay({event(EventKind::AttemptStarted, 0, 1, 1),
                      event(EventKind::AttemptFailed, 0, 1, 0, "x"),
                      event(EventKind::ShardPoisoned, 0, 1, 0, "x")},
                     0),
        SupervisorJournalError)
        << "poisoned before attempts were exhausted";
  }
}

}  // namespace
}  // namespace nodebench::supervise
