/// \file trace_test.cpp
/// \brief Unit tests of the trace layer: scope install/restore semantics,
/// deterministic ordering, histogram arithmetic, and both sinks (Chrome
/// JSON validated with the repo's JSON parser, metrics summary by
/// content).

#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"
#include "faults/json_value.hpp"
#include "trace/sink.hpp"

namespace nodebench::trace {
namespace {

Event makeEvent(Category c, int actor, double beginUs, double durUs) {
  Event e;
  e.category = c;
  e.actorKind = ActorKind::Rank;
  e.actor = actor;
  e.begin = Duration::microseconds(beginUs);
  e.duration = Duration::microseconds(durUs);
  return e;
}

TEST(Trace, DisabledIsInert) {
  EXPECT_EQ(Session::active(), nullptr);
  EXPECT_EQ(current(), nullptr);
  const Scope scope("no-session");
  EXPECT_EQ(scope.buffer(), nullptr);
  EXPECT_EQ(current(), nullptr);
}

TEST(Trace, ScopeInstallsAndRestoresCurrent) {
  Session session;
  EXPECT_EQ(Session::active(), &session);
  EXPECT_EQ(current(), nullptr);  // session alone records nothing
  {
    const Scope outer("outer");
    ASSERT_NE(outer.buffer(), nullptr);
    EXPECT_EQ(current(), outer.buffer());
    {
      const Scope inner("inner");
      EXPECT_EQ(current(), inner.buffer());  // innermost wins
    }
    EXPECT_EQ(current(), outer.buffer());
  }
  EXPECT_EQ(current(), nullptr);
}

TEST(Trace, SecondSessionIsRejected) {
  Session session;
  EXPECT_THROW(Session{}, PreconditionError);
  // The failed construction must not have unhooked the live session.
  EXPECT_EQ(Session::active(), &session);
}

TEST(Trace, OrderedSortsByLabelThenOccurrence) {
  Session session;
  {
    const Scope b("beta");
    b.buffer()->count("n");
  }
  {
    const Scope a("alpha");
  }
  {
    const Scope b2("beta");  // sequential repeat of the same label
  }
  const auto ordered = session.ordered();
  ASSERT_EQ(ordered.size(), 3u);
  EXPECT_EQ(ordered[0]->label(), "alpha");
  EXPECT_EQ(ordered[1]->label(), "beta");
  EXPECT_EQ(ordered[1]->occurrence(), 0);
  EXPECT_EQ(ordered[1]->counters().at("n"), 1u);
  EXPECT_EQ(ordered[2]->label(), "beta");
  EXPECT_EQ(ordered[2]->occurrence(), 1);
}

TEST(Trace, CountersAccumulate) {
  Session session;
  const Scope scope("s");
  scope.buffer()->count("a");
  scope.buffer()->count("a", 41);
  scope.buffer()->count("b", 7);
  EXPECT_EQ(scope.buffer()->counters().at("a"), 42u);
  EXPECT_EQ(scope.buffer()->counters().at("b"), 7u);
}

TEST(Trace, HistogramExactMoments) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  h.add(1.0);
  h.add(2.0);
  h.add(4.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_NEAR(h.mean(), 7.0 / 3.0, 1e-12);
}

TEST(Trace, HistogramQuantilesAreBucketApproximations) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.add(1.5);  // bucket (1, 2]
  }
  // The bucket upper edge bounds the sample from above within 2x.
  EXPECT_GE(h.quantile(0.5), 1.5);
  EXPECT_LE(h.quantile(0.5), 2.0);
  // The extreme quantile is clamped to the observed max.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.5);
  h.add(100.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_LE(h.quantile(0.25), 2.0);
}

TEST(Trace, ChromeJsonIsParseableAndComplete) {
  Session session;
  {
    const Scope scope("Eagle/\"quoted\\label\"");
    scope.buffer()->event(makeEvent(Category::Send, 0, 1.0, 0.5));
    scope.buffer()->event(makeEvent(Category::Recv, 1, 1.5, 0.25));
  }
  const std::string doc = chromeJson(session);
  const auto parsed = faults::JsonValue::parse(doc);  // throws if invalid
  const auto* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // 2 metadata records (process_name + one thread_name per actor... the
  // two events sit on distinct rank lanes: 1 process + 2 threads) + 2
  // event slices.
  ASSERT_EQ(events->asArray().size(), 5u);
  const auto& slice = events->asArray()[3];
  EXPECT_EQ(slice.stringOr("ph", ""), "X");
  EXPECT_EQ(slice.stringOr("name", ""), "send");
  EXPECT_EQ(slice.stringOr("cat", ""), "rank");
  EXPECT_DOUBLE_EQ(slice.numberOr("ts", 0.0), 1.0);
  EXPECT_DOUBLE_EQ(slice.numberOr("dur", 0.0), 0.5);
  // The escaped label round-trips through the parser.
  const auto& meta = events->asArray()[0];
  EXPECT_EQ(meta.stringOr("name", ""), "process_name");
  ASSERT_NE(meta.find("args"), nullptr);
  EXPECT_EQ(meta.find("args")->stringOr("name", ""),
            "Eagle/\"quoted\\label\"");
}

TEST(Trace, ChromeJsonEmptySessionIsValid) {
  Session session;
  const std::string doc = chromeJson(session);
  const auto parsed = faults::JsonValue::parse(doc);
  ASSERT_NE(parsed.find("traceEvents"), nullptr);
  EXPECT_TRUE(parsed.find("traceEvents")->asArray().empty());
}

TEST(Trace, MetricsSummaryAggregates) {
  Session session;
  {
    const Scope scope("Eagle/cell");
    scope.buffer()->event(makeEvent(Category::Send, 0, 1.0, 2.0));
    scope.buffer()->event(makeEvent(Category::Send, 1, 3.0, 4.0));
    scope.buffer()->count("mpisim.retransmits", 3);
    scope.buffer()->sample("osu.latency_us", 1.25);
  }
  const std::string summary = metricsSummary(session);
  EXPECT_NE(summary.find("Eagle/cell"), std::string::npos) << summary;
  EXPECT_NE(summary.find("send"), std::string::npos);
  EXPECT_NE(summary.find("6.000"), std::string::npos)
      << "busy time should sum both send durations:\n" << summary;
  EXPECT_NE(summary.find("mpisim.retransmits"), std::string::npos);
  EXPECT_NE(summary.find("osu.latency_us"), std::string::npos);
}

TEST(Trace, MetricsSummaryEmptySession) {
  Session session;
  EXPECT_NE(metricsSummary(session).find("(nothing recorded)"),
            std::string::npos);
}

}  // namespace
}  // namespace nodebench::trace
