/// \file trace_invariants_test.cpp
/// \brief Property-based invariants of recorded traces, checked across a
/// grid of machines, fault plans and seeds (deterministic draws — the
/// "random" inputs are seeded streams):
///  1. per rank lane, event begins are monotone non-decreasing in
///     emission order (each op is stamped at its entry time);
///  2. loss/retransmit pairing: every Retransmit immediately follows its
///     Loss, starts exactly at the loss's backoff end, and the totals
///     match the transport's retransmit counter;
///  3. summed link-occupancy per channel never exceeds the wall virtual
///     time of the run (per-channel intervals are disjoint).

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/units.hpp"
#include "faults/fault_plan.hpp"
#include "machines/registry.hpp"
#include "mpisim/transport.hpp"
#include "netsim/network.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "trace/trace.hpp"

namespace nodebench {
namespace {

using trace::ActorKind;
using trace::Category;
using trace::Event;
using trace::TraceBuffer;

void checkRankMonotonicity(const TraceBuffer& buf) {
  std::map<int, Duration> lastBegin;
  for (const Event& e : buf.events()) {
    if (e.actorKind != ActorKind::Rank) {
      continue;
    }
    const auto it = lastBegin.find(e.actor);
    if (it != lastBegin.end()) {
      EXPECT_GE(e.begin.ns(), it->second.ns())
          << "rank " << e.actor << " event " << trace::categoryName(e.category)
          << " goes backwards in scope " << buf.label();
    }
    lastBegin[e.actor] = e.begin;
  }
}

void checkLossRetransmitPairing(const TraceBuffer& buf) {
  std::size_t losses = 0;
  std::size_t retransmits = 0;
  const std::vector<Event>& events = buf.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (e.category == Category::Loss) {
      ++losses;
    } else if (e.category == Category::Retransmit) {
      ++retransmits;
      // The resend is recorded right after its loss, on the same node
      // pair, exactly at the end of the loss's backoff window.
      ASSERT_GT(i, 0u);
      const Event& loss = events[i - 1];
      ASSERT_EQ(loss.category, Category::Loss) << "in scope " << buf.label();
      EXPECT_EQ(loss.actor, e.actor);
      EXPECT_EQ(loss.peer, e.peer);
      EXPECT_DOUBLE_EQ((loss.begin + loss.duration).ns(), e.begin.ns());
      EXPECT_EQ(e.duration.ns(), 0.0);  // the resend itself is an instant
    }
    // Prefix property: a resend can never precede its loss.
    EXPECT_LE(retransmits, losses);
  }
  EXPECT_EQ(losses, retransmits);
  const auto& counters = buf.counters();
  const auto it = counters.find("mpisim.retransmits");
  const std::uint64_t counted = it == counters.end() ? 0 : it->second;
  EXPECT_EQ(counted, retransmits)
      << "counter and event stream disagree in scope " << buf.label();
}

void checkLinkOccupancyBound(const TraceBuffer& buf) {
  Duration wall = Duration::zero();
  for (const Event& e : buf.events()) {
    wall = max(wall, e.begin + e.duration);
  }
  std::map<std::pair<ActorKind, int>, Duration> busy;
  for (const Event& e : buf.events()) {
    if (e.category == Category::LinkOccupancy) {
      auto& total = busy[{e.actorKind, e.actor}];
      total = total + e.duration;
    }
  }
  for (const auto& [channel, total] : busy) {
    // Disjoint per-channel intervals can never sum past the wall clock
    // (tiny epsilon for double accumulation).
    EXPECT_LE(total.ns(), wall.ns() * (1.0 + 1e-9) + 1.0)
        << "channel (" << trace::actorKindName(channel.first) << " "
        << channel.second << ") in scope " << buf.label();
  }
}

void checkAll(const TraceBuffer& buf) {
  checkRankMonotonicity(buf);
  checkLossRetransmitPairing(buf);
  checkLinkOccupancyBound(buf);
}

std::string lossPlanJson(double rate, std::uint64_t seed) {
  return "{\"seed\": " + std::to_string(seed) +
         ", \"faults\": [{\"type\": \"packet-loss\", \"rate\": " +
         std::to_string(rate) + "}]}";
}

TEST(TraceInvariants, InterNodeUnderFaultPlans) {
  for (const std::string machine : {"Eagle", "Frontier", "Summit"}) {
    const machines::Machine& m = machines::byName(machine);
    for (const double rate : {0.0, 0.01, 0.05}) {
      for (const std::uint64_t seed : {1ull, 7ull}) {
        trace::Session session;
        const trace::Scope scope(machine + "/internode");
        netsim::InterNodeConfig cfg;
        cfg.iterations = 60;
        cfg.binaryRuns = 5;
        cfg.watchdog = Duration::seconds(10.0);
        mpisim::InterNodeParams network = netsim::networkFor(m);
        if (rate > 0.0) {
          const faults::FaultPlan plan =
              faults::FaultPlan::fromJson(lossPlanJson(rate, seed));
          plan.applyToNetwork(machine, network);
        }
        cfg.network = network;
        const auto result = netsim::measureInterNode(m, cfg);
        ASSERT_NE(scope.buffer(), nullptr);
        checkAll(*scope.buffer());
        if (rate > 0.0) {
          // Loss recovery must actually be visible in the trace for the
          // invariants above to mean anything.
          EXPECT_EQ(scope.buffer()->counters().at("mpisim.retransmits"),
                    result.retransmits);
        } else {
          EXPECT_EQ(result.retransmits, 0u);
        }
      }
    }
  }
}

TEST(TraceInvariants, IntraNodePingPong) {
  // Intra-node traffic exercises the Link-kind channel lanes (per
  // directed rank pair) instead of the shared NIC lanes.
  for (const std::string machine : {"Eagle", "Perlmutter"}) {
    const machines::Machine& m = machines::byName(machine);
    trace::Session session;
    const trace::Scope scope(machine + "/pingpong");
    const auto [a, b] = osu::onSocketPair(m);
    osu::LatencyConfig cfg;
    cfg.binaryRuns = 10;
    const osu::LatencyBenchmark bench(m, a, b,
                                      mpisim::BufferSpace::Kind::Host);
    (void)bench.measure(cfg);
    ASSERT_NE(scope.buffer(), nullptr);
    const TraceBuffer& buf = *scope.buffer();
    checkAll(buf);
    bool sawRank = false;
    bool sawLink = false;
    for (const Event& e : buf.events()) {
      sawRank = sawRank || e.actorKind == ActorKind::Rank;
      sawLink = sawLink ||
                (e.actorKind == ActorKind::Link &&
                 e.category == Category::LinkOccupancy);
    }
    EXPECT_TRUE(sawRank);
    EXPECT_TRUE(sawLink);
    // Latency samples land in the per-iteration histogram.
    EXPECT_EQ(buf.histograms().at("osu.latency_us").count(), 10u);
  }
}

TEST(TraceInvariants, GpuAndCollectiveLanes) {
  // A device-buffer inter-node run covers the device-MPI path and the
  // same invariants must hold with GPU-resident ranks.
  const machines::Machine& m = machines::byName("Frontier");
  trace::Session session;
  const trace::Scope scope("Frontier/internode-device");
  netsim::InterNodeConfig cfg;
  cfg.iterations = 40;
  cfg.binaryRuns = 3;
  cfg.deviceBuffers = true;
  cfg.watchdog = Duration::seconds(10.0);
  mpisim::InterNodeParams network = netsim::networkFor(m);
  const faults::FaultPlan plan =
      faults::FaultPlan::fromJson(lossPlanJson(0.03, 11));
  plan.applyToNetwork("Frontier", network);
  cfg.network = network;
  (void)netsim::measureInterNode(m, cfg);
  ASSERT_NE(scope.buffer(), nullptr);
  checkAll(*scope.buffer());
}

}  // namespace
}  // namespace nodebench
