/// \file trace_determinism_test.cpp
/// \brief Golden-trace determinism (extends the tables determinism suite
/// to the trace layer): the exported Chrome JSON and metrics summary are
/// byte-identical at --jobs 1 and --jobs 8, and across two consecutive
/// runs at the same worker count. Scope closure order *does* vary with
/// the worker count — the (label, occurrence) export ordering is what
/// makes the bytes stable.

#include <gtest/gtest.h>

#include <string>

#include "faults/json_value.hpp"
#include "report/tables.hpp"
#include "trace/sink.hpp"
#include "trace/trace.hpp"

namespace nodebench {
namespace {

struct Export {
  std::string json;
  std::string metrics;
};

/// One traced Table 4 run (every CPU machine x every cell) at the given
/// worker count, exported through both sinks.
Export tracedTable4(int jobs) {
  trace::Session session;
  report::TableOptions opt;
  opt.binaryRuns = 5;
  opt.jobs = jobs;
  (void)report::computeTable4(opt);
  return Export{trace::chromeJson(session), trace::metricsSummary(session)};
}

TEST(TraceDeterminism, ChromeJsonIdenticalAcrossWorkerCounts) {
  const Export seq = tracedTable4(1);
  const Export par = tracedTable4(8);
  EXPECT_EQ(seq.json, par.json);
  EXPECT_EQ(seq.metrics, par.metrics);
  EXPECT_GT(seq.json.size(), 1000u);  // a real trace, not an empty shell
}

TEST(TraceDeterminism, ConsecutiveRunsAreIdentical) {
  const Export first = tracedTable4(8);
  const Export second = tracedTable4(8);
  EXPECT_EQ(first.json, second.json);
  EXPECT_EQ(first.metrics, second.metrics);
}

TEST(TraceDeterminism, ExportedJsonIsValid) {
  const Export e = tracedTable4(4);
  const auto parsed = faults::JsonValue::parse(e.json);  // throws if invalid
  const auto* events = parsed.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->asArray().empty());
  // One process per (machine, cell) scope: every entry carries a pid.
  for (const auto& entry : events->asArray()) {
    EXPECT_NE(entry.find("pid"), nullptr);
    const std::string ph = entry.stringOr("ph", "");
    EXPECT_TRUE(ph == "M" || ph == "X") << ph;
  }
}

}  // namespace
}  // namespace nodebench
