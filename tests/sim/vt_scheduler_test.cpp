#include "sim/vt_scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace nodebench::sim {
namespace {

using namespace nodebench::literals;

TEST(VtScheduler, SingleProcessRunsToCompletion) {
  VirtualTimeScheduler sched;
  Duration finish = Duration::zero();
  sched.run({[&](VirtualProcess& p) {
    p.advance(5_us);
    finish = p.now();
  }});
  EXPECT_EQ(finish, 5_us);
}

TEST(VtScheduler, SmallestClockRunsFirst) {
  // Process 0 takes big steps, process 1 small ones; the interleaving
  // must be by virtual time, not by thread scheduling.
  VirtualTimeScheduler sched;
  std::vector<std::pair<int, double>> trace;
  const auto proc = [&trace](int id, Duration step, int steps) {
    return [&trace, id, step, steps](VirtualProcess& p) {
      for (int i = 0; i < steps; ++i) {
        p.advance(step);
        trace.emplace_back(id, p.now().us());
      }
    };
  };
  sched.run({proc(0, 10_us, 3), proc(1, 4_us, 7)});
  // The trace must be sorted by virtual time (ties allowed).
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].second, trace[i].second)
        << "entry " << i << " out of virtual-time order";
  }
  EXPECT_EQ(trace.size(), 10u);
}

TEST(VtScheduler, DeterministicAcrossRuns) {
  const auto runOnce = [](std::vector<int>& order) {
    VirtualTimeScheduler sched;
    std::vector<VirtualTimeScheduler::ProcessFn> fns;
    for (int id = 0; id < 4; ++id) {
      fns.push_back([&order, id](VirtualProcess& p) {
        for (int i = 0; i < 5; ++i) {
          p.advance(Duration::microseconds(1.0 + id * 0.3));
          order.push_back(id);
        }
      });
    }
    sched.run(fns);
    return sched.switchCount();
  };
  std::vector<int> a;
  std::vector<int> b;
  const auto switchesA = runOnce(a);
  const auto switchesB = runOnce(b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(switchesA, switchesB);
}

TEST(VtScheduler, BlockUntilWokenByPeer) {
  VirtualTimeScheduler sched;
  bool flag = false;
  Duration consumerDone = Duration::zero();
  sched.run({
      [&](VirtualProcess& p) {  // consumer (rank 0)
        p.blockUntil([&] { return flag; });
        consumerDone = p.now();
      },
      [&](VirtualProcess& p) {  // producer (rank 1)
        p.advance(3_us);
        flag = true;
        p.wake(0);
      },
  });
  EXPECT_TRUE(flag);
  // The consumer never advanced its own clock; blocking does not move
  // virtual time by itself.
  EXPECT_EQ(consumerDone, Duration::zero());
}

TEST(VtScheduler, AdvanceToIsMonotone) {
  VirtualTimeScheduler sched;
  sched.run({[](VirtualProcess& p) {
    p.advanceTo(5_us);
    EXPECT_EQ(p.now(), 5_us);
    p.advanceTo(3_us);  // must not travel backwards
    EXPECT_EQ(p.now(), 5_us);
  }});
}

TEST(VtScheduler, DeadlockIsDetected) {
  VirtualTimeScheduler sched;
  const auto blocked = [](VirtualProcess& p) {
    p.blockUntil([] { return false; });
  };
  EXPECT_THROW(sched.run({blocked, blocked}), DeadlockError);
}

TEST(VtScheduler, DeadlockAfterPeerFinishes) {
  VirtualTimeScheduler sched;
  EXPECT_THROW(sched.run({
                   [](VirtualProcess& p) {
                     p.blockUntil([] { return false; });  // waits forever
                   },
                   [](VirtualProcess& p) { p.advance(1_us); },  // exits
               }),
               DeadlockError);
}

TEST(VtScheduler, ExceptionInProcessPropagates) {
  VirtualTimeScheduler sched;
  EXPECT_THROW(sched.run({
                   [](VirtualProcess&) { throw Error("boom"); },
                   [](VirtualProcess& p) {
                     // Would block forever; must be aborted, not hung.
                     p.blockUntil([] { return false; });
                   },
               }),
               Error);
}

TEST(VtScheduler, NegativeAdvanceRejected) {
  VirtualTimeScheduler sched;
  EXPECT_THROW(sched.run({[](VirtualProcess& p) {
                 p.advance(Duration::nanoseconds(-1.0));
               }}),
               PreconditionError);
}

TEST(VtScheduler, RequiresAtLeastOneProcess) {
  VirtualTimeScheduler sched;
  EXPECT_THROW(sched.run({}), PreconditionError);
}

TEST(VtScheduler, ManyProcessesAllComplete) {
  VirtualTimeScheduler sched;
  constexpr int kProcs = 16;
  std::atomic<int> completed{0};
  std::vector<VirtualTimeScheduler::ProcessFn> fns;
  for (int i = 0; i < kProcs; ++i) {
    fns.push_back([&completed, i](VirtualProcess& p) {
      for (int k = 0; k < 10; ++k) {
        p.advance(Duration::nanoseconds(10.0 * (i + 1)));
      }
      completed.fetch_add(1);
    });
  }
  sched.run(fns);
  EXPECT_EQ(completed.load(), kProcs);
}

TEST(VtScheduler, ReusableAfterRun) {
  VirtualTimeScheduler sched;
  for (int round = 0; round < 3; ++round) {
    Duration t = Duration::zero();
    sched.run({[&](VirtualProcess& p) {
      p.advance(1_us);
      t = p.now();
    }});
    EXPECT_EQ(t, 1_us);  // clocks reset each run
  }
}

TEST(VtScheduler, WatchdogFiresWhenVirtualTimeExceedsDeadline) {
  VirtualTimeScheduler sched;
  sched.setWatchdog(10_us);
  EXPECT_THROW(sched.run({[](VirtualProcess& p) {
                 for (int i = 0; i < 100; ++i) {
                   p.advance(1_us);  // crosses 10 us on the 11th step
                 }
               }}),
               TimeoutError);
}

TEST(VtScheduler, WatchdogDoesNotFireUnderDeadline) {
  VirtualTimeScheduler sched;
  sched.setWatchdog(10_us);
  Duration finish = Duration::zero();
  sched.run({[&](VirtualProcess& p) {
    p.advance(9_us);
    finish = p.now();
  }});
  EXPECT_EQ(finish, 9_us);
}

TEST(VtScheduler, WatchdogAbortsBlockedPeersToo) {
  // Rank 0 blocks on a condition only rank 1 can set; rank 1 runs past
  // the deadline first. The watchdog must abort the whole run (including
  // the blocked rank) instead of hanging.
  VirtualTimeScheduler sched;
  sched.setWatchdog(5_us);
  bool flag = false;
  EXPECT_THROW(sched.run({
                   [&](VirtualProcess& p) {
                     p.blockUntil([&] { return flag; });
                   },
                   [](VirtualProcess& p) {
                     for (int i = 0; i < 100; ++i) {
                       p.advance(1_us);
                     }
                   },
               }),
               TimeoutError);
}

TEST(VtScheduler, WatchdogMessageNamesRankAndDeadline) {
  VirtualTimeScheduler sched;
  sched.setWatchdog(2_us);
  try {
    sched.run({[](VirtualProcess& p) { p.advance(50_us); }});
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  }
}

TEST(VtScheduler, WatchdogPersistsAcrossRuns) {
  VirtualTimeScheduler sched;
  sched.setWatchdog(3_us);
  EXPECT_EQ(sched.watchdog(), 3_us);
  EXPECT_THROW(sched.run({[](VirtualProcess& p) { p.advance(4_us); }}),
               TimeoutError);
  // Still armed in the next run; within budget it stays silent.
  Duration finish = Duration::zero();
  sched.run({[&](VirtualProcess& p) {
    p.advance(2_us);
    finish = p.now();
  }});
  EXPECT_EQ(finish, 2_us);
}

TEST(VtScheduler, WatchdogRejectsNonPositiveDeadline) {
  VirtualTimeScheduler sched;
  EXPECT_THROW(sched.setWatchdog(Duration::zero()), PreconditionError);
}

TEST(VtScheduler, DeadlockErrorCarriesPerRankState) {
  VirtualTimeScheduler sched;
  try {
    sched.run({
        [](VirtualProcess& p) {
          p.advance(2_us);
          p.blockUntil([] { return false; });
        },
        [](VirtualProcess& p) { p.advance(1_us); },
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    ASSERT_EQ(e.ranks().size(), 2u);
    EXPECT_EQ(e.ranks()[0].rank, 0);
    EXPECT_EQ(e.ranks()[0].state, "blocked");
    EXPECT_EQ(e.ranks()[0].clock, 2_us);
    EXPECT_EQ(e.ranks()[1].state, "finished");
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace nodebench::sim
