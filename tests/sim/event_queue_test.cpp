#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nodebench::sim {
namespace {

using namespace nodebench::literals;

TEST(EventQueue, StartsAtZeroEmpty) {
  EventQueue q;
  EXPECT_EQ(q.now(), Duration::zero());
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_FALSE(q.step());
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.scheduleAt(3_us, [&] { order.push_back(3); });
  q.scheduleAt(1_us, [&] { order.push_back(1); });
  q.scheduleAt(2_us, [&] { order.push_back(2); });
  q.runAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 3_us);
}

TEST(EventQueue, SimultaneousEventsRunInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.scheduleAt(1_us, [&order, i] { order.push_back(i); });
  }
  q.runAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ClockAdvancesToEventTime) {
  EventQueue q;
  Duration seen = Duration::zero();
  q.scheduleAt(7_us, [&] { seen = q.now(); });
  q.runAll();
  EXPECT_EQ(seen, 7_us);
}

TEST(EventQueue, RejectsSchedulingInThePast) {
  EventQueue q;
  q.scheduleAt(5_us, [] {});
  q.runAll();
  EXPECT_THROW(q.scheduleAt(1_us, [] {}), PreconditionError);
  EXPECT_THROW(q.scheduleAfter(Duration::nanoseconds(-1.0), [] {}),
               PreconditionError);
  EXPECT_THROW(q.scheduleAt(10_us, nullptr), PreconditionError);
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue q;
  q.scheduleAt(2_us, [] {});
  q.runAll();
  Duration seen = Duration::zero();
  q.scheduleAfter(3_us, [&] { seen = q.now(); });
  q.runAll();
  EXPECT_EQ(seen, 5_us);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  std::vector<double> times;
  q.scheduleAt(1_us, [&] {
    times.push_back(q.now().us());
    q.scheduleAfter(1_us, [&] { times.push_back(q.now().us()); });
  });
  q.runAll();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.scheduleAt(1_us, [&] { ++fired; });
  q.scheduleAt(5_us, [&] { ++fired; });
  q.runUntil(3_us);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 3_us);
  EXPECT_EQ(q.pending(), 1u);
  q.runAll();
  EXPECT_EQ(fired, 2);
  EXPECT_THROW(q.runUntil(1_us), PreconditionError);
}

TEST(EventQueue, EventAtExactDeadlineRuns) {
  EventQueue q;
  int fired = 0;
  q.scheduleAt(3_us, [&] { ++fired; });
  q.runUntil(3_us);
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace nodebench::sim
