#include "commscope/commscope.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"
#include "report/paper_reference.hpp"

namespace nodebench::commscope {
namespace {

using machines::byName;
using topo::LinkClass;

TEST(CommScope, RejectsCpuOnlyMachines) {
  EXPECT_THROW(CommScope scope(byName("Trinity")), PreconditionError);
}

TEST(CommScope, TruthLaunchEqualsMachineParameter) {
  for (const char* name : {"Frontier", "Summit", "Polaris"}) {
    const auto& m = byName(name);
    CommScope scope(m);
    EXPECT_NEAR(scope.truthKernelLaunch().us(), m.device->kernelLaunch.us(),
                1e-12)
        << name;
  }
}

TEST(CommScope, TruthWaitEqualsMachineParameter) {
  const auto& m = byName("Sierra");
  CommScope scope(m);
  EXPECT_NEAR(scope.truthSyncWait().us(), m.device->syncWait.us(), 1e-12);
}

TEST(CommScope, TruthH2dHitsCalibrationTargets) {
  // 128 B latency and 1 GiB bandwidth must land on the paper's Table 6
  // cells by construction.
  const auto& ref = report::paper::table6Row("Perlmutter");
  CommScope scope(byName("Perlmutter"));
  EXPECT_NEAR(scope.truthHostDeviceTime(ByteCount::bytes(128)).us(),
              ref.hostDeviceLatencyUs.mean, 1e-6);
  const Duration t = scope.truthHostDeviceTime(ByteCount::gib(1));
  EXPECT_NEAR(ByteCount::gib(1).asDouble() / t.ns(),
              ref.hostDeviceBandwidthGBps.mean, 1e-6);
}

TEST(CommScope, TruthD2dPerClassHitsCalibrationTargets) {
  const auto& ref = report::paper::table6Row("RZVernal");
  CommScope scope(byName("RZVernal"));
  for (int c = 0; c < 4; ++c) {
    ASSERT_TRUE(ref.d2dUs[c].has_value());
    EXPECT_NEAR(
        scope.truthD2dTime(static_cast<LinkClass>(c), ByteCount::bytes(128))
            .us(),
        ref.d2dUs[c]->mean, 1e-6)
        << "class " << c;
  }
}

TEST(CommScope, MissingClassThrows) {
  CommScope scope(byName("Perlmutter"));
  EXPECT_THROW(
      (void)scope.truthD2dTime(LinkClass::B, ByteCount::bytes(128)),
      PreconditionError);
}

TEST(CommScope, AggregatedSummariesHaveRequestedRuns) {
  CommScope scope(byName("Tioga"));
  Config cfg;
  cfg.binaryRuns = 25;
  const Summary launch = scope.kernelLaunchUs(cfg);
  EXPECT_EQ(launch.count, 25u);
  EXPECT_NEAR(launch.mean, 2.15, 0.05);
  EXPECT_GT(launch.stddev, 0.0);
}

TEST(CommScope, MeasureAllCoversPresentClassesOnly) {
  {
    CommScope scope(byName("Polaris"));
    Config cfg;
    cfg.binaryRuns = 10;
    const MachineResults r = scope.measureAll(cfg);
    EXPECT_TRUE(r.d2dLatencyUs[0].has_value());
    EXPECT_FALSE(r.d2dLatencyUs[1].has_value());
    EXPECT_FALSE(r.d2dLatencyUs[2].has_value());
    EXPECT_FALSE(r.d2dLatencyUs[3].has_value());
  }
  {
    CommScope scope(byName("Summit"));
    Config cfg;
    cfg.binaryRuns = 10;
    const MachineResults r = scope.measureAll(cfg);
    EXPECT_TRUE(r.d2dLatencyUs[0].has_value());
    EXPECT_TRUE(r.d2dLatencyUs[1].has_value());
    EXPECT_FALSE(r.d2dLatencyUs[2].has_value());
  }
}

TEST(CommScope, D2dBandwidthReflectsLinkClassCapacity) {
  // Ablation support: quad-link class A moves 1 GiB faster than
  // single-link class C on MI250X machines.
  CommScope scope(byName("Frontier"));
  Config cfg;
  cfg.binaryRuns = 5;
  const double bwA = scope.d2dBandwidthGBps(LinkClass::A, cfg).mean;
  const double bwC = scope.d2dBandwidthGBps(LinkClass::C, cfg).mean;
  EXPECT_GT(bwA, 2.0 * bwC);
}

TEST(CommScope, DuplexDoublesFullDuplexBandwidth) {
  // Both directions on their own streams: independent engines give ~2x
  // the unidirectional aggregate on every studied fabric.
  CommScope scope(byName("Perlmutter"));
  Config cfg;
  cfg.binaryRuns = 5;
  const double uni = scope.d2dBandwidthGBps(LinkClass::A, cfg).mean;
  const double duplex = scope.d2dDuplexBandwidthGBps(LinkClass::A, cfg).mean;
  EXPECT_NEAR(duplex / uni, 2.0, 0.1);
}

TEST(CommScope, DuplexTruthSymmetricInDirection) {
  CommScope scope(byName("Frontier"));
  const Duration t =
      scope.truthD2dDuplexTime(LinkClass::B, ByteCount::mib(64));
  EXPECT_GT(t, Duration::zero());
  // Concurrent: far less than two sequential transfers.
  const Duration seq = scope.truthD2dTime(LinkClass::B, ByteCount::mib(64));
  EXPECT_LT(t.ns(), 1.5 * seq.ns());
}

TEST(CommScope, DeterministicAggregation) {
  CommScope scope(byName("Lassen"));
  Config cfg;
  cfg.binaryRuns = 20;
  EXPECT_DOUBLE_EQ(scope.kernelLaunchUs(cfg).mean,
                   scope.kernelLaunchUs(cfg).mean);
}

TEST(CommScope, ConfigValidation) {
  CommScope scope(byName("Lassen"));
  Config cfg;
  cfg.binaryRuns = 0;
  EXPECT_THROW((void)scope.kernelLaunchUs(cfg), PreconditionError);
}

}  // namespace
}  // namespace nodebench::commscope
