/// \file store_test.cpp
/// \brief Results-store unit tests: encode/decode round-trips, the strict
/// (all-or-nothing) corruption policy, the create/append/attach
/// lifecycle, and the resume fingerprint check.

#include "stats/store.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace nodebench::stats {
namespace {

using Bytes = std::vector<std::uint8_t>;

campaign::CampaignConfig testConfig() {
  campaign::CampaignConfig cfg;
  cfg.registryHash = 0x1122334455667788ull;
  cfg.faultPlanHash = 0xdeadbeefcafef00dull;
  cfg.seed = 42;
  cfg.runs = 100;
  cfg.jobs = 8;
  cfg.cellRetries = 2;
  cfg.cpuArrayBytes = 128ull << 20;
  cfg.gpuArrayBytes = 1ull << 30;
  cfg.mpiMessageSize = 8;
  return cfg;
}

SampleRecord testRecord(const std::string& machine = "Frontier",
                        const std::string& cell = "device bandwidth",
                        const std::string& quantity = "bandwidth") {
  SampleRecord rec;
  rec.machine = machine;
  rec.cell = cell;
  rec.quantity = quantity;
  rec.unit = "GB/s";
  rec.better = Better::Higher;
  rec.samples = {1336.2, 1337.5, 1335.9, 1336.8};
  Summary s;
  s.count = rec.samples.size();
  s.mean = 1336.6;
  s.stddev = 0.7;
  s.min = 1335.9;
  s.max = 1337.5;
  rec.summary = s;
  return rec;
}

Bytes encodeTestStore() {
  Bytes bytes = ResultStore::encodeHeader(testConfig());
  const Bytes frame = ResultStore::encodeRecord(testRecord());
  bytes.insert(bytes.end(), frame.begin(), frame.end());
  return bytes;
}

std::string tempPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(StoreCodec, RoundTripsConfigAndRecord) {
  const StoreContents decoded = ResultStore::decode(encodeTestStore());
  const campaign::CampaignConfig cfg = testConfig();
  EXPECT_EQ(decoded.config.registryHash, cfg.registryHash);
  EXPECT_EQ(decoded.config.faultPlanHash, cfg.faultPlanHash);
  EXPECT_EQ(decoded.config.seed, cfg.seed);
  EXPECT_EQ(decoded.config.runs, cfg.runs);
  EXPECT_EQ(decoded.config.jobs, cfg.jobs);
  ASSERT_EQ(decoded.records.size(), 1u);
  const SampleRecord& rec = decoded.records[0];
  const SampleRecord expected = testRecord();
  EXPECT_EQ(rec.machine, expected.machine);
  EXPECT_EQ(rec.cell, expected.cell);
  EXPECT_EQ(rec.quantity, expected.quantity);
  EXPECT_EQ(rec.unit, expected.unit);
  EXPECT_EQ(rec.better, expected.better);
  EXPECT_EQ(rec.summary.count, expected.summary.count);
  EXPECT_EQ(rec.summary.mean, expected.summary.mean);
  EXPECT_EQ(rec.samples, expected.samples);  // bit-exact doubles
}

TEST(StoreCodec, EncodeRejectsSampleCountMismatch) {
  SampleRecord rec = testRecord();
  rec.summary.count = rec.samples.size() + 1;
  EXPECT_THROW((void)ResultStore::encodeRecord(rec), Error);
}

TEST(StoreCodec, RejectsBadMagic) {
  Bytes bytes = encodeTestStore();
  bytes[0] ^= 0xff;
  EXPECT_THROW((void)ResultStore::decode(bytes), StoreCorruptError);
}

TEST(StoreCodec, RejectsUnsupportedVersion) {
  Bytes bytes = encodeTestStore();
  bytes[4] = 0xfe;  // u32 LE schema version lives right after the magic
  EXPECT_THROW((void)ResultStore::decode(bytes), StoreCorruptError);
}

TEST(StoreCodec, RejectsEveryTruncation) {
  // Unlike the journal's torn-tail tolerance, a store must reject ANY
  // truncated suffix — it is a finished artifact, not a crash log. The
  // single exception is a cut exactly at the header/record boundary:
  // a record-less store is legal (it is what create() writes).
  const Bytes bytes = encodeTestStore();
  const std::size_t headerSize =
      ResultStore::encodeHeader(testConfig()).size();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    if (len == headerSize) {
      EXPECT_TRUE(
          ResultStore::decode(std::span(bytes.data(), len)).records.empty());
      continue;
    }
    EXPECT_THROW(
        (void)ResultStore::decode(std::span(bytes.data(), len)),
        StoreCorruptError)
        << "truncation to " << len << " bytes was accepted";
  }
}

TEST(StoreCodec, RejectsEverySingleBitFlipInRecordFrame) {
  const Bytes clean = encodeTestStore();
  const std::size_t headerSize =
      ResultStore::encodeHeader(testConfig()).size();
  for (std::size_t i = headerSize; i < clean.size(); ++i) {
    Bytes bytes = clean;
    bytes[i] ^= 0x01;
    // Either the CRC catches it, or (for flips inside the length field)
    // the frame geometry does. Nothing may decode successfully.
    EXPECT_THROW((void)ResultStore::decode(bytes), StoreCorruptError)
        << "bit flip at offset " << i << " was accepted";
  }
}

TEST(StoreCodec, RejectsTrailingGarbage) {
  Bytes bytes = encodeTestStore();
  bytes.push_back(0x00);
  EXPECT_THROW((void)ResultStore::decode(bytes), StoreCorruptError);
}

TEST(DescribeStoreMismatch, IgnoresJobsNamesEverythingElse) {
  const campaign::CampaignConfig recorded = testConfig();
  campaign::CampaignConfig current = recorded;
  EXPECT_EQ(describeStoreMismatch(recorded, current), "");
  current.jobs = 1;  // informational only: parallelism never changes data
  EXPECT_EQ(describeStoreMismatch(recorded, current), "");
  current.runs = 50;
  const std::string msg = describeStoreMismatch(recorded, current);
  EXPECT_NE(msg.find("--runs"), std::string::npos) << msg;
  EXPECT_NE(msg.find("100"), std::string::npos) << msg;
  EXPECT_NE(msg.find("50"), std::string::npos) << msg;
}

TEST(ResultStoreFile, CreateAppendLoadLifecycle) {
  const std::string path = tempPath("store_lifecycle.bin");
  std::filesystem::remove(path);
  {
    auto store = ResultStore::create(path, testConfig());
    EXPECT_FALSE(store->containsCell("Frontier", "device bandwidth"));
    store->append(testRecord());
    EXPECT_TRUE(store->containsCell("Frontier", "device bandwidth"));
    store->append(testRecord());  // idempotent: same (machine, cell, qty)
    store->append(testRecord("Frontier", "host bandwidth", "single"));
    EXPECT_EQ(store->recordCount(), 2u);
  }
  const StoreContents contents = ResultStore::load(path);
  ASSERT_EQ(contents.records.size(), 2u);
  EXPECT_EQ(contents.records[0].cell, "device bandwidth");
  EXPECT_EQ(contents.records[1].cell, "host bandwidth");
}

TEST(ResultStoreFile, CreateRefusesExistingFile) {
  const std::string path = tempPath("store_exists.bin");
  std::filesystem::remove(path);
  { auto store = ResultStore::create(path, testConfig()); }
  EXPECT_THROW((void)ResultStore::create(path, testConfig()), Error);
}

TEST(ResultStoreFile, AttachResumeRebuildsKeysAndAppends) {
  const std::string path = tempPath("store_attach.bin");
  std::filesystem::remove(path);
  {
    auto store = ResultStore::attach(path, testConfig(), /*resume=*/false);
    store->append(testRecord());
  }
  {
    auto store = ResultStore::attach(path, testConfig(), /*resume=*/true);
    EXPECT_TRUE(store->containsCell("Frontier", "device bandwidth"));
    EXPECT_EQ(store->recordCount(), 1u);
    store->append(testRecord("Tioga", "device bandwidth", "bandwidth"));
  }
  EXPECT_EQ(ResultStore::load(path).records.size(), 2u);
}

TEST(ResultStoreFile, AttachResumeCreatesMissingFile) {
  const std::string path = tempPath("store_attach_fresh.bin");
  std::filesystem::remove(path);
  auto store = ResultStore::attach(path, testConfig(), /*resume=*/true);
  EXPECT_EQ(store->recordCount(), 0u);
}

TEST(ResultStoreFile, AttachResumeRejectsConfigMismatchNamingParameter) {
  const std::string path = tempPath("store_attach_mismatch.bin");
  std::filesystem::remove(path);
  { auto store = ResultStore::attach(path, testConfig(), /*resume=*/false); }
  campaign::CampaignConfig other = testConfig();
  other.runs = 25;
  try {
    (void)ResultStore::attach(path, other, /*resume=*/true);
    FAIL() << "mismatched --runs accepted";
  } catch (const StoreConfigMismatchError& e) {
    EXPECT_NE(std::string(e.what()).find("--runs"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace nodebench::stats
