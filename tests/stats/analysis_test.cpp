/// \file analysis_test.cpp
/// \brief Unit tests of the statistical engine: fingerprint determinism,
/// CDF accuracy against textbook values, bootstrap reproducibility, and
/// the behavior of both significance tests and both effect sizes on
/// separated, identical and degenerate samples.

#include "stats/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.hpp"

namespace nodebench::stats {
namespace {

/// Deterministic pseudo-measurements around `center` (no <random>: the
/// tests must be as reproducible as the engine they test).
std::vector<double> jittered(double center, double spread, int n,
                             std::uint64_t salt = 0) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  std::uint64_t state = 0x9e3779b97f4a7c15ull ^ salt;
  for (int i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double unit =
        static_cast<double>(state >> 11) / 9007199254740992.0;  // [0, 1)
    xs.push_back(center + (unit - 0.5) * 2.0 * spread);
  }
  return xs;
}

TEST(SampleFingerprint, DependsOnValuesOrderAndLength) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 3.0, 2.0};
  const std::vector<double> c{1.0, 2.0};
  EXPECT_EQ(sampleFingerprint(a), sampleFingerprint(a));
  EXPECT_NE(sampleFingerprint(a), sampleFingerprint(b));
  EXPECT_NE(sampleFingerprint(a), sampleFingerprint(c));
}

TEST(SampleFingerprint, DistinguishesZeroSigns) {
  const std::vector<double> pos{0.0};
  const std::vector<double> neg{-0.0};
  // Bit-pattern hashing: +0.0 and -0.0 are different data.
  EXPECT_NE(sampleFingerprint(pos), sampleFingerprint(neg));
}

TEST(NormalCdf, TextbookValues) {
  EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normalCdf(1.959964), 0.975, 1e-4);
  EXPECT_NEAR(normalCdf(-1.959964), 0.025, 1e-4);
  EXPECT_NEAR(normalCdf(3.0) + normalCdf(-3.0), 1.0, 1e-12);
}

TEST(StudentTCdf, MatchesCauchyAtOneDegree) {
  // df = 1 is the Cauchy distribution: F(1) = 3/4, F(0) = 1/2.
  EXPECT_NEAR(studentTCdf(0.0, 1.0), 0.5, 1e-10);
  EXPECT_NEAR(studentTCdf(1.0, 1.0), 0.75, 1e-8);
  EXPECT_NEAR(studentTCdf(-1.0, 1.0), 0.25, 1e-8);
}

TEST(StudentTCdf, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(studentTCdf(1.959964, 1e6), normalCdf(1.959964), 1e-5);
}

TEST(BootstrapMeanCi, DeterministicAndOrdered) {
  const std::vector<double> xs = jittered(10.0, 0.5, 50);
  const BootstrapCi a = bootstrapMeanCi(xs, 0.95, 500);
  const BootstrapCi b = bootstrapMeanCi(xs, 0.95, 500);
  EXPECT_EQ(a.lo, b.lo);  // bit-identical, not just close
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_LE(a.lo, a.hi);
  EXPECT_EQ(a.resamples, 500);
  // The interval must cover the point it estimates.
  EXPECT_LT(a.lo, 10.5);
  EXPECT_GT(a.hi, 9.5);
}

TEST(BootstrapMeanCi, CollapsesForConstantSample) {
  const std::vector<double> xs(20, 3.25);
  const BootstrapCi ci = bootstrapMeanCi(xs);
  EXPECT_EQ(ci.lo, 3.25);
  EXPECT_EQ(ci.hi, 3.25);
}

TEST(BootstrapMeanCi, RejectsEmptyInput) {
  EXPECT_THROW((void)bootstrapMeanCi(std::vector<double>{}),
               PreconditionError);
}

TEST(WelchTTest, SeparatedSamplesAreSignificant) {
  const std::vector<double> a = jittered(10.0, 0.2, 30, 1);
  const std::vector<double> b = jittered(12.0, 0.2, 30, 2);
  const WelchResult r = welchTTest(a, b);
  EXPECT_GT(r.t, 0.0);  // positive when mean(b) > mean(a)
  EXPECT_LT(r.p, 1e-6);
  const WelchResult reversed = welchTTest(b, a);
  EXPECT_NEAR(reversed.t, -r.t, 1e-12);
  EXPECT_NEAR(reversed.p, r.p, 1e-12);
}

TEST(WelchTTest, IdenticalConstantSamplesDegenerate) {
  const std::vector<double> a(10, 5.0);
  EXPECT_EQ(welchTTest(a, a).p, 1.0);
  const std::vector<double> b(10, 6.0);
  EXPECT_EQ(welchTTest(a, b).p, 0.0);  // zero variance, different means
}

TEST(MannWhitneyU, DisjointAndTiedSamples) {
  const std::vector<double> lo{1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7};
  const std::vector<double> hi{2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7};
  const MannWhitneyResult r = mannWhitneyU(lo, hi);
  EXPECT_LT(r.p, 0.01);
  const std::vector<double> tied(10, 4.0);
  EXPECT_EQ(mannWhitneyU(tied, tied).p, 1.0);
}

TEST(MannWhitneyU, RobustToOneExtremeOutlier) {
  // A single wild outlier moves the mean but barely moves the ranks:
  // the rank test must stay insignificant where a mean test might not.
  std::vector<double> a = jittered(10.0, 0.1, 20, 3);
  std::vector<double> b = jittered(10.0, 0.1, 20, 4);
  b.back() = 1e6;
  const MannWhitneyResult r = mannWhitneyU(a, b);
  EXPECT_GT(r.p, 0.05);
}

TEST(CohensD, KnownSeparation) {
  // Two constant-ish samples one unit apart with unit-ish spread: d ~ 1.
  const std::vector<double> a = jittered(0.0, 1.0, 200, 5);
  const std::vector<double> b = jittered(1.0, 1.0, 200, 6);
  const double d = cohensD(a, b);
  EXPECT_GT(d, 0.5);
  EXPECT_LT(d, 3.0);
  EXPECT_NEAR(cohensD(b, a), -d, 1e-12);
  const std::vector<double> c(10, 2.0);
  EXPECT_EQ(cohensD(c, c), 0.0);  // zero pooled stddev
}

TEST(CliffsDelta, BoundsAndSymmetry) {
  const std::vector<double> lo{1.0, 2.0, 3.0};
  const std::vector<double> hi{10.0, 11.0, 12.0};
  EXPECT_EQ(cliffsDelta(lo, hi), 1.0);   // every b above every a
  EXPECT_EQ(cliffsDelta(hi, lo), -1.0);  // every b below every a
  EXPECT_EQ(cliffsDelta(lo, lo), 0.0);   // identical -> no dominance
  // Interleaved: strictly inside the bounds.
  const std::vector<double> mixed{1.5, 2.5, 11.5};
  const double d = cliffsDelta(lo, mixed);
  EXPECT_GT(d, -1.0);
  EXPECT_LT(d, 1.0);
}

}  // namespace
}  // namespace nodebench::stats
