/// \file compare_determinism_test.cpp
/// \brief Golden-output determinism of the comparison layer: the full
/// renderCompare/renderGate text must be byte-identical at any worker
/// count and on repeated evaluation — the property that makes a stored
/// compare table reviewable evidence rather than a one-off printout.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "stats/compare.hpp"

namespace nodebench::stats {
namespace {

std::vector<double> around(double center, double spread, int n,
                           std::uint64_t salt) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  std::uint64_t state = 0x452821e638d01377ull ^ salt;
  for (int i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double unit = static_cast<double>(state >> 11) / 9007199254740992.0;
    xs.push_back(center + (unit - 0.5) * 2.0 * spread);
  }
  return xs;
}

/// A store pair large enough that any worker-count-dependent ordering or
/// rounding in the compare fan-out would show: several machines, mixed
/// directions, regressions, improvements, an unmatched cell and an
/// insufficient one.
std::pair<StoreContents, StoreContents> testStores() {
  StoreContents base;
  StoreContents cand;
  base.config.runs = cand.config.runs = 50;
  std::uint64_t salt = 1;
  for (const char* machine : {"Frontier", "Summit", "Perlmutter", "Aurora"}) {
    for (const char* cell : {"alpha", "beta", "gamma", "delta", "epsilon"}) {
      SampleRecord rec;
      rec.machine = machine;
      rec.cell = cell;
      rec.quantity = "latency";
      rec.unit = "us";
      rec.better = Better::Lower;
      rec.samples = around(10.0, 0.2, 40, salt);
      rec.summary = summarize(rec.samples);
      base.records.push_back(rec);
      // Candidate: every other cell drifts by a machine-dependent amount.
      const double shift = (salt % 3 == 0) ? 1.5 : (salt % 3 == 1 ? -1.0 : 0.0);
      rec.samples = around(10.0 + shift, 0.2, 40, salt + 1000);
      rec.summary = summarize(rec.samples);
      cand.records.push_back(rec);
      ++salt;
    }
  }
  // One unmatched cell per side and one too-small-to-test pair.
  SampleRecord extra;
  extra.machine = "Frontier";
  extra.cell = "baseline only";
  extra.quantity = "latency";
  extra.unit = "us";
  extra.better = Better::Lower;
  extra.samples = around(1.0, 0.01, 10, 99);
  extra.summary = summarize(extra.samples);
  base.records.push_back(extra);
  extra.cell = "candidate only";
  cand.records.push_back(extra);
  extra.cell = "insufficient";
  extra.samples = {1.0};
  extra.summary = summarize(extra.samples);
  base.records.push_back(extra);
  cand.records.push_back(extra);
  return {std::move(base), std::move(cand)};
}

TEST(CompareDeterminism, OutputByteIdenticalAcrossWorkerCounts) {
  const auto [base, cand] = testStores();
  CompareOptions opt;
  opt.jobs = 1;
  const CompareReport sequential = compareStores(base, cand, opt);
  const std::string compareSeq = renderCompare(sequential);
  const std::string gateSeq = renderGate(sequential);
  ASSERT_GT(sequential.regressions, 0u);  // the fixture must exercise FAIL
  for (const int jobs : {2, 3, 8}) {
    opt.jobs = jobs;
    const CompareReport parallel = compareStores(base, cand, opt);
    EXPECT_EQ(renderCompare(parallel), compareSeq) << "jobs=" << jobs;
    EXPECT_EQ(renderGate(parallel), gateSeq) << "jobs=" << jobs;
    EXPECT_EQ(gateExit(parallel), gateExit(sequential)) << "jobs=" << jobs;
  }
}

TEST(CompareDeterminism, RepeatedRunsAreByteIdentical) {
  const auto [base, cand] = testStores();
  const std::string first = renderCompare(compareStores(base, cand));
  const std::string second = renderCompare(compareStores(base, cand));
  EXPECT_EQ(first, second);
}

TEST(CompareDeterminism, RecordFileOrderDoesNotMatter) {
  // The harness appends store records in completion order, which varies
  // with --jobs; the comparison must be a pure function of the keyed
  // record *set*.
  auto [base, cand] = testStores();
  const std::string forward = renderCompare(compareStores(base, cand));
  std::reverse(base.records.begin(), base.records.end());
  std::reverse(cand.records.begin(), cand.records.end());
  EXPECT_EQ(renderCompare(compareStores(base, cand)), forward);
}

}  // namespace
}  // namespace nodebench::stats
