/// \file robust_stats_edge_test.cpp
/// \brief Documents and pins the edge-case behavior of the robust
/// statistics helpers (core/stats.hpp): empty input is a precondition
/// violation (PreconditionError, never a silent 0), a single sample has
/// zero spread by definition, and an all-identical sample is the
/// MAD-degenerate case where the modified z-score rule flags every
/// value different from the median.

#include <gtest/gtest.h>

#include <vector>

#include "core/error.hpp"
#include "core/stats.hpp"

namespace nodebench {
namespace {

TEST(RobustStatsEdge, EmptyInputViolatesPrecondition) {
  const std::vector<double> empty;
  EXPECT_THROW((void)median(empty), PreconditionError);
  EXPECT_THROW((void)mad(empty), PreconditionError);
  EXPECT_THROW((void)robustSummarize(empty), PreconditionError);
}

TEST(RobustStatsEdge, SingleSample) {
  const std::vector<double> one{42.5};
  EXPECT_EQ(median(one), 42.5);
  EXPECT_EQ(mad(one), 0.0);  // a lone sample deviates from nothing
  const RobustSummary s = robustSummarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.median, 42.5);
  EXPECT_EQ(s.mad, 0.0);
  EXPECT_EQ(s.outliers, 0u);
}

TEST(RobustStatsEdge, AllIdenticalSamples) {
  const std::vector<double> same(17, 3.0);
  EXPECT_EQ(median(same), 3.0);
  EXPECT_EQ(mad(same), 0.0);
  const RobustSummary s = robustSummarize(same);
  EXPECT_EQ(s.count, 17u);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.mad, 0.0);
  // Zero spread, zero deviation: nothing to flag.
  EXPECT_EQ(s.outliers, 0u);
}

TEST(RobustStatsEdge, ZeroMadFlagsAnyDeviatingSample) {
  // When MAD is 0 the modified z-score is undefined; the documented rule
  // is that *every* sample different from the median counts as an
  // outlier — the distribution claims zero spread, so any deviation is
  // inconsistent with it.
  std::vector<double> xs(10, 5.0);
  xs.push_back(5.0001);
  const RobustSummary s = robustSummarize(xs);
  EXPECT_EQ(s.median, 5.0);
  EXPECT_EQ(s.mad, 0.0);
  EXPECT_EQ(s.outliers, 1u);
}

TEST(RobustStatsEdge, MedianAndMadSurviveAGrossOutlier) {
  // The reason these helpers exist: one wild fault-injected run must not
  // drag the location/spread the way it drags mean/stddev.
  std::vector<double> xs{10.0, 10.1, 9.9, 10.2, 9.8, 10.0, 1e9};
  EXPECT_NEAR(median(xs), 10.0, 0.2);
  EXPECT_LT(mad(xs), 1.0);
  const RobustSummary s = robustSummarize(xs);
  EXPECT_EQ(s.outliers, 1u);
}

}  // namespace
}  // namespace nodebench
