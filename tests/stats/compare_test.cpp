/// \file compare_test.cpp
/// \brief Regression-detection tests: verdict logic (direction,
/// significance, materiality), unmatched/insufficient handling, config
/// notes, and the gate exit-code contract.

#include "stats/compare.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nodebench::stats {
namespace {

std::vector<double> around(double center, double spread, int n,
                           std::uint64_t salt = 0) {
  std::vector<double> xs;
  xs.reserve(static_cast<std::size_t>(n));
  std::uint64_t state = 0x243f6a8885a308d3ull ^ salt;
  for (int i = 0; i < n; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double unit = static_cast<double>(state >> 11) / 9007199254740992.0;
    xs.push_back(center + (unit - 0.5) * 2.0 * spread);
  }
  return xs;
}

SampleRecord record(const std::string& machine, const std::string& cell,
                    const std::string& quantity, Better better,
                    std::vector<double> samples) {
  SampleRecord rec;
  rec.machine = machine;
  rec.cell = cell;
  rec.quantity = quantity;
  rec.unit = better == Better::Lower ? "us" : "GB/s";
  rec.better = better;
  rec.summary = summarize(samples);
  rec.samples = std::move(samples);
  return rec;
}

StoreContents storeWith(std::vector<SampleRecord> records,
                        std::uint32_t runs = 100) {
  StoreContents contents;
  contents.config.runs = runs;
  contents.records = std::move(records);
  return contents;
}

const CellComparison& findCell(const CompareReport& report,
                               const std::string& cell) {
  for (const CellComparison& c : report.cells) {
    if (c.cell == cell) {
      return c;
    }
  }
  ADD_FAILURE() << "cell not found: " << cell;
  static const CellComparison none{};
  return none;
}

TEST(CompareStores, SelfComparisonIsAllUnchangedAndGatePasses) {
  const StoreContents s = storeWith({
      record("Frontier", "device bandwidth", "bandwidth", Better::Higher,
             around(1300.0, 5.0, 50, 1)),
      record("Frontier", "host-to-host latency", "latency", Better::Lower,
             around(0.45, 0.01, 50, 2)),
  });
  const CompareReport report = compareStores(s, s);
  EXPECT_EQ(report.cells.size(), 2u);
  EXPECT_EQ(report.regressions, 0u);
  EXPECT_EQ(report.unchanged, 2u);
  EXPECT_TRUE(report.configNotes.empty());
  EXPECT_EQ(gateExit(report), 0);
  EXPECT_NE(renderGate(report).find("PASS"), std::string::npos);
}

TEST(CompareStores, DirectionAwareVerdicts) {
  const StoreContents base = storeWith({
      record("Frontier", "latency up", "latency", Better::Lower,
             around(10.0, 0.05, 50, 1)),
      record("Frontier", "latency down", "latency", Better::Lower,
             around(10.0, 0.05, 50, 2)),
      record("Frontier", "bandwidth down", "bandwidth", Better::Higher,
             around(1000.0, 2.0, 50, 3)),
      record("Frontier", "bandwidth up", "bandwidth", Better::Higher,
             around(1000.0, 2.0, 50, 4)),
  });
  const StoreContents cand = storeWith({
      record("Frontier", "latency up", "latency", Better::Lower,
             around(12.0, 0.05, 50, 5)),
      record("Frontier", "latency down", "latency", Better::Lower,
             around(8.0, 0.05, 50, 6)),
      record("Frontier", "bandwidth down", "bandwidth", Better::Higher,
             around(900.0, 2.0, 50, 7)),
      record("Frontier", "bandwidth up", "bandwidth", Better::Higher,
             around(1100.0, 2.0, 50, 8)),
  });
  const CompareReport report = compareStores(base, cand);
  EXPECT_EQ(findCell(report, "latency up").verdict, Verdict::Regression);
  EXPECT_EQ(findCell(report, "latency down").verdict, Verdict::Improvement);
  EXPECT_EQ(findCell(report, "bandwidth down").verdict, Verdict::Regression);
  EXPECT_EQ(findCell(report, "bandwidth up").verdict, Verdict::Improvement);
  EXPECT_EQ(report.regressions, 2u);
  EXPECT_EQ(report.improvements, 2u);
  EXPECT_EQ(gateExit(report), kGateRegressionExitCode);
  EXPECT_NE(renderGate(report).find("FAIL"), std::string::npos);
}

TEST(CompareStores, SignificantButImmaterialIsUnchanged) {
  // A genuine 0.5% shift with tiny spread: both tests scream, but the
  // default 2% materiality threshold holds the verdict at unchanged.
  const StoreContents base = storeWith({record(
      "M", "c", "latency", Better::Lower, around(10.0, 0.001, 100, 1))});
  const StoreContents cand = storeWith({record(
      "M", "c", "latency", Better::Lower, around(10.05, 0.001, 100, 2))});
  const CompareReport report = compareStores(base, cand);
  const CellComparison& cell = findCell(report, "c");
  EXPECT_LT(cell.welch.p, 0.05);
  EXPECT_EQ(cell.verdict, Verdict::Unchanged);
  EXPECT_EQ(gateExit(report), 0);
  // ... and a tighter threshold flips it to a regression.
  CompareOptions tight;
  tight.thresholdPct = 0.1;
  EXPECT_EQ(gateExit(compareStores(base, cand, tight)),
            kGateRegressionExitCode);
}

TEST(CompareStores, NoiseWithoutShiftIsNotSignificant) {
  const StoreContents base = storeWith({record(
      "M", "c", "latency", Better::Lower, around(10.0, 0.3, 40, 10))});
  const StoreContents cand = storeWith({record(
      "M", "c", "latency", Better::Lower, around(10.0, 0.3, 40, 20))});
  const CompareReport report = compareStores(base, cand);
  EXPECT_EQ(findCell(report, "c").verdict, Verdict::Unchanged);
}

TEST(CompareStores, UnmatchedAndInsufficientCells) {
  const StoreContents base = storeWith({
      record("M", "base only", "latency", Better::Lower,
             around(1.0, 0.01, 20, 1)),
      record("M", "tiny", "latency", Better::Lower, {1.0}),
  });
  const StoreContents cand = storeWith({
      record("M", "cand only", "latency", Better::Lower,
             around(1.0, 0.01, 20, 2)),
      record("M", "tiny", "latency", Better::Lower, {1.0}),
  });
  const CompareReport report = compareStores(base, cand);
  EXPECT_EQ(findCell(report, "base only").verdict, Verdict::BaselineOnly);
  EXPECT_EQ(findCell(report, "cand only").verdict, Verdict::CandidateOnly);
  EXPECT_EQ(findCell(report, "tiny").verdict, Verdict::Insufficient);
  EXPECT_EQ(report.unmatched, 2u);
  EXPECT_EQ(report.insufficient, 1u);
  // Missing and untestable cells are surfaced, not gated on.
  EXPECT_EQ(gateExit(report), 0);
}

TEST(CompareStores, CellsSortedByMachineCellQuantity) {
  const auto xs = [] { return around(1.0, 0.01, 10); };
  const StoreContents s = storeWith({
      record("Zed", "b", "q", Better::Lower, xs()),
      record("Alpha", "b", "z", Better::Lower, xs()),
      record("Alpha", "b", "a", Better::Lower, xs()),
      record("Alpha", "a", "q", Better::Lower, xs()),
  });
  const CompareReport report = compareStores(s, s);
  ASSERT_EQ(report.cells.size(), 4u);
  EXPECT_EQ(report.cells[0].machine, "Alpha");
  EXPECT_EQ(report.cells[0].cell, "a");
  EXPECT_EQ(report.cells[1].quantity, "a");
  EXPECT_EQ(report.cells[2].quantity, "z");
  EXPECT_EQ(report.cells[3].machine, "Zed");
}

TEST(CompareStores, ConfigNotesNameDifferingKnobsButNotJobs) {
  StoreContents base = storeWith({}, /*runs=*/100);
  StoreContents cand = storeWith({}, /*runs=*/50);
  base.config.jobs = 1;
  cand.config.jobs = 16;
  const CompareReport report = compareStores(base, cand);
  ASSERT_EQ(report.configNotes.size(), 1u);
  EXPECT_NE(report.configNotes[0].find("--runs"), std::string::npos);
  // The note must appear in both renderings.
  EXPECT_NE(renderCompare(report).find("--runs"), std::string::npos);
  EXPECT_NE(renderGate(report).find("--runs"), std::string::npos);
}

TEST(CompareStores, RenderCompareCarriesVerdictMarkers) {
  const StoreContents base = storeWith({record(
      "M", "c", "latency", Better::Lower, around(10.0, 0.05, 50, 1))});
  const StoreContents cand = storeWith({record(
      "M", "c", "latency", Better::Lower, around(14.0, 0.05, 50, 2))});
  const std::string out = renderCompare(compareStores(base, cand));
  EXPECT_NE(out.find("REGRESSION"), std::string::npos);
  EXPECT_NE(out.find("**"), std::string::npos);  // p < 0.01 marker
  EXPECT_NE(out.find("1 regression(s)"), std::string::npos);
}

}  // namespace
}  // namespace nodebench::stats
