#include "core/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace nodebench {
namespace {

TEST(Welford, EmptyStateThrows) {
  Welford w;
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.count(), 0u);
  EXPECT_THROW((void)w.mean(), PreconditionError);
  EXPECT_THROW((void)w.min(), PreconditionError);
  EXPECT_THROW((void)w.summary(), PreconditionError);
}

TEST(Welford, SingleValue) {
  Welford w;
  w.add(42.0);
  EXPECT_EQ(w.count(), 1u);
  EXPECT_DOUBLE_EQ(w.mean(), 42.0);
  EXPECT_DOUBLE_EQ(w.sampleVariance(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(w.min(), 42.0);
  EXPECT_DOUBLE_EQ(w.max(), 42.0);
}

TEST(Welford, KnownSmallSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population variance 4.
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    w.add(x);
  }
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.populationVariance(), 4.0);
  EXPECT_NEAR(w.sampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
}

TEST(Welford, MatchesNaiveFormulaOnRandomData) {
  Xoshiro256 rng(12345);
  std::vector<double> xs;
  Welford w;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-50.0, 150.0);
    xs.push_back(x);
    w.add(x);
  }
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) {
    ss += (x - mean) * (x - mean);
  }
  EXPECT_NEAR(w.mean(), mean, 1e-9);
  EXPECT_NEAR(w.sampleVariance(), ss / (static_cast<double>(xs.size()) - 1),
              1e-9);
}

TEST(Welford, NumericallyStableAtLargeOffset) {
  // Classic catastrophic-cancellation case for the naive formula.
  Welford w;
  const double offset = 1e9;
  for (double x : {offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0}) {
    w.add(x);
  }
  EXPECT_NEAR(w.mean(), offset + 10.0, 1e-6);
  EXPECT_NEAR(w.sampleVariance(), 30.0, 1e-6);
}

TEST(Welford, MergeMatchesSequential) {
  Xoshiro256 rng(777);
  Welford whole;
  Welford a;
  Welford b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(10.0, 3.0);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.sampleVariance(), whole.sampleVariance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Welford, MergeWithEmptySides) {
  Welford a;
  Welford b;
  b.add(3.0);
  b.add(5.0);
  a.merge(b);  // empty <- full
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  Welford c;
  a.merge(c);  // full <- empty
  EXPECT_EQ(a.count(), 2u);
}

TEST(SummaryTest, ToStringMatchesPaperFormat) {
  const Summary s{100, 12.36, 0.16, 12.0, 12.8};
  EXPECT_EQ(s.toString(), "12.36 ± 0.16");
  EXPECT_EQ(s.toString(1), "12.4 ± 0.2");
}

TEST(SummaryTest, CvHandlesZeroMean) {
  const Summary s{10, 0.0, 1.0, -1.0, 1.0};
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
  const Summary t{10, 2.0, 1.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(t.cv(), 0.5);
}

TEST(Summarize, MatchesWelford) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)summarize(empty), PreconditionError);
}

TEST(Median, OddAndEven) {
  const std::vector<double> odd{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(median(one), 7.0);
}

TEST(Percentile, Interpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15.0);
}

TEST(Percentile, RejectsBadInput) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile(xs, -1.0), PreconditionError);
  EXPECT_THROW((void)percentile(xs, 101.0), PreconditionError);
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), PreconditionError);
}

/// Property sweep: for any sample, stddev^2 * (n-1) equals the summed
/// squared deviations, and min <= mean <= max.
class StatsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsPropertyTest, SummaryInvariants) {
  Xoshiro256 rng(GetParam());
  Welford w;
  const int n = 2 + static_cast<int>(rng.uniformInt(200));
  for (int i = 0; i < n; ++i) {
    w.add(rng.normal(rng.uniform(-100.0, 100.0), 5.0));
  }
  const Summary s = w.summary();
  EXPECT_LE(s.min, s.mean);
  EXPECT_GE(s.max, s.mean);
  EXPECT_GE(s.stddev, 0.0);
  EXPECT_EQ(s.count, static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

TEST(Median, OddCountPicksMiddleElement) {
  const std::vector<double> xs{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Median, EvenCountAveragesMiddlePair) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Median, SingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(median(xs), 42.0);
}

TEST(Median, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW((void)median(xs), PreconditionError);
}

TEST(Mad, OddCount) {
  // median 5; |x-5| = {4, 0, 4} -> mad 4.
  const std::vector<double> xs{1.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(mad(xs), 4.0);
}

TEST(Mad, EvenCount) {
  // median 2.5; deviations {1.5, 0.5, 0.5, 1.5} -> mad 1.0.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mad(xs), 1.0);
}

TEST(Mad, SingleElementIsZero) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(mad(xs), 0.0);
}

TEST(RobustSummarize, FlagsGrossOutlierMeanDoesNot) {
  // 19 well-behaved samples plus one 100x outlier: the modified z-score
  // flags exactly one sample.
  std::vector<double> xs(19, 10.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] += 0.01 * static_cast<double>(i % 5);
  }
  xs.push_back(1000.0);
  const RobustSummary r = robustSummarize(xs);
  EXPECT_NEAR(r.median, 10.02, 0.02);
  EXPECT_EQ(r.outliers, 1u);
  EXPECT_EQ(r.count, 20u);
}

TEST(RobustSummarize, ZeroMadDegeneratesToAnyDeviation) {
  // All-identical samples except one: MAD is 0, so any deviation counts.
  std::vector<double> xs(10, 3.0);
  xs.push_back(3.5);
  const RobustSummary r = robustSummarize(xs);
  EXPECT_DOUBLE_EQ(r.mad, 0.0);
  EXPECT_EQ(r.outliers, 1u);
}

TEST(RobustSummarize, ToStringMentionsOutliers) {
  std::vector<double> xs(10, 2.0);
  xs.push_back(500.0);
  const RobustSummary r = robustSummarize(xs);
  const std::string s = r.toString();
  EXPECT_NE(s.find("outlier"), std::string::npos) << s;
  const RobustSummary clean = robustSummarize(std::vector<double>(5, 2.0));
  EXPECT_EQ(clean.toString().find("outlier"), std::string::npos);
}

}  // namespace
}  // namespace nodebench
