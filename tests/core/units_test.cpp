#include "core/units.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace nodebench {
namespace {

using namespace nodebench::literals;

TEST(DurationTest, ConstructorsAndAccessors) {
  EXPECT_DOUBLE_EQ(Duration::nanoseconds(1500.0).us(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::microseconds(2.5).ns(), 2500.0);
  EXPECT_DOUBLE_EQ(Duration::milliseconds(3.0).us(), 3000.0);
  EXPECT_DOUBLE_EQ(Duration::seconds(1.0).ms(), 1000.0);
  EXPECT_DOUBLE_EQ(Duration::zero().ns(), 0.0);
}

TEST(DurationTest, Literals) {
  EXPECT_DOUBLE_EQ((1.5_us).ns(), 1500.0);
  EXPECT_DOUBLE_EQ((250_ns).ns(), 250.0);
  EXPECT_DOUBLE_EQ((2_ms).us(), 2000.0);
  EXPECT_DOUBLE_EQ((1_s).ms(), 1000.0);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = 2_us;
  const Duration b = 500_ns;
  EXPECT_DOUBLE_EQ((a + b).ns(), 2500.0);
  EXPECT_DOUBLE_EQ((a - b).ns(), 1500.0);
  EXPECT_DOUBLE_EQ((a * 2.0).ns(), 4000.0);
  EXPECT_DOUBLE_EQ((3.0 * b).ns(), 1500.0);
  EXPECT_DOUBLE_EQ((a / 4.0).ns(), 500.0);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  Duration c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.ns(), 2500.0);
  c -= a;
  EXPECT_DOUBLE_EQ(c.ns(), 500.0);
}

TEST(DurationTest, ComparisonAndMinMax) {
  EXPECT_LT(1_us, 2_us);
  EXPECT_EQ(1000_ns, 1_us);
  EXPECT_EQ(max(1_us, 2_us), 2_us);
  EXPECT_EQ(min(1_us, 2_us), 1_us);
}

TEST(DurationTest, Infinity) {
  EXPECT_FALSE(Duration::infinity().isFinite());
  EXPECT_TRUE((1_us).isFinite());
  EXPECT_LT(1_s, Duration::infinity());
}

TEST(ByteCountTest, DecimalVsBinaryMultiples) {
  EXPECT_EQ(ByteCount::kib(1).count(), 1024u);
  EXPECT_EQ(ByteCount::kb(1).count(), 1000u);
  EXPECT_EQ(ByteCount::mib(1).count(), 1048576u);
  EXPECT_EQ(ByteCount::gib(1).count(), 1073741824u);
  EXPECT_EQ(ByteCount::gb(1).count(), 1000000000u);
  EXPECT_DOUBLE_EQ(ByteCount::gib(2).inGiB(), 2.0);
  EXPECT_DOUBLE_EQ(ByteCount::gb(3).inGB(), 3.0);
  EXPECT_DOUBLE_EQ(ByteCount::mib(512).inMiB(), 512.0);
}

TEST(ByteCountTest, ArithmeticAndComparison) {
  EXPECT_EQ((ByteCount::kib(1) + ByteCount::bytes(24)).count(), 1048u);
  EXPECT_EQ((ByteCount::kib(2) * 3ull).count(), 6144u);
  EXPECT_LT(ByteCount::kb(1), ByteCount::kib(1));
}

TEST(BandwidthTest, GbpsEqualsBytesPerNanosecond) {
  // The core unit identity the whole simulator relies on.
  const Bandwidth bw = Bandwidth::gbps(25.0);
  EXPECT_DOUBLE_EQ(bw.bytesPerNanosecond(), 25.0);
  EXPECT_DOUBLE_EQ(Bandwidth::bytesPerNs(100.0).inGBps(), 100.0);
}

TEST(BandwidthTest, TransferTimeRoundTrip) {
  const Bandwidth bw = Bandwidth::gbps(50.0);
  const ByteCount size = ByteCount::gb(1);
  const Duration t = bw.transferTime(size);
  EXPECT_DOUBLE_EQ(t.ms(), 20.0);
  EXPECT_DOUBLE_EQ(Bandwidth::fromTransfer(size, t).inGBps(), 50.0);
}

TEST(BandwidthTest, TransferTimePreconditions) {
  EXPECT_THROW((void)Bandwidth::zero().transferTime(ByteCount::kb(1)),
               PreconditionError);
  EXPECT_THROW(
      (void)Bandwidth::fromTransfer(ByteCount::kb(1), Duration::zero()),
      PreconditionError);
}

TEST(BandwidthTest, ArithmeticAndMin) {
  EXPECT_DOUBLE_EQ((Bandwidth::gbps(10.0) * 2.0).inGBps(), 20.0);
  EXPECT_DOUBLE_EQ((Bandwidth::gbps(10.0) / 2.0).inGBps(), 5.0);
  EXPECT_DOUBLE_EQ((Bandwidth::gbps(10.0) + Bandwidth::gbps(5.0)).inGBps(),
                   15.0);
  EXPECT_EQ(min(Bandwidth::gbps(10.0), Bandwidth::gbps(5.0)),
            Bandwidth::gbps(5.0));
}

}  // namespace
}  // namespace nodebench
