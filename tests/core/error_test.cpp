#include "core/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nodebench {
namespace {

TEST(ErrorTest, ExpectsThrowsPreconditionError) {
  const auto f = [](int x) { NB_EXPECTS(x > 0); };
  EXPECT_NO_THROW(f(1));
  EXPECT_THROW(f(0), PreconditionError);
}

TEST(ErrorTest, ExpectsMsgIncludesMessageAndLocation) {
  try {
    NB_EXPECTS_MSG(false, "the reason");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("the reason"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
  }
}

TEST(ErrorTest, EnsuresThrowsInvariantError) {
  const auto f = [] { NB_ENSURES(1 == 2); };
  EXPECT_THROW(f(), InvariantError);
  const auto g = [] { NB_ENSURES_MSG(false, "broken"); };
  EXPECT_THROW(g(), InvariantError);
}

TEST(ErrorTest, HierarchyRootsAtError) {
  // All nodebench exceptions are catchable as nodebench::Error and as
  // std::runtime_error (I.10: use standard hierarchies).
  EXPECT_THROW(throw NotFoundError("x"), Error);
  EXPECT_THROW(throw PreconditionError("x"), std::runtime_error);
  EXPECT_THROW(throw InvariantError("x"), Error);
}

}  // namespace
}  // namespace nodebench
