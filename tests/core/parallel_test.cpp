#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <string>
#include <vector>

namespace nodebench::par {
namespace {

TEST(Parallel, ResolveJobs) {
  EXPECT_EQ(resolveJobs(1), 1);
  EXPECT_EQ(resolveJobs(7), 7);
  EXPECT_EQ(resolveJobs(0), hardwareJobs());
  EXPECT_EQ(resolveJobs(-3), hardwareJobs());
  EXPECT_GE(hardwareJobs(), 1);
}

TEST(Parallel, TaskSeedIsPureAndDistinct) {
  EXPECT_EQ(taskSeed(42, 0), taskSeed(42, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t task = 0; task < 256; ++task) {
    seen.insert(taskSeed(42, task));
  }
  EXPECT_EQ(seen.size(), 256u);  // no collisions among neighbours
  EXPECT_NE(taskSeed(1, 0), taskSeed(2, 0));
}

TEST(ThreadPool, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.waitIdle();
  EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPool, WorkersReportInsideWorker) {
  EXPECT_FALSE(insideWorker());
  ThreadPool pool(2);
  std::atomic<bool> sawInside{false};
  pool.submit([&sawInside] { sawInside.store(insideWorker()); });
  pool.waitIdle();
  EXPECT_TRUE(sawInside.load());
  EXPECT_FALSE(insideWorker());
}

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<int> hits(257, 0);
    parallelForEach(
        hits.size(), [&](std::size_t i) { ++hits[i]; }, jobs);
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 257)
        << "jobs=" << jobs;
    for (const int h : hits) {
      EXPECT_EQ(h, 1);
    }
  }
}

TEST(ParallelForEach, ZeroCountIsANoop) {
  parallelForEach(0, [](std::size_t) { FAIL(); }, 8);
}

TEST(ParallelForEach, LowestIndexFailureComesFirst) {
  // Multiple failures aggregate (see MultipleFailuresAggregateInTaskOrder);
  // the lowest-index one still leads, independent of worker count.
  for (const int jobs : {1, 8}) {
    try {
      parallelForEach(
          64,
          [](std::size_t i) {
            if (i == 7 || i == 50) {
              throw std::runtime_error("task " + std::to_string(i));
            }
          },
          jobs);
      FAIL() << "expected an exception, jobs=" << jobs;
    } catch (const AggregateError& e) {
      ASSERT_EQ(e.failures().size(), 2u) << "jobs=" << jobs;
      EXPECT_EQ(e.failures()[0].task, 7u) << "jobs=" << jobs;
      EXPECT_EQ(e.failures()[0].message, "task 7") << "jobs=" << jobs;
    }
  }
}

TEST(ParallelForEach, NestedSectionsRunInline) {
  // A nested parallelForEach must execute on the worker that reached it
  // (no second pool), so deep nesting can never deadlock on pool slots.
  std::atomic<int> inner{0};
  parallelForEach(
      4,
      [&](std::size_t) {
        EXPECT_TRUE(insideWorker());
        parallelForEach(
            8, [&](std::size_t) { inner.fetch_add(1); }, 8);
      },
      2);
  EXPECT_EQ(inner.load(), 32);
}

TEST(ParallelMap, PreservesItemOrder) {
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  for (const int jobs : {1, 3, 8}) {
    const auto out = parallelMap(
        items, [](const int& v) { return v * v; }, jobs);
    ASSERT_EQ(out.size(), items.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
  }
}

TEST(ParallelMap, ResultIndependentOfWorkerCount) {
  std::vector<std::uint64_t> items(50);
  std::iota(items.begin(), items.end(), 0u);
  const auto compute = [](const std::uint64_t& task) {
    // Simulated per-task RNG use: seeded from task identity only.
    return taskSeed(0xabcdef, task) % 1000003;
  };
  const auto seq = parallelMap(items, compute, 1);
  const auto par2 = parallelMap(items, compute, 2);
  const auto par8 = parallelMap(items, compute, 8);
  EXPECT_EQ(seq, par2);
  EXPECT_EQ(seq, par8);
}

TEST(ParallelForEach, SingleFailureAggregatesWithTaskIndex) {
  // Regression: a lone failure used to be rethrown unwrapped, so its
  // message never said *which* task died. It must aggregate like any
  // other failure, with the index in the what() string and singular
  // grammar in the header line.
  for (const int jobs : {1, 4}) {
    try {
      parallelForEach(
          8,
          [](std::size_t task) {
            if (task == 5) {
              throw NotFoundError("only failure");
            }
          },
          jobs);
      FAIL() << "expected AggregateError, jobs=" << jobs;
    } catch (const AggregateError& e) {
      ASSERT_EQ(e.failures().size(), 1u) << "jobs=" << jobs;
      EXPECT_EQ(e.failures()[0].task, 5u) << "jobs=" << jobs;
      const std::string what = e.what();
      EXPECT_NE(what.find("1 parallel task failed:"), std::string::npos)
          << what;
      EXPECT_NE(what.find("task 5: "), std::string::npos) << what;
      EXPECT_NE(what.find("only failure"), std::string::npos) << what;
    }
  }
}

TEST(ParallelForEach, MultipleFailuresAggregateInTaskOrder) {
  for (const int jobs : {1, 2, 8}) {
    try {
      parallelForEach(
          10,
          [](std::size_t task) {
            if (task % 3 == 1) {  // tasks 1, 4, 7
              throw Error("boom " + std::to_string(task));
            }
          },
          jobs);
      FAIL() << "expected AggregateError (jobs=" << jobs << ")";
    } catch (const AggregateError& e) {
      ASSERT_EQ(e.failures().size(), 3u) << "jobs=" << jobs;
      EXPECT_EQ(e.failures()[0].task, 1u);
      EXPECT_EQ(e.failures()[1].task, 4u);
      EXPECT_EQ(e.failures()[2].task, 7u);
      EXPECT_EQ(e.failures()[1].message, "boom 4");
      const std::string what = e.what();
      EXPECT_NE(what.find("task 7"), std::string::npos) << what;
    }
  }
}

TEST(ParallelForEach, AllTasksRunDespiteEarlyFailure) {
  // Error policy must be jobs-independent: every task still executes,
  // even sequentially after task 0 has already failed.
  for (const int jobs : {1, 4}) {
    std::atomic<int> ran{0};
    try {
      parallelForEach(
          6,
          [&](std::size_t task) {
            ran.fetch_add(1);
            if (task == 0) {
              throw Error("first");
            }
          },
          jobs);
      FAIL();
    } catch (const Error&) {
    }
    EXPECT_EQ(ran.load(), 6) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace nodebench::par
