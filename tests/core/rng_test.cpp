#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/stats.hpp"

namespace nodebench {
namespace {

TEST(Xoshiro, DeterministicForSameSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, Uniform01Bounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, Uniform01MeanIsHalf) {
  Xoshiro256 rng(11);
  Welford w;
  for (int i = 0; i < 100000; ++i) {
    w.add(rng.uniform01());
  }
  EXPECT_NEAR(w.mean(), 0.5, 0.01);
  EXPECT_NEAR(w.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Xoshiro, UniformRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
  EXPECT_THROW((void)rng.uniform(1.0, 1.0), PreconditionError);
}

TEST(Xoshiro, UniformIntBoundsAndCoverage) {
  Xoshiro256 rng(17);
  bool seen[7] = {};
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.uniformInt(7);
    ASSERT_LT(x, 7u);
    seen[x] = true;
  }
  for (bool s : seen) {
    EXPECT_TRUE(s);
  }
  EXPECT_THROW((void)rng.uniformInt(0), PreconditionError);
}

TEST(Xoshiro, NormalMomentsMatch) {
  Xoshiro256 rng(19);
  Welford w;
  for (int i = 0; i < 200000; ++i) {
    w.add(rng.normal(10.0, 2.5));
  }
  EXPECT_NEAR(w.mean(), 10.0, 0.05);
  EXPECT_NEAR(w.stddev(), 2.5, 0.05);
}

TEST(Xoshiro, SplitProducesIndependentStream) {
  Xoshiro256 parent(23);
  Xoshiro256 child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += parent.next() == child.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(NoiseModel, ZeroCvIsIdentity) {
  Xoshiro256 rng(29);
  const NoiseModel none = NoiseModel::none();
  EXPECT_DOUBLE_EQ(none.sampleFactor(rng), 1.0);
  EXPECT_EQ(none.apply(Duration::microseconds(3.0), rng),
            Duration::microseconds(3.0));
}

TEST(NoiseModel, RejectsInvalidCv) {
  EXPECT_THROW(NoiseModel(-0.1), PreconditionError);
  EXPECT_THROW(NoiseModel(0.5), PreconditionError);
}

TEST(NoiseModel, FactorsHaveRequestedSpread) {
  Xoshiro256 rng(31);
  const NoiseModel noise(0.05);
  Welford w;
  for (int i = 0; i < 50000; ++i) {
    w.add(noise.sampleFactor(rng));
  }
  EXPECT_NEAR(w.mean(), 1.0, 0.002);
  EXPECT_NEAR(w.stddev(), 0.05, 0.003);
}

TEST(NoiseModel, FactorsAreTruncated) {
  Xoshiro256 rng(37);
  const NoiseModel noise(0.2);
  for (int i = 0; i < 20000; ++i) {
    const double f = noise.sampleFactor(rng);
    EXPECT_GE(f, 1.0 - 4.0 * 0.2 - 1e-12);
    EXPECT_LE(f, 1.0 + 4.0 * 0.2 + 1e-12);
  }
}

TEST(NoiseModel, AppliedValuesStayPositive) {
  Xoshiro256 rng(41);
  const NoiseModel noise(0.2);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_GT(noise.apply(Duration::nanoseconds(5.0), rng),
              Duration::zero());
    EXPECT_GT(noise.apply(Bandwidth::gbps(1.0), rng).inGBps(), 0.0);
  }
}

TEST(SplitMix, KnownExpansionIsStable) {
  // Guard the seeding path: same seed must yield the same first outputs
  // forever (golden tests depend on stream stability).
  SplitMix64 a(0);
  const std::uint64_t first = a.next();
  SplitMix64 b(0);
  EXPECT_EQ(first, b.next());
  EXPECT_NE(first, a.next());
}

}  // namespace
}  // namespace nodebench
