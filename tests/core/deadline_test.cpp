/// \file deadline_test.cpp
/// \brief The arm/disarm/expire lifecycle both watchdog loops (serve
/// request budgets, supervise heartbeat leases) depend on: fire-once
/// semantics, re-arm-as-upsert, race-tolerant disarm, and deterministic
/// expiry order.

#include "core/deadline.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace nodebench {
namespace {

using namespace std::chrono_literals;

DeadlineMonitor::Clock::time_point base() {
  // A fixed epoch: every assertion works in offsets from here, so the
  // tests never sleep.
  return DeadlineMonitor::Clock::time_point(std::chrono::seconds(1000));
}

TEST(DeadlineMonitor, ExpiredRemovesAndReturnsAtMostOnce) {
  DeadlineMonitor monitor;
  monitor.arm("a", base() + 100ms);
  EXPECT_EQ(monitor.armedCount(), 1u);
  EXPECT_TRUE(monitor.expired(base() + 99ms).empty());
  EXPECT_EQ(monitor.expired(base() + 100ms),
            (std::vector<std::string>{"a"}))
      << "a deadline fires at its exact time point";
  EXPECT_EQ(monitor.armedCount(), 0u);
  EXPECT_TRUE(monitor.expired(base() + 10s).empty())
      << "a fired deadline never fires again";
}

TEST(DeadlineMonitor, ExpiryOrderIsDeterministicById) {
  DeadlineMonitor monitor;
  monitor.arm("zebra", base() + 10ms);
  monitor.arm("alpha", base() + 20ms);
  monitor.arm("mid", base() + 15ms);
  monitor.arm("late", base() + 10min);
  EXPECT_EQ(monitor.expired(base() + 1s),
            (std::vector<std::string>{"alpha", "mid", "zebra"}));
  EXPECT_EQ(monitor.armedCount(), 1u) << "the unexpired entry survives";
}

TEST(DeadlineMonitor, ReArmIsAnUpsert) {
  DeadlineMonitor monitor;
  monitor.arm("hb:0", base() + 50ms);
  // The heartbeat monitor's pattern: every observed beat pushes the
  // expiry out.
  monitor.arm("hb:0", base() + 500ms);
  EXPECT_EQ(monitor.armedCount(), 1u);
  EXPECT_TRUE(monitor.expired(base() + 100ms).empty());
  EXPECT_EQ(monitor.expired(base() + 500ms),
            (std::vector<std::string>{"hb:0"}));
}

TEST(DeadlineMonitor, DisarmIsANoOpWhenNotArmed) {
  DeadlineMonitor monitor;
  monitor.disarm("never-armed");
  monitor.arm("a", base() + 10ms);
  ASSERT_EQ(monitor.expired(base() + 10ms).size(), 1u);
  // The completion race: work finishing after its deadline fired just
  // disarms nothing.
  monitor.disarm("a");
  EXPECT_EQ(monitor.armedCount(), 0u);
}

TEST(DeadlineMonitor, NextDeadlineTracksTheEarliestEntry) {
  DeadlineMonitor monitor;
  EXPECT_EQ(monitor.nextDeadline(), std::nullopt);
  monitor.arm("slow", base() + 1s);
  monitor.arm("fast", base() + 10ms);
  ASSERT_TRUE(monitor.nextDeadline().has_value());
  EXPECT_EQ(*monitor.nextDeadline(), base() + 10ms);
  monitor.disarm("fast");
  ASSERT_TRUE(monitor.nextDeadline().has_value());
  EXPECT_EQ(*monitor.nextDeadline(), base() + 1s);
  monitor.disarm("slow");
  EXPECT_EQ(monitor.nextDeadline(), std::nullopt);
}

}  // namespace
}  // namespace nodebench
