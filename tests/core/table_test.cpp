#include "core/table.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace nodebench {
namespace {

Table sample() {
  Table t({"Name", "Value"});
  t.addRow({"alpha", "1.0"});
  t.addRow({"beta", "20.5"});
  return t;
}

TEST(TableTest, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(TableTest, RowWidthMustMatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), PreconditionError);
  EXPECT_THROW(t.addRow({"1", "2", "3"}), PreconditionError);
}

TEST(TableTest, CellAccess) {
  Table t = sample();
  EXPECT_EQ(t.cell(0, 0), "alpha");
  EXPECT_EQ(t.cell(1, 1), "20.5");
  EXPECT_THROW((void)t.cell(2, 0), PreconditionError);
  EXPECT_THROW((void)t.cell(0, 2), PreconditionError);
}

TEST(TableTest, AsciiRenderContainsAlignedCells) {
  Table t = sample();
  t.setTitle("My Table");
  const std::string out = t.renderAscii();
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("| Name "), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  // Numeric column is right-aligned: "  1.0" not "1.0  ".
  EXPECT_NE(out.find(" 1.0 |"), std::string::npos);
}

TEST(TableTest, SeparatorRendersAsRule) {
  Table t({"x"});
  t.addRow({"1"});
  t.addSeparator();
  t.addRow({"2"});
  const std::string out = t.renderAscii();
  // header rule + top + separator + bottom = 4 rules
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TableTest, MarkdownRender) {
  Table t = sample();
  t.setCaption("caption here");
  const std::string out = t.renderMarkdown();
  EXPECT_NE(out.find("| Name | Value |"), std::string::npos);
  EXPECT_NE(out.find("| --- | ---: |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1.0 |"), std::string::npos);
  EXPECT_NE(out.find("*caption here*"), std::string::npos);
}

TEST(TableTest, CsvRenderEscapes) {
  Table t({"a", "b"});
  t.addRow({"plain", "has,comma"});
  t.addRow({"has\"quote", "x"});
  const std::string out = t.renderCsv();
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"has,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\",x\n"), std::string::npos);
}

TEST(TableTest, JsonRenderEscapesAndStructures) {
  Table t({"name", "value"});
  t.setTitle("ti\"tle");
  t.addRow({"line\nbreak", "quote\"inside"});
  t.addSeparator();
  t.addRow({"plain", "2"});
  const std::string json = t.renderJson();
  EXPECT_NE(json.find("\"title\": \"ti\\\"tle\""), std::string::npos);
  EXPECT_NE(json.find("\"line\\nbreak\""), std::string::npos);
  EXPECT_NE(json.find("\"quote\\\"inside\""), std::string::npos);
  // Separator rows are dropped: exactly two row arrays.
  std::size_t rows = 0;
  for (auto p = json.find("    ["); p != std::string::npos;
       p = json.find("    [", p + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(TableTest, SetAlignValidation) {
  Table t({"a"});
  EXPECT_NO_THROW(t.setAlign(0, Align::Left));
  EXPECT_THROW(t.setAlign(1, Align::Left), PreconditionError);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(3.0, 0), "3");
  EXPECT_EQ(formatFixed(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace nodebench
