#include "core/strings.hpp"

#include <gtest/gtest.h>

namespace nodebench {
namespace {

TEST(Strings, ToLower) {
  EXPECT_EQ(toLower("TRUE"), "true");
  EXPECT_EQ(toLower("MiXeD123"), "mixed123");
  EXPECT_EQ(toLower(""), "");
}

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Frontier", "frontier"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\tx\t"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Strings, Join) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  const std::vector<std::string> one{"x"};
  EXPECT_EQ(join(one, ","), "x");
  const std::vector<std::string> none;
  EXPECT_EQ(join(none, ","), "");
}

TEST(Strings, ParseUnsigned) {
  EXPECT_EQ(parseUnsigned("42"), 42u);
  EXPECT_EQ(parseUnsigned(" 7 "), 7u);
  EXPECT_EQ(parseUnsigned("0"), 0u);
  EXPECT_FALSE(parseUnsigned("").has_value());
  EXPECT_FALSE(parseUnsigned("-1").has_value());
  EXPECT_FALSE(parseUnsigned("4x").has_value());
  EXPECT_FALSE(parseUnsigned("99999999999999999999").has_value());
}

}  // namespace
}  // namespace nodebench
