#include <gtest/gtest.h>

#include "commscope/commscope.hpp"
#include "gpusim/gpu_runtime.hpp"
#include "machines/registry.hpp"

namespace nodebench::gpusim {
namespace {

using machines::byName;

TEST(ManagedMemory, StartsHostResident) {
  GpuRuntime rt(byName("Perlmutter"));
  const auto m = rt.allocManaged(ByteCount::mib(16));
  EXPECT_EQ(rt.managedResidency(m), -1);
}

TEST(ManagedMemory, PrefetchMigratesAndCostsTransferTime) {
  const auto& machine = byName("Perlmutter");
  GpuRuntime rt(machine);
  auto m = rt.allocManaged(ByteCount::gib(1));
  const auto stream = rt.defaultStream(0);
  rt.prefetchAsync(stream, m, 0);
  rt.streamSynchronize(stream);
  EXPECT_EQ(rt.managedResidency(m), 0);
  // ~1 GiB at ~25 GB/s / 0.9 efficiency: tens of milliseconds.
  EXPECT_GT(rt.hostNow().ms(), 30.0);
  EXPECT_LT(rt.hostNow().ms(), 80.0);
}

TEST(ManagedMemory, PrefetchToCurrentResidencyIsCheap) {
  GpuRuntime rt(byName("Perlmutter"));
  auto m = rt.allocManaged(ByteCount::gib(1));
  const auto stream = rt.defaultStream(0);
  rt.prefetchAsync(stream, m, -1);  // already on the host
  rt.streamSynchronize(stream);
  EXPECT_LT(rt.hostNow().us(), 5.0);  // call overhead + sync only
}

TEST(ManagedMemory, DemandPagingPaysPerPageFaults) {
  const auto& machine = byName("Perlmutter");
  GpuRuntime rt(machine);
  const ByteCount size = ByteCount::mib(64);
  const double pages =
      size.asDouble() / machine.device->umPageSize.asDouble();
  auto m = rt.allocManaged(size);
  const Duration storm = rt.touchManaged(m, 0);
  EXPECT_EQ(rt.managedResidency(m), 0);
  // At least pages * faultLatency.
  EXPECT_GT(storm.us(), pages * machine.device->umFaultLatency.us() * 0.99);
  // Touching again while resident is free.
  EXPECT_EQ(rt.touchManaged(m, 0), Duration::zero());
}

TEST(ManagedMemory, DemandSlowerThanPrefetchPerByte) {
  commscope::CommScope scope(byName("Frontier"));
  const ByteCount size = ByteCount::gib(1);
  const double prefetch = size.asDouble() / scope.truthUmPrefetchTime(size).ns();
  const double demand = size.asDouble() / scope.truthUmDemandTime(size).ns();
  EXPECT_GT(prefetch, 2.0 * demand);
}

TEST(ManagedMemory, PrefetchSlightlyUnderPinnedCopy) {
  commscope::CommScope scope(byName("Polaris"));
  commscope::Config cfg;
  cfg.binaryRuns = 5;
  const double pinned = scope.hostDeviceBandwidthGBps(cfg).mean;
  const double prefetch = scope.umPrefetchBandwidthGBps(cfg).mean;
  EXPECT_LT(prefetch, pinned);
  EXPECT_GT(prefetch, 0.7 * pinned);
}

TEST(ManagedMemory, Validation) {
  GpuRuntime rt(byName("Summit"));
  EXPECT_THROW((void)rt.allocManaged(ByteCount{0}), PreconditionError);
  auto m = rt.allocManaged(ByteCount::mib(1));
  EXPECT_THROW((void)rt.touchManaged(m, 99), PreconditionError);
  const auto stream = rt.defaultStream(0);
  EXPECT_THROW(rt.prefetchAsync(stream, m, 99), PreconditionError);
}

}  // namespace
}  // namespace nodebench::gpusim
