#include <gtest/gtest.h>

#include "gpusim/gpu_runtime.hpp"
#include "machines/registry.hpp"

namespace nodebench::gpusim {
namespace {

using machines::byName;
using namespace nodebench::literals;

TEST(GpuEvents, EventOnIdleStreamCompletesNow) {
  GpuRuntime rt(byName("Perlmutter"));
  const StreamId s = rt.defaultStream(0);
  rt.hostAdvance(5_us);
  const EventId e = rt.recordEvent(s);
  EXPECT_DOUBLE_EQ(rt.eventTime(e).us(), 5.0);
}

TEST(GpuEvents, EventWaitsForEnqueuedWork) {
  const auto& m = byName("Perlmutter");
  GpuRuntime rt(m);
  const StreamId s = rt.defaultStream(0);
  rt.launchKernel(s, 100_us);
  const EventId e = rt.recordEvent(s);
  EXPECT_DOUBLE_EQ(rt.eventTime(e).us(),
                   m.device->kernelLaunch.us() + 100.0);
}

TEST(GpuEvents, ElapsedBracketsKernelDuration) {
  // The cudaEvent timing idiom BabelStream's CUDA backend uses.
  const auto& m = byName("Summit");
  GpuRuntime rt(m);
  const StreamId s = rt.defaultStream(0);
  const EventId start = rt.recordEvent(s);
  rt.launchKernel(s, 250_us);
  const EventId stop = rt.recordEvent(s);
  EXPECT_NEAR(rt.eventElapsed(start, stop).us(),
              250.0 + m.device->kernelLaunch.us(), 1e-9);
}

TEST(GpuEvents, ElapsedRejectsReversedOrder) {
  GpuRuntime rt(byName("Summit"));
  const StreamId s = rt.defaultStream(0);
  const EventId a = rt.recordEvent(s);
  rt.launchKernel(s, 10_us);
  const EventId b = rt.recordEvent(s);
  EXPECT_THROW((void)rt.eventElapsed(b, a), PreconditionError);
}

TEST(GpuEvents, SynchronizeAdvancesHostPastEvent) {
  const auto& m = byName("Frontier");
  GpuRuntime rt(m);
  const StreamId s = rt.defaultStream(0);
  rt.launchKernel(s, 50_us);
  const EventId e = rt.recordEvent(s);
  rt.eventSynchronize(e);
  EXPECT_NEAR(rt.hostNow().us(),
              m.device->kernelLaunch.us() + 50.0 + m.device->syncWait.us(),
              1e-9);
}

TEST(GpuEvents, InvalidEventRejected) {
  GpuRuntime rt(byName("Frontier"));
  EXPECT_THROW((void)rt.eventTime(EventId{3}), PreconditionError);
  EXPECT_THROW((void)rt.eventTime(EventId{}), PreconditionError);
}

TEST(GpuEvents, ResetClearsEvents) {
  GpuRuntime rt(byName("Frontier"));
  const StreamId s = rt.defaultStream(0);
  const EventId e = rt.recordEvent(s);
  rt.reset();
  EXPECT_THROW((void)rt.eventTime(e), PreconditionError);
}

}  // namespace
}  // namespace nodebench::gpusim
