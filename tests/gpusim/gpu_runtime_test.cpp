#include "gpusim/gpu_runtime.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"

namespace nodebench::gpusim {
namespace {

using machines::byName;
using namespace nodebench::literals;

TEST(GpuRuntime, RequiresAcceleratorMachine) {
  EXPECT_THROW(GpuRuntime rt(byName("Eagle")), PreconditionError);
}

TEST(GpuRuntime, DeviceCountMatchesTopology) {
  GpuRuntime rt(byName("Summit"));
  EXPECT_EQ(rt.deviceCount(), 6);
  EXPECT_EQ(GpuRuntime(byName("Frontier")).deviceCount(), 8);
}

TEST(GpuRuntime, LaunchCostsHostTimeKernelRunsAsync) {
  const auto& m = byName("Perlmutter");
  GpuRuntime rt(m);
  const StreamId s = rt.defaultStream(0);
  rt.launchKernel(s, 100_us);
  // Host clock advanced only by the launch overhead.
  EXPECT_NEAR(rt.hostNow().us(), m.device->kernelLaunch.us(), 1e-12);
  EXPECT_FALSE(rt.streamQuery(s));
  // Synchronize drains the kernel plus the wait cost.
  rt.streamSynchronize(s);
  EXPECT_NEAR(rt.hostNow().us(),
              m.device->kernelLaunch.us() + 100.0 + m.device->syncWait.us(),
              1e-9);
  EXPECT_TRUE(rt.streamQuery(s));
}

TEST(GpuRuntime, EmptyQueueSynchronizeCostsWaitOnly) {
  const auto& m = byName("Frontier");
  GpuRuntime rt(m);
  rt.deviceSynchronize(0);
  EXPECT_NEAR(rt.hostNow().us(), m.device->syncWait.us(), 1e-12);
}

TEST(GpuRuntime, StreamsAreFifo) {
  const auto& m = byName("Polaris");
  GpuRuntime rt(m);
  const StreamId s = rt.createStream(0);
  rt.launchKernel(s, 10_us);
  rt.launchKernel(s, 20_us);
  const Duration tail = rt.streamTail(s);
  // Second kernel starts after the first: tail >= 30 us of kernel time.
  EXPECT_GE(tail.us(), 30.0);
  rt.streamSynchronize(s);
  EXPECT_GE(rt.hostNow(), tail);
}

TEST(GpuRuntime, IndependentStreamsOverlap) {
  const auto& m = byName("Polaris");
  GpuRuntime rt(m);
  const StreamId s0 = rt.createStream(0);
  const StreamId s1 = rt.createStream(1);
  rt.launchKernel(s0, 100_us);
  rt.launchKernel(s1, 100_us);
  rt.streamSynchronize(s0);
  rt.streamSynchronize(s1);
  // Overlapping execution: far less than 200 us + overheads.
  EXPECT_LT(rt.hostNow().us(), 150.0);
}

TEST(GpuRuntime, H2dTransferUsesHostLink) {
  const auto& m = byName("Perlmutter");
  GpuRuntime rt(m);
  const auto host = rt.allocPinnedHost(ByteCount::mib(1));
  const auto dev = rt.allocDevice(0, ByteCount::mib(1));
  const StreamId s = rt.defaultStream(0);
  rt.memcpyAsync(s, dev, host, ByteCount::mib(1));
  rt.streamSynchronize(s);
  const auto& link = m.topology.hostGpuLink(m.topology.gpu(topo::GpuId{0}).socket,
                                            topo::GpuId{0});
  const double expected =
      m.device->memcpyCallOverhead.us() + m.device->h2dDmaSetup.us() +
      link.latency.us() +
      link.bandwidth.transferTime(ByteCount::mib(1)).us() +
      m.device->syncWait.us();
  EXPECT_NEAR(rt.hostNow().us(), expected, 1e-9);
}

TEST(GpuRuntime, D2dDirectionSymmetry) {
  const auto& m = byName("Frontier");
  GpuRuntime rt(m);
  const auto b0 = rt.allocDevice(0, ByteCount::kib(1));
  const auto b1 = rt.allocDevice(1, ByteCount::kib(1));
  const StreamId s0 = rt.defaultStream(0);
  rt.memcpyAsync(s0, b1, b0, ByteCount::kib(1));
  rt.streamSynchronize(s0);
  const double fwd = rt.hostNow().us();
  rt.reset();
  const StreamId s1 = rt.defaultStream(1);
  rt.memcpyAsync(s1, b0, b1, ByteCount::kib(1));
  rt.streamSynchronize(s1);
  EXPECT_NEAR(rt.hostNow().us(), fwd, 1e-9);
}

TEST(GpuRuntime, D2dClassResidualApplied) {
  // Frontier class C (single IF link) is slower than class B (dual) per
  // the paper's Table 6; both slower than the class A anchor.
  const auto& m = byName("Frontier");
  GpuRuntime rt(m);
  const ByteCount sz = ByteCount::bytes(128);
  const auto timeFor = [&](topo::LinkClass c) {
    const auto pair = m.topology.representativePair(c);
    GpuRuntime fresh(m);
    const auto src = fresh.allocDevice(pair->first.value, sz);
    const auto dst = fresh.allocDevice(pair->second.value, sz);
    const StreamId s = fresh.defaultStream(pair->first.value);
    fresh.memcpyAsync(s, dst, src, sz);
    fresh.streamSynchronize(s);
    return fresh.hostNow().us();
  };
  EXPECT_NEAR(timeFor(topo::LinkClass::A), 12.02, 0.01);
  EXPECT_NEAR(timeFor(topo::LinkClass::B), 12.56, 0.01);
  EXPECT_NEAR(timeFor(topo::LinkClass::C), 12.68, 0.01);
  EXPECT_NEAR(timeFor(topo::LinkClass::D), 12.02, 0.01);
}

TEST(GpuRuntime, IntraDeviceCopyUsesHbm) {
  const auto& m = byName("Perlmutter");
  GpuRuntime rt(m);
  const auto a = rt.allocDevice(0, ByteCount::mib(64));
  const auto b = rt.allocDevice(0, ByteCount::mib(64));
  const StreamId s = rt.defaultStream(0);
  rt.memcpyAsync(s, b, a, ByteCount::mib(64));
  rt.streamSynchronize(s);
  const double expected =
      m.device->memcpyCallOverhead.us() + m.device->d2dDmaSetup.us() +
      2.0 * ByteCount::mib(64).asDouble() /
          m.device->hbmBw.bytesPerNanosecond() / 1000.0 +
      m.device->syncWait.us();
  EXPECT_NEAR(rt.hostNow().us(), expected, 1e-9);
}

TEST(GpuRuntime, AllocationValidation) {
  GpuRuntime rt(byName("Summit"));
  EXPECT_THROW((void)rt.allocDevice(99, ByteCount::kib(1)),
               PreconditionError);
  EXPECT_THROW((void)rt.allocDevice(0, ByteCount::gib(32)),
               PreconditionError);  // V100 has 16 GiB
  EXPECT_THROW((void)rt.allocPinnedHost(ByteCount{0}), PreconditionError);
}

TEST(GpuRuntime, MemcpyValidation) {
  GpuRuntime rt(byName("Summit"));
  const auto h = rt.allocPinnedHost(ByteCount::kib(1));
  const auto d = rt.allocDevice(0, ByteCount::kib(1));
  const StreamId s = rt.defaultStream(0);
  EXPECT_THROW(rt.memcpyAsync(s, d, h, ByteCount::kib(2)),
               PreconditionError);  // exceeds buffers
  const auto h2 = rt.allocPinnedHost(ByteCount::kib(1));
  EXPECT_THROW(rt.memcpyAsync(s, h2, h, ByteCount::kib(1)),
               PreconditionError);  // host-to-host
  const StreamId wrong = rt.defaultStream(1);
  EXPECT_THROW(rt.memcpyAsync(wrong, d, h, ByteCount::kib(1)),
               PreconditionError);  // stream on non-participating device
}

TEST(GpuRuntime, ResetClearsClocks) {
  GpuRuntime rt(byName("Polaris"));
  const StreamId s = rt.defaultStream(0);
  rt.launchKernel(s, 5_us);
  rt.streamSynchronize(s);
  EXPECT_GT(rt.hostNow(), Duration::zero());
  rt.reset();
  EXPECT_EQ(rt.hostNow(), Duration::zero());
  EXPECT_EQ(rt.streamTail(s), Duration::zero());
}

}  // namespace
}  // namespace nodebench::gpusim
