#include "topo/topology.hpp"

#include <gtest/gtest.h>

#include "topo/dot.hpp"

namespace nodebench::topo {
namespace {

using namespace nodebench::literals;

/// Small two-socket, two-GPU fixture.
NodeTopology smallGpuNode() {
  NodeTopology node;
  const SocketId s0 = node.addSocket("TestCPU");
  const SocketId s1 = node.addSocket("TestCPU");
  const NumaId n0 = node.addNumaDomain(s0);
  const NumaId n1 = node.addNumaDomain(s1);
  node.addCores(n0, 4, 2);
  node.addCores(n1, 4, 2);
  node.connectSockets(s0, s1, LinkType::XBus, 0.4_us, Bandwidth::gbps(64.0));
  const GpuId g0 = node.addGpu("TestGPU", s0, ByteCount::gib(16));
  const GpuId g1 = node.addGpu("TestGPU", s1, ByteCount::gib(16));
  node.connectHostGpu(s0, g0, LinkType::NVLink2, 0.55_us,
                      Bandwidth::gbps(50.0));
  node.connectHostGpu(s1, g1, LinkType::NVLink2, 0.55_us,
                      Bandwidth::gbps(50.0));
  node.setGpuFlavor(GpuInterconnectFlavor::NvlinkPcieMix);
  return node;
}

TEST(Topology, CountsAndAccessors) {
  const NodeTopology node = smallGpuNode();
  EXPECT_EQ(node.socketCount(), 2);
  EXPECT_EQ(node.numaCount(), 2);
  EXPECT_EQ(node.coreCount(), 8);
  EXPECT_EQ(node.gpuCount(), 2);
  EXPECT_EQ(node.socket(SocketId{0}).model, "TestCPU");
  EXPECT_EQ(node.core(CoreId{5}).socket, SocketId{1});
  EXPECT_EQ(node.gpu(GpuId{1}).socket, SocketId{1});
}

TEST(Topology, InvalidIdsThrow) {
  const NodeTopology node = smallGpuNode();
  EXPECT_THROW((void)node.socket(SocketId{2}), PreconditionError);
  EXPECT_THROW((void)node.core(CoreId{-1}), PreconditionError);
  EXPECT_THROW((void)node.gpu(GpuId{9}), PreconditionError);
}

TEST(Topology, CpuPathClassification) {
  const NodeTopology node = smallGpuNode();
  const CpuPath same = node.cpuPath(CoreId{0}, CoreId{1});
  EXPECT_TRUE(same.sameNuma);
  EXPECT_TRUE(same.sameSocket);
  EXPECT_FALSE(same.sameCore);
  const CpuPath cross = node.cpuPath(CoreId{0}, CoreId{4});
  EXPECT_FALSE(cross.sameNuma);
  EXPECT_FALSE(cross.sameSocket);
  const CpuPath self = node.cpuPath(CoreId{3}, CoreId{3});
  EXPECT_TRUE(self.sameCore);
}

TEST(Topology, MeshDistance) {
  NodeTopology node;
  const SocketId s = node.addSocket("KNL");
  const NumaId n = node.addNumaDomain(s);
  node.addMeshCore(n, MeshCoord{0, 0});
  node.addMeshCore(n, MeshCoord{0, 0});
  node.addMeshCore(n, MeshCoord{2, 3});
  EXPECT_EQ(node.cpuPath(CoreId{0}, CoreId{1}).meshDistance, 0);
  EXPECT_EQ(node.cpuPath(CoreId{0}, CoreId{2}).meshDistance, 5);
  EXPECT_EQ(node.cpuPath(CoreId{2}, CoreId{0}).meshDistance, 5);
}

TEST(Topology, CoresOfSocket) {
  const NodeTopology node = smallGpuNode();
  const auto cores = node.coresOfSocket(SocketId{1});
  ASSERT_EQ(cores.size(), 4u);
  EXPECT_EQ(cores.front(), (CoreId{4}));
  EXPECT_EQ(cores.back(), (CoreId{7}));
}

TEST(Topology, DirectAndRoutedGpuRoutes) {
  NodeTopology node = smallGpuNode();
  // No direct link yet: route goes gpu0 -> socket0 -> socket1 -> gpu1.
  EXPECT_EQ(node.directGpuLink(GpuId{0}, GpuId{1}), nullptr);
  const Route routed = node.routeGpuToGpu(GpuId{0}, GpuId{1});
  EXPECT_EQ(routed.hops.size(), 3u);
  EXPECT_DOUBLE_EQ(routed.latency.us(), 0.55 + 0.4 + 0.55);
  EXPECT_DOUBLE_EQ(routed.bottleneck.inGBps(), 50.0);

  node.connectGpuPeer(GpuId{0}, GpuId{1}, LinkType::NVLink2, 2, 0.3_us,
                      Bandwidth::gbps(50.0));
  const Route direct = node.routeGpuToGpu(GpuId{0}, GpuId{1});
  EXPECT_TRUE(direct.direct());
  EXPECT_DOUBLE_EQ(direct.latency.us(), 0.3);
}

TEST(Topology, RouteHostToGpuCrossSocket) {
  const NodeTopology node = smallGpuNode();
  const Route near = node.routeHostToGpu(SocketId{0}, GpuId{0});
  EXPECT_TRUE(near.direct());
  const Route far = node.routeHostToGpu(SocketId{0}, GpuId{1});
  EXPECT_EQ(far.hops.size(), 2u);
  EXPECT_DOUBLE_EQ(far.latency.us(), 0.4 + 0.55);
}

TEST(Topology, NvlinkMixClassification) {
  NodeTopology node = smallGpuNode();
  EXPECT_EQ(node.gpuPairClass(GpuId{0}, GpuId{1}), LinkClass::B);
  node.connectGpuPeer(GpuId{0}, GpuId{1}, LinkType::NVLink2, 2, 0.3_us,
                      Bandwidth::gbps(50.0));
  EXPECT_EQ(node.gpuPairClass(GpuId{0}, GpuId{1}), LinkClass::A);
}

TEST(Topology, InfinityFabricClassification) {
  NodeTopology node;
  const SocketId s = node.addSocket("EPYC");
  const NumaId n = node.addNumaDomain(s);
  node.addCores(n, 4);
  std::vector<GpuId> gcds;
  for (int i = 0; i < 4; ++i) {
    gcds.push_back(node.addGpu("GCD", s, ByteCount::gib(64)));
    node.connectHostGpu(s, gcds.back(), LinkType::InfinityFabric, 0.05_us,
                        Bandwidth::gbps(36.0));
  }
  node.connectGpuPeer(gcds[0], gcds[1], LinkType::InfinityFabric, 4, 0.09_us,
                      Bandwidth::gbps(200.0));
  node.connectGpuPeer(gcds[0], gcds[2], LinkType::InfinityFabric, 2, 0.09_us,
                      Bandwidth::gbps(100.0));
  node.connectGpuPeer(gcds[0], gcds[3], LinkType::InfinityFabric, 1, 0.09_us,
                      Bandwidth::gbps(50.0));
  node.setGpuFlavor(GpuInterconnectFlavor::InfinityFabric);
  EXPECT_EQ(node.gpuPairClass(gcds[0], gcds[1]), LinkClass::A);
  EXPECT_EQ(node.gpuPairClass(gcds[0], gcds[2]), LinkClass::B);
  EXPECT_EQ(node.gpuPairClass(gcds[0], gcds[3]), LinkClass::C);
  EXPECT_EQ(node.gpuPairClass(gcds[1], gcds[2]), LinkClass::D);
  const auto classes = node.presentGpuLinkClasses();
  ASSERT_EQ(classes.size(), 4u);
  EXPECT_EQ(classes[0], LinkClass::A);
  EXPECT_EQ(classes[3], LinkClass::D);
}

TEST(Topology, AllToAllClassification) {
  NodeTopology node;
  const SocketId s = node.addSocket("EPYC");
  const NumaId n = node.addNumaDomain(s);
  node.addCores(n, 4);
  const GpuId a = node.addGpu("A100", s, ByteCount::gib(40));
  const GpuId b = node.addGpu("A100", s, ByteCount::gib(40));
  node.connectHostGpu(s, a, LinkType::PCIe4, 0.4_us, Bandwidth::gbps(25.0));
  node.connectHostGpu(s, b, LinkType::PCIe4, 0.4_us, Bandwidth::gbps(25.0));
  node.setGpuFlavor(GpuInterconnectFlavor::NvlinkAllToAll);
  EXPECT_EQ(node.gpuPairClass(a, b), LinkClass::A);
  EXPECT_EQ(node.presentGpuLinkClasses().size(), 1u);
}

TEST(Topology, RepresentativePair) {
  const NodeTopology node = smallGpuNode();
  const auto pair = node.representativePair(LinkClass::B);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->first, (GpuId{0}));
  EXPECT_EQ(pair->second, (GpuId{1}));
  EXPECT_FALSE(node.representativePair(LinkClass::C).has_value());
}

TEST(Topology, LinkClassesEmptyOnCpuOnlyMachine) {
  NodeTopology node;
  const SocketId s = node.addSocket("Xeon");
  const NumaId n = node.addNumaDomain(s);
  node.addCores(n, 2);
  EXPECT_TRUE(node.presentGpuLinkClasses().empty());
}

TEST(Topology, MissingLinksThrowNotFound) {
  NodeTopology node = smallGpuNode();
  EXPECT_THROW((void)node.hostGpuLink(SocketId{0}, GpuId{1}), NotFoundError);
  NodeTopology single;
  const SocketId s = single.addSocket("X");
  (void)s;
  EXPECT_THROW((void)node.setHostGpuLinkBandwidth(SocketId{0}, GpuId{1},
                                                  Bandwidth::gbps(1.0)),
               NotFoundError);
}

TEST(Topology, SetHostGpuLinkBandwidth) {
  NodeTopology node = smallGpuNode();
  node.setHostGpuLinkBandwidth(SocketId{0}, GpuId{0}, Bandwidth::gbps(99.0));
  EXPECT_DOUBLE_EQ(node.hostGpuLink(SocketId{0}, GpuId{0}).bandwidth.inGBps(),
                   99.0);
}

TEST(Topology, LinkTypeAndClassNames) {
  EXPECT_EQ(linkTypeName(LinkType::NVLink2), "NVLink2");
  EXPECT_EQ(linkTypeName(LinkType::InfinityFabric), "InfinityFabric");
  EXPECT_EQ(linkClassName(LinkClass::A), "A");
  EXPECT_EQ(linkClassName(LinkClass::None), "-");
}

TEST(DotExport, ContainsNodesAndEdges) {
  const NodeTopology node = smallGpuNode();
  const std::string dot = toDot(node, "test");
  EXPECT_NE(dot.find("graph \"test\""), std::string::npos);
  EXPECT_NE(dot.find("socket0"), std::string::npos);
  EXPECT_NE(dot.find("gpu1"), std::string::npos);
  EXPECT_NE(dot.find("socket0 -- socket1"), std::string::npos);
  EXPECT_NE(dot.find("NVLink2"), std::string::npos);
}

}  // namespace
}  // namespace nodebench::topo
