#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "machines/registry.hpp"
#include "topo/topology.hpp"

namespace nodebench::topo {
namespace {

using machines::Machine;
using namespace nodebench::literals;

void expectSameRoute(const Route& cached, const Route& uncached) {
  // Both resolutions walk the same links_ vector, so the hop pointers —
  // not just the derived latency/bottleneck — must agree.
  ASSERT_EQ(cached.hops.size(), uncached.hops.size());
  for (std::size_t h = 0; h < cached.hops.size(); ++h) {
    EXPECT_EQ(cached.hops[h], uncached.hops[h]);
  }
  EXPECT_EQ(cached.latency, uncached.latency);
  EXPECT_EQ(cached.bottleneck.bytesPerNanosecond(),
            uncached.bottleneck.bytesPerNanosecond());
}

TEST(RouteCache, MatchesUncachedResolutionOnEveryMachine) {
  for (const Machine& m : machines::allMachines()) {
    const NodeTopology& node = m.topology;
    for (int a = 0; a < node.gpuCount(); ++a) {
      for (int b = 0; b < node.gpuCount(); ++b) {
        if (a == b) {
          continue;
        }
        expectSameRoute(node.routeGpuToGpu(GpuId{a}, GpuId{b}),
                        node.routeGpuToGpuUncached(GpuId{a}, GpuId{b}));
      }
    }
    for (int s = 0; s < node.socketCount(); ++s) {
      for (int g = 0; g < node.gpuCount(); ++g) {
        expectSameRoute(node.routeHostToGpu(SocketId{s}, GpuId{g}),
                        node.routeHostToGpuUncached(SocketId{s}, GpuId{g}));
      }
    }
  }
}

TEST(RouteCache, LinkClassesMatchUncachedOnEveryMachine) {
  for (const Machine* m : machines::gpuMachines()) {
    const NodeTopology& node = m->topology;
    for (int a = 0; a < node.gpuCount(); ++a) {
      for (int b = 0; b < node.gpuCount(); ++b) {
        if (a == b) {
          continue;
        }
        EXPECT_EQ(node.gpuPairClass(GpuId{a}, GpuId{b}),
                  node.gpuPairClassUncached(GpuId{a}, GpuId{b}))
            << m->info.name << " pair (" << a << "," << b << ")";
      }
    }
    for (const LinkClass c : node.presentGpuLinkClasses()) {
      const auto rep = node.representativePair(c);
      ASSERT_TRUE(rep.has_value());
      EXPECT_EQ(node.gpuPairClass(rep->first, rep->second), c);
    }
    EXPECT_FALSE(node.representativePair(LinkClass::None).has_value());
  }
}

TEST(RouteCache, RepeatedQueriesReturnTheSameObject) {
  const NodeTopology& node = machines::byName("Summit").topology;
  const Route& first = node.routeGpuToGpu(GpuId{0}, GpuId{1});
  const Route& second = node.routeGpuToGpu(GpuId{0}, GpuId{1});
  EXPECT_EQ(&first, &second);  // memoized, not recomputed
}

NodeTopology twoGpuNode() {
  NodeTopology node;
  const SocketId s0 = node.addSocket("CPU");
  const NumaId n0 = node.addNumaDomain(s0);
  node.addCores(n0, 2);
  const GpuId g0 = node.addGpu("GPU", s0, ByteCount::gib(16));
  const GpuId g1 = node.addGpu("GPU", s0, ByteCount::gib(16));
  node.connectHostGpu(s0, g0, LinkType::PCIe4, 0.5_us,
                      Bandwidth::gbps(25.0));
  node.connectHostGpu(s0, g1, LinkType::PCIe4, 0.5_us,
                      Bandwidth::gbps(25.0));
  node.setGpuFlavor(GpuInterconnectFlavor::NvlinkPcieMix);
  return node;
}

TEST(RouteCache, MutationInvalidatesCachedRoutes) {
  NodeTopology node = twoGpuNode();
  const Route before = node.routeGpuToGpu(GpuId{0}, GpuId{1});
  EXPECT_EQ(before.hops.size(), 2u);  // through the host
  EXPECT_EQ(node.gpuPairClass(GpuId{0}, GpuId{1}), LinkClass::B);

  node.connectGpuPeer(GpuId{0}, GpuId{1}, LinkType::NVLink3, 1, 0.1_us,
                      Bandwidth::gbps(100.0));
  const Route& after = node.routeGpuToGpu(GpuId{0}, GpuId{1});
  EXPECT_EQ(after.hops.size(), 1u);  // direct link wins now
  EXPECT_EQ(node.gpuPairClass(GpuId{0}, GpuId{1}), LinkClass::A);
}

TEST(RouteCache, BandwidthUpdateInvalidates) {
  NodeTopology node = twoGpuNode();
  const double before =
      node.routeHostToGpu(SocketId{0}, GpuId{0}).bottleneck
          .bytesPerNanosecond();
  node.setHostGpuLinkBandwidth(SocketId{0}, GpuId{0},
                               Bandwidth::gbps(50.0));
  const double after =
      node.routeHostToGpu(SocketId{0}, GpuId{0}).bottleneck
          .bytesPerNanosecond();
  EXPECT_NE(before, after);
}

TEST(RouteCache, CopiesRebuildTheirOwnCache) {
  const NodeTopology original = twoGpuNode();
  const Route& origRoute = original.routeGpuToGpu(GpuId{0}, GpuId{1});

  const NodeTopology copy = original;  // after the original built a cache
  const Route& copyRoute = copy.routeGpuToGpu(GpuId{0}, GpuId{1});
  expectSameRoute(copyRoute, copy.routeGpuToGpuUncached(GpuId{0}, GpuId{1}));

  // The copy's hops must point into the copy's own link storage, never
  // into the original's.
  const Link* copyBegin = copy.links().data();
  const Link* copyEnd = copyBegin + copy.links().size();
  for (const Link* hop : copyRoute.hops) {
    EXPECT_TRUE(hop >= copyBegin && hop < copyEnd);
  }
  for (const Link* hop : origRoute.hops) {
    EXPECT_FALSE(hop >= copyBegin && hop < copyEnd);
  }
}

TEST(RouteCache, ConcurrentFirstQueriesAgree) {
  // Many threads race the lazy build; all must observe the same memoized
  // routes (this is the case the tsan configuration scrutinises).
  const NodeTopology node = machines::byName("Frontier").topology;
  NodeTopology fresh = node;  // unprimed cache
  const Route* results[8] = {};
  {
    std::vector<std::thread> threads;
    threads.reserve(8);
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&fresh, &results, t] {
        results[t] = &fresh.routeGpuToGpu(GpuId{0}, GpuId{1});
      });
    }
    for (auto& th : threads) {
      th.join();
    }
  }
  for (int t = 1; t < 8; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
}

}  // namespace
}  // namespace nodebench::topo
