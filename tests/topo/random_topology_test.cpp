/// Randomized property tests: generate arbitrary valid topologies from a
/// seed and check that routing, classification and placement invariants
/// hold on shapes no hand-written machine exercises.

#include <gtest/gtest.h>

#include <set>

#include "core/rng.hpp"
#include "ompenv/placement.hpp"
#include "topo/topology.hpp"

namespace nodebench::topo {
namespace {

using namespace nodebench::literals;

/// Random node: 1-4 sockets x 1-4 NUMA x 2-8 cores, optionally 2-8 GPUs
/// with random peer links.
NodeTopology randomNode(std::uint64_t seed, bool withGpus) {
  Xoshiro256 rng(seed);
  NodeTopology node;
  const int sockets = 1 + static_cast<int>(rng.uniformInt(4));
  std::vector<SocketId> socketIds;
  for (int s = 0; s < sockets; ++s) {
    socketIds.push_back(node.addSocket("RndCPU"));
    const int numas = 1 + static_cast<int>(rng.uniformInt(4));
    for (int d = 0; d < numas; ++d) {
      const NumaId numa = node.addNumaDomain(socketIds.back());
      node.addCores(numa, 2 + static_cast<int>(rng.uniformInt(7)),
                    1 + static_cast<int>(rng.uniformInt(4)));
    }
  }
  for (int a = 0; a < sockets; ++a) {
    for (int b = a + 1; b < sockets; ++b) {
      node.connectSockets(socketIds[a], socketIds[b], LinkType::UPI,
                          0.1_us, Bandwidth::gbps(40.0));
    }
  }
  if (withGpus) {
    const int gpus = 2 + static_cast<int>(rng.uniformInt(7));
    std::vector<GpuId> gpuIds;
    for (int g = 0; g < gpus; ++g) {
      const SocketId home = socketIds[rng.uniformInt(sockets)];
      gpuIds.push_back(node.addGpu("RndGPU", home, ByteCount::gib(16)));
      node.connectHostGpu(home, gpuIds.back(), LinkType::PCIe4, 0.4_us,
                          Bandwidth::gbps(25.0));
    }
    for (int a = 0; a < gpus; ++a) {
      for (int b = a + 1; b < gpus; ++b) {
        if (rng.uniform01() < 0.5) {
          const int count = 1 << rng.uniformInt(3);  // 1, 2 or 4 links
          node.connectGpuPeer(gpuIds[a], gpuIds[b],
                              LinkType::InfinityFabric, count, 0.09_us,
                              Bandwidth::gbps(50.0 * count));
        }
      }
    }
    node.setGpuFlavor(GpuInterconnectFlavor::InfinityFabric);
  }
  return node;
}

class RandomTopologyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTopologyTest, CpuPathsAreSymmetricAndReflexive) {
  const NodeTopology node = randomNode(GetParam(), false);
  Xoshiro256 rng(GetParam() ^ 0xabcd);
  for (int trial = 0; trial < 20; ++trial) {
    const CoreId a{static_cast<int>(rng.uniformInt(node.coreCount()))};
    const CoreId b{static_cast<int>(rng.uniformInt(node.coreCount()))};
    const CpuPath ab = node.cpuPath(a, b);
    const CpuPath ba = node.cpuPath(b, a);
    EXPECT_EQ(ab.sameNuma, ba.sameNuma);
    EXPECT_EQ(ab.sameSocket, ba.sameSocket);
    EXPECT_EQ(ab.meshDistance, ba.meshDistance);
    if (a == b) {
      EXPECT_TRUE(ab.sameCore);
      EXPECT_TRUE(ab.sameNuma);
    }
    // sameNuma implies sameSocket (NUMA domains never span sockets).
    if (ab.sameNuma) {
      EXPECT_TRUE(ab.sameSocket);
    }
  }
}

TEST_P(RandomTopologyTest, EveryGpuPairRoutesAndClassifies) {
  const NodeTopology node = randomNode(GetParam(), true);
  for (int i = 0; i < node.gpuCount(); ++i) {
    for (int j = 0; j < node.gpuCount(); ++j) {
      if (i == j) {
        continue;
      }
      const Route route = node.routeGpuToGpu(GpuId{i}, GpuId{j});
      EXPECT_FALSE(route.hops.empty());
      EXPECT_GT(route.latency, Duration::zero());
      EXPECT_GT(route.bottleneck.inGBps(), 0.0);
      for (const Link* hop : route.hops) {
        EXPECT_GE(hop->bandwidth.inGBps(), route.bottleneck.inGBps());
      }
      const LinkClass c = node.gpuPairClass(GpuId{i}, GpuId{j});
      // Direct link <=> class A/B/C under the InfinityFabric flavour.
      EXPECT_EQ(node.directGpuLink(GpuId{i}, GpuId{j}) != nullptr,
                c != LinkClass::D);
    }
  }
}

TEST_P(RandomTopologyTest, PresentClassesHaveRepresentatives) {
  const NodeTopology node = randomNode(GetParam(), true);
  for (const LinkClass c : node.presentGpuLinkClasses()) {
    const auto pair = node.representativePair(c);
    ASSERT_TRUE(pair.has_value());
    EXPECT_EQ(node.gpuPairClass(pair->first, pair->second), c);
  }
}

TEST_P(RandomTopologyTest, PlacementsRemainValidOnArbitraryShapes) {
  const NodeTopology node = randomNode(GetParam(), false);
  for (const auto bind :
       {ompenv::ProcBind::NotSet, ompenv::ProcBind::Close,
        ompenv::ProcBind::Spread}) {
    for (const int threads : {1, 3, node.coreCount(), 10000}) {
      const auto p = ompenv::place(
          node, ompenv::OmpConfig{threads, bind, ompenv::Places::NotSet});
      EXPECT_GE(p.threadCount(), 1);
      std::set<std::pair<int, int>> seen;
      for (const auto& t : p.threads) {
        EXPECT_LT(t.core.value, node.coreCount());
        EXPECT_LT(t.smtSlot, node.core(t.core).smtThreads);
        EXPECT_TRUE(seen.insert({t.core.value, t.smtSlot}).second);
      }
      EXPECT_LE(p.coresUsed(), node.coreCount());
      EXPECT_LE(p.socketsUsed(node), node.socketCount());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

}  // namespace
}  // namespace nodebench::topo
