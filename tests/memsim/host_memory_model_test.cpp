#include "memsim/host_memory_model.hpp"

#include <gtest/gtest.h>

#include "machines/registry.hpp"
#include "ompenv/placement.hpp"

namespace nodebench::memsim {
namespace {

using machines::byName;
using ompenv::OmpConfig;
using ompenv::Places;
using ompenv::ProcBind;

ompenv::ThreadPlacement placed(const machines::Machine& m, int threads,
                               ProcBind bind = ProcBind::Spread,
                               Places places = Places::Cores) {
  return ompenv::place(m.topology, OmpConfig{threads, bind, places});
}

const ByteCount big = ByteCount::gib(4);  // far outside any LLC

TEST(HostMemoryModel, SingleBoundThreadMatchesCalibration) {
  const auto& m = byName("Eagle");
  HostMemoryModel model(m);
  const auto p = placed(m, 1, ProcBind::True, Places::NotSet);
  EXPECT_NEAR(model.achievableBandwidth(p, big).inGBps(), 13.45, 1e-9);
}

TEST(HostMemoryModel, FullBoundTeamMatchesCalibration) {
  const auto& m = byName("Eagle");
  HostMemoryModel model(m);
  const auto p = placed(m, m.coreCount());
  // 1e-6 tolerance: the 4 GiB working set sits deep past the LLC knee but
  // the smooth boost still contributes a ~1e-8 residual.
  EXPECT_NEAR(model.achievableBandwidth(p, big).inGBps(), 208.24, 1e-6);
}

TEST(HostMemoryModel, BandwidthScalesWithCoresUntilSaturation) {
  const auto& m = byName("Manzano");
  HostMemoryModel model(m);
  double prev = 0.0;
  for (int threads : {1, 2, 4, 8, 16, 32, 48}) {
    const double bw =
        model.achievableBandwidth(placed(m, threads), big).inGBps();
    EXPECT_GE(bw, prev - 1e-9) << threads << " threads";
    prev = bw;
  }
  // Core-limited region is linear: 2 threads = 2x one thread.
  const double one = model.achievableBandwidth(placed(m, 1), big).inGBps();
  const double two = model.achievableBandwidth(placed(m, 2), big).inGBps();
  EXPECT_NEAR(two, 2.0 * one, 1e-9);
}

TEST(HostMemoryModel, UnboundTeamIsSlower) {
  const auto& m = byName("Sawtooth");
  HostMemoryModel model(m);
  const auto bound = placed(m, m.coreCount(), ProcBind::True, Places::NotSet);
  const auto unbound =
      placed(m, m.coreCount(), ProcBind::NotSet, Places::NotSet);
  EXPECT_LT(model.achievableBandwidth(unbound, big).inGBps(),
            model.achievableBandwidth(bound, big).inGBps());
}

TEST(HostMemoryModel, UnboundSingleThreadPenaltyIsSmaller) {
  const auto& m = byName("Sawtooth");
  HostMemoryModel model(m);
  const double bound1 =
      model
          .achievableBandwidth(placed(m, 1, ProcBind::True, Places::NotSet),
                               big)
          .inGBps();
  const double unbound1 =
      model
          .achievableBandwidth(placed(m, 1, ProcBind::NotSet, Places::NotSet),
                               big)
          .inGBps();
  const double ratio1 = unbound1 / bound1;
  EXPECT_LT(ratio1, 1.0);
  EXPECT_GT(ratio1, m.hostMemory.unboundFactor);  // milder than team penalty
}

TEST(HostMemoryModel, SmtOccupancyAppliesFactor) {
  const auto& m = byName("Manzano");  // smtFactor = 0.97
  HostMemoryModel model(m);
  const auto coresOnly =
      placed(m, m.coreCount(), ProcBind::True, Places::NotSet);
  const auto allThreads =
      placed(m, m.hardwareThreadCount(), ProcBind::Close, Places::Threads);
  const double a = model.achievableBandwidth(coresOnly, big).inGBps();
  const double b = model.achievableBandwidth(allThreads, big).inGBps();
  EXPECT_NEAR(b, a * 0.97, 1e-9);
}

TEST(HostMemoryModel, CacheResidentWorkingSetIsFaster) {
  const auto& m = byName("Eagle");
  HostMemoryModel model(m);
  const auto p = placed(m, 1, ProcBind::True, Places::NotSet);
  const double dram =
      model.achievableBandwidth(p, ByteCount::gib(4)).inGBps();
  const double cached =
      model.achievableBandwidth(p, ByteCount::mib(4)).inGBps();
  EXPECT_GT(cached, 1.5 * dram);
}

TEST(HostMemoryModel, KnlCacheModeOverrideRestoresFlatBandwidth) {
  const auto& m = byName("Trinity");
  HostMemoryModel model(m);
  const auto p = placed(m, m.coreCount(), ProcBind::True, Places::NotSet);
  const double cached = model.achievableBandwidth(p, big).inGBps();
  model.setCacheModeOverride(1.0);  // flat-mode what-if
  const double flat = model.achievableBandwidth(p, big).inGBps();
  EXPECT_NEAR(flat / cached, m.hostMemory.cacheModeOverhead, 1e-9);
  EXPECT_THROW(model.setCacheModeOverride(0.5), PreconditionError);
}

TEST(HostMemoryModel, TransferTimeIsTrafficOverBandwidth) {
  const auto& m = byName("Eagle");
  HostMemoryModel model(m);
  const auto p = placed(m, 1, ProcBind::True, Places::NotSet);
  const ByteCount traffic = ByteCount::gb(27);
  const Duration t = model.transferTime(traffic, big, p);
  EXPECT_NEAR(t.s(), 27.0 / 13.45, 1e-9);
  EXPECT_THROW((void)model.transferTime(ByteCount{0}, big, p),
               PreconditionError);
}

TEST(HostMemoryModel, WriteAllocateFlagReflectsMachine) {
  EXPECT_TRUE(HostMemoryModel(byName("Eagle")).writeAllocate());
}

TEST(HostMemoryModel, EmptyPlacementRejected) {
  const auto& m = byName("Eagle");
  HostMemoryModel model(m);
  ompenv::ThreadPlacement empty;
  EXPECT_THROW((void)model.achievableBandwidth(empty, big),
               PreconditionError);
}

}  // namespace
}  // namespace nodebench::memsim
