#include "babelstream/driver.hpp"

#include <gtest/gtest.h>

#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "machines/registry.hpp"

namespace nodebench::babelstream {
namespace {

using machines::byName;
using ompenv::OmpConfig;
using ompenv::Places;
using ompenv::ProcBind;

TEST(Kernels, CountedFactorsMatchBabelStream40) {
  // Paper §3.1: numerator is 2x allocation for copy/mul/dot, 3x for
  // add/triad.
  EXPECT_DOUBLE_EQ(countedFactor(StreamOp::Copy), 2.0);
  EXPECT_DOUBLE_EQ(countedFactor(StreamOp::Mul), 2.0);
  EXPECT_DOUBLE_EQ(countedFactor(StreamOp::Dot), 2.0);
  EXPECT_DOUBLE_EQ(countedFactor(StreamOp::Add), 3.0);
  EXPECT_DOUBLE_EQ(countedFactor(StreamOp::Triad), 3.0);
}

TEST(Kernels, WriteAllocateAddsOneFillPerStore) {
  for (const StreamOp op : {StreamOp::Copy, StreamOp::Mul, StreamOp::Add,
                            StreamOp::Triad}) {
    EXPECT_DOUBLE_EQ(actualFactor(op, true), countedFactor(op) + 1.0);
    EXPECT_DOUBLE_EQ(actualFactor(op, false), countedFactor(op));
  }
  // Dot has no store: identical either way.
  EXPECT_DOUBLE_EQ(actualFactor(StreamOp::Dot, true), 2.0);
  EXPECT_DOUBLE_EQ(actualFactor(StreamOp::Dot, false), 2.0);
}

TEST(Kernels, ArraysTouched) {
  EXPECT_EQ(arraysTouched(StreamOp::Copy), 2);
  EXPECT_EQ(arraysTouched(StreamOp::Add), 3);
  EXPECT_EQ(arraysTouched(StreamOp::Triad), 3);
  EXPECT_EQ(arraysTouched(StreamOp::Dot), 2);
}

TEST(Kernels, CountedBytes) {
  EXPECT_EQ(countedBytes(StreamOp::Triad, ByteCount::mib(1)).count(),
            3u * 1024 * 1024);
}

TEST(Kernels, Names) {
  EXPECT_EQ(streamOpName(StreamOp::Triad), "Triad");
  EXPECT_EQ(streamOpName(StreamOp::Dot), "Dot");
}

TEST(OmpBackend, DotWinsOnWriteAllocateHosts) {
  // With write-allocate, Dot is the only op whose counted bytes equal its
  // actual traffic, so it reports the highest bandwidth — the emergent
  // reason "best over all ops" lands on Dot for the CPU tables.
  const auto& m = byName("Sawtooth");
  SimOmpBackend backend(
      m, OmpConfig{m.coreCount(), ProcBind::Spread, Places::Cores});
  DriverConfig cfg;
  cfg.binaryRuns = 20;
  const RunResult result = run(backend, cfg);
  EXPECT_EQ(result.best().op, StreamOp::Dot);
  // And copy/mul report 2/3 of dot (counted 2S, actual 3S).
  const auto find = [&](StreamOp op) -> const OpResult& {
    for (const auto& r : result.ops) {
      if (r.op == op) {
        return r;
      }
    }
    throw Error("missing op");
  };
  EXPECT_NEAR(find(StreamOp::Copy).bandwidthGBps.mean /
                  find(StreamOp::Dot).bandwidthGBps.mean,
              2.0 / 3.0, 0.02);
  EXPECT_NEAR(find(StreamOp::Triad).bandwidthGBps.mean /
                  find(StreamOp::Dot).bandwidthGBps.mean,
              3.0 / 4.0, 0.02);
}

TEST(OmpBackend, BoundSpreadBeatsUnbound) {
  const auto& m = byName("Eagle");
  SimOmpBackend bound(m,
                      OmpConfig{m.coreCount(), ProcBind::Spread, Places::Cores});
  SimOmpBackend unbound(
      m, OmpConfig{m.coreCount(), ProcBind::NotSet, Places::NotSet});
  DriverConfig cfg;
  cfg.binaryRuns = 10;
  EXPECT_GT(run(bound, cfg).best().bandwidthGBps.mean,
            run(unbound, cfg).best().bandwidthGBps.mean);
}

TEST(OmpBackend, NoiseCvTracksTeamSize) {
  const auto& m = byName("Sawtooth");
  SimOmpBackend single(m, OmpConfig{1, ProcBind::True, Places::NotSet});
  SimOmpBackend team(m,
                     OmpConfig{m.coreCount(), ProcBind::True, Places::NotSet});
  EXPECT_DOUBLE_EQ(single.noiseCv(), m.hostMemory.cvSingle);
  EXPECT_DOUBLE_EQ(team.noiseCv(), m.hostMemory.cvAll);
}

TEST(DeviceBackend, TriadWinsOnDevices) {
  // Without write-allocate every op runs at HBM rate, so the op with the
  // most counted traffic per launch+sync overhead wins: Triad/Add.
  const auto& m = byName("Perlmutter");
  SimDeviceBackend backend(m, 0);
  DriverConfig cfg;
  cfg.arrayBytes = ByteCount::gib(1);
  cfg.binaryRuns = 20;
  const RunResult result = run(backend, cfg);
  EXPECT_TRUE(result.best().op == StreamOp::Triad ||
              result.best().op == StreamOp::Add);
}

TEST(DeviceBackend, ReportedBandwidthMatchesPaperTarget) {
  for (const char* name : {"Frontier", "Summit", "Polaris"}) {
    const auto& m = byName(name);
    SimDeviceBackend backend(m, 0);
    DriverConfig cfg;
    cfg.arrayBytes = ByteCount::gib(1);
    cfg.binaryRuns = 50;
    const double measured = run(backend, cfg).best().bandwidthGBps.mean;
    const double target = name == std::string("Frontier")   ? 1336.35
                          : name == std::string("Summit")   ? 786.43
                                                            : 1362.75;
    EXPECT_NEAR(measured / target, 1.0, 0.01) << name;
  }
}

TEST(DeviceBackend, InvalidDeviceRejected) {
  EXPECT_THROW(SimDeviceBackend(byName("Polaris"), 4), PreconditionError);
}

TEST(Driver, BandwidthIncreasesWithSizeUntilPlateau) {
  // On the device backend small vectors are launch-overhead dominated;
  // the size sweep must be monotone non-decreasing up to the plateau.
  const auto& m = byName("Frontier");
  SimDeviceBackend backend(m, 0);
  DriverConfig cfg;
  cfg.arrayBytes = ByteCount::mib(256);
  cfg.binaryRuns = 5;
  const auto sweep = sizeSweep(backend, StreamOp::Triad, cfg);
  ASSERT_GT(sweep.size(), 10u);
  EXPECT_LT(sweep.front().bandwidthGBps.mean,
            0.5 * sweep.back().bandwidthGBps.mean);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i].bandwidthGBps.mean,
              0.9 * sweep[i - 1].bandwidthGBps.mean);
  }
}

TEST(Driver, SummaryCountsMatchBinaryRuns) {
  const auto& m = byName("Eagle");
  SimOmpBackend backend(m, OmpConfig{1, ProcBind::True, Places::NotSet});
  DriverConfig cfg;
  cfg.binaryRuns = 33;
  const RunResult result = run(backend, cfg);
  ASSERT_EQ(result.ops.size(), 5u);
  for (const auto& op : result.ops) {
    EXPECT_EQ(op.bandwidthGBps.count, 33u);
    EXPECT_GT(op.bandwidthGBps.mean, 0.0);
  }
}

TEST(Driver, DeterministicForFixedSeed) {
  const auto& m = byName("Eagle");
  SimOmpBackend backend(m, OmpConfig{1, ProcBind::True, Places::NotSet});
  DriverConfig cfg;
  cfg.binaryRuns = 10;
  const double a = run(backend, cfg).best().bandwidthGBps.mean;
  const double b = run(backend, cfg).best().bandwidthGBps.mean;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Driver, ValidatesConfig) {
  const auto& m = byName("Eagle");
  SimOmpBackend backend(m, OmpConfig{1, ProcBind::True, Places::NotSet});
  DriverConfig cfg;
  cfg.binaryRuns = 0;
  EXPECT_THROW((void)run(backend, cfg), PreconditionError);
}

}  // namespace
}  // namespace nodebench::babelstream
