#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <set>

#include "babelstream/driver.hpp"
#include "native/pingpong_native.hpp"
#include "native/stream_native.hpp"
#include "native/thread_team.hpp"

namespace nodebench::native {
namespace {

TEST(ThreadTeam, RunsEveryIndexExactlyOnce) {
  ThreadTeam team(4);
  std::atomic<int> mask{0};
  team.parallel([&](int tid) { mask.fetch_or(1 << tid); });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(ThreadTeam, ReusableAcrossRegions) {
  ThreadTeam team(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    team.parallel([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 30);
}

TEST(ThreadTeam, SizeValidation) {
  EXPECT_THROW(ThreadTeam team(0), PreconditionError);
  ThreadTeam one(1);
  EXPECT_EQ(one.size(), 1);
  int ran = 0;
  one.parallel([&](int tid) {
    EXPECT_EQ(tid, 0);
    ++ran;
  });
  EXPECT_EQ(ran, 1);
}

TEST(ThreadTeam, RejectsNullTask) {
  ThreadTeam team(2);
  EXPECT_THROW(team.parallel(nullptr), PreconditionError);
}

TEST(NativeStream, MeasuresPositiveTimes) {
  NativeStreamBackend backend(1, /*pinToCores=*/false);
  for (const auto op :
       {babelstream::StreamOp::Copy, babelstream::StreamOp::Mul,
        babelstream::StreamOp::Add, babelstream::StreamOp::Triad,
        babelstream::StreamOp::Dot}) {
    const Duration t = backend.iterationTime(op, ByteCount::mib(4));
    EXPECT_GT(t, Duration::zero()) << babelstream::streamOpName(op);
    EXPECT_LT(t.s(), 5.0);
  }
}

TEST(NativeStream, DotAccumulatesIntoSink) {
  NativeStreamBackend backend(2, false);
  (void)backend.iterationTime(babelstream::StreamOp::Dot, ByteCount::mib(1));
  // a = 0.1, b = 0.2 -> dot = n * 0.02 with n = 1 MiB / 8.
  EXPECT_GT(backend.sink(), 0.0);
}

TEST(NativeStream, WorksThroughTheSharedDriver) {
  // The same driver used for the simulated DOE machines runs against real
  // memory: instrument realism, one of the repo's design goals.
  NativeStreamBackend backend(2, false);
  babelstream::DriverConfig cfg;
  cfg.arrayBytes = ByteCount::mib(8);
  cfg.binaryRuns = 3;
  const auto result = babelstream::run(backend, cfg);
  ASSERT_EQ(result.ops.size(), 5u);
  for (const auto& op : result.ops) {
    EXPECT_GT(op.bandwidthGBps.mean, 0.05)
        << babelstream::streamOpName(op.op);
    EXPECT_LT(op.bandwidthGBps.mean, 10000.0);
  }
}

TEST(NativeStream, NameIncludesThreadCount) {
  NativeStreamBackend backend(3, false);
  EXPECT_EQ(backend.name(), "native(3 threads)");
  EXPECT_DOUBLE_EQ(backend.noiseCv(), 0.0);
}

TEST(NativePingPong, SmallMessageLatencyIsPlausible) {
  NativePingPongConfig cfg;
  cfg.iterations = 2000;
  cfg.warmupIterations = 200;
  // Best of five: any single run can be inflated by scheduler preemption
  // when the whole suite runs in parallel.
  double ns = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < 5; ++trial) {
    ns = std::min(ns, nativePingPongOneWay(cfg).ns());
  }
  EXPECT_GT(ns, 1.0);           // faster than a nanosecond is impossible
  EXPECT_LT(ns, 1000.0 * 1e3);  // slower than a millisecond means a bug
}

TEST(NativePingPong, PayloadIncreasesLatency) {
  NativePingPongConfig small;
  small.iterations = 500;
  NativePingPongConfig big = small;
  big.messageSize = ByteCount::kib(256);
  // Real wall-clock measurements: a descheduled spin-wait can inflate any
  // single run by milliseconds when the test suite saturates the machine,
  // so compare best-of-N (the usual latency discipline) instead of one
  // sample of each.
  double s = std::numeric_limits<double>::infinity();
  double b = std::numeric_limits<double>::infinity();
  for (int trial = 0; trial < 5; ++trial) {
    s = std::min(s, nativePingPongOneWay(small).ns());
    b = std::min(b, nativePingPongOneWay(big).ns());
  }
  EXPECT_GT(b, s);
}

TEST(NativePingPong, ZeroByteMessagesWork) {
  NativePingPongConfig cfg;
  cfg.messageSize = ByteCount{0};
  cfg.iterations = 500;
  EXPECT_GT(nativePingPongOneWay(cfg).ns(), 0.0);
}

TEST(NativePingPong, ConfigValidation) {
  NativePingPongConfig cfg;
  cfg.iterations = 0;
  EXPECT_THROW((void)nativePingPongOneWay(cfg), PreconditionError);
}

}  // namespace
}  // namespace nodebench::native
