/// \file bench_table2_3_systems.cpp
/// \brief Regenerates the system inventories of Tables 2 and 3.

#include <cstdio>

#include "report/tables.hpp"

int main() {
  using namespace nodebench;
  std::fputs(report::buildTable2().renderAscii().c_str(), stdout);
  std::printf("\n");
  std::fputs(report::buildTable3().renderAscii().c_str(), stdout);
  return 0;
}
