/// \file bench_ablation_knl_modes.cpp
/// \brief Ablation: the paper attributes part of the KNL systems'
/// below-peak bandwidth to "overheads of managing the cache" in quad
/// cache mode. This bench re-runs the Table 4 BabelStream measurement on
/// Trinity and Theta with the cache-management overhead removed (flat /
/// MCDRAM-as-memory what-if).

#include <cstdio>

#include "babelstream/driver.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  Table t({"System", "Mode", "Single (GB/s)", "All (GB/s)"});
  t.setTitle("KNL MCDRAM mode what-if (quad-cache vs flat)");

  for (const char* name : {"Trinity", "Theta"}) {
    const machines::Machine& m = machines::byName(name);
    babelstream::DriverConfig cfg;
    cfg.binaryRuns = opt.binaryRuns;
    cfg.arrayBytes = opt.cpuArrayBytes;

    const auto measure = [&](bool flat, const ompenv::OmpConfig& omp) {
      babelstream::SimOmpBackend backend(m, omp);
      if (flat) {
        backend.setCacheModeOverride(1.0);
      }
      return babelstream::run(backend, cfg).best().bandwidthGBps;
    };

    const ompenv::OmpConfig one{1, ompenv::ProcBind::True,
                                ompenv::Places::NotSet};
    const ompenv::OmpConfig all{m.coreCount(), ompenv::ProcBind::Spread,
                                ompenv::Places::Cores};
    t.addRow({name, "quad-cache (measured)", measure(false, one).toString(),
              measure(false, all).toString()});
    t.addRow({name, "flat (what-if)", measure(true, one).toString(),
              measure(true, all).toString()});
  }
  std::fputs(t.renderAscii().c_str(), stdout);
  std::printf(
      "\nThe flat-mode rows remove the modelled 15%% cache-management "
      "factor. Even so, Theta stays far below Intel's >450 GB/s MCDRAM "
      "figure: the calibration preserves the paper's 'suspiciously low' "
      "Theta anomaly rather than explaining it away.\n");
  return 0;
}
