/// \file bench_simcore_gbench.cpp
/// \brief google-benchmark microbenchmarks of the simulation substrate
/// itself: how fast the event queue, virtual-time scheduler, simulated
/// MPI ping-pong and GPU runtime execute on the build host. These guard
/// the harness's own performance (the table benches run hundreds of
/// simulated benchmarks).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "gpusim/gpu_runtime.hpp"
#include "machines/registry.hpp"
#include "mpisim/analytic.hpp"
#include "mpisim/world.hpp"
#include "netsim/network.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "sim/event_queue.hpp"
#include "sim/vt_scheduler.hpp"
#include "trace/trace.hpp"

/// Process-wide allocation counter (one relaxed increment per operator
/// new) so BM_EventQueueSteadyState can *prove* the hot loop is
/// allocation-free instead of asserting it in a comment.
std::atomic<std::uint64_t> g_allocCount{0};

void* countedAlloc(std::size_t n) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new(std::size_t n) { return countedAlloc(n); }
void* operator new[](std::size_t n) { return countedAlloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace nodebench;

/// Pins the analytic fast path for one benchmark body and restores it.
class FastPathGuard {
 public:
  explicit FastPathGuard(bool on)
      : prev_(mpisim::analytic::fastPathEnabled()) {
    mpisim::analytic::setFastPathEnabled(on);
  }
  ~FastPathGuard() { mpisim::analytic::setFastPathEnabled(prev_); }
  FastPathGuard(const FastPathGuard&) = delete;
  FastPathGuard& operator=(const FastPathGuard&) = delete;

 private:
  bool prev_;
};

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < events; ++i) {
      q.scheduleAt(Duration::nanoseconds(static_cast<double>(i % 97)),
                   [&sink] { ++sink; });
    }
    q.runAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_EventQueueSteadyState(benchmark::State& state) {
  // A self-rescheduling event chain: after the pool warms up, every
  // schedule reuses the slot the running event just vacated (DESIGN.md
  // §12 owned-slot pop). The allocs_per_event counter — measured with
  // the binary's counting operator new — must stay at 0.
  // The chain closure captures a single pointer so the std::function fits
  // its small-object buffer — any allocation counted below is the
  // queue's own.
  struct Chain {
    sim::EventQueue q;
    int remaining = 0;
    void schedule() {
      Chain* self = this;
      q.scheduleAfter(Duration::nanoseconds(10.0), [self] {
        if (--self->remaining > 0) {
          self->schedule();
        }
      });
    }
  };
  constexpr int kEvents = 4096;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Chain chain;
    chain.remaining = kEvents;
    chain.schedule();
    chain.q.step();  // warm the pool: the first schedule grew the slot vector
    const std::uint64_t before =
        g_allocCount.load(std::memory_order_relaxed);
    state.ResumeTiming();
    chain.q.runAll();
    state.PauseTiming();
    allocs += g_allocCount.load(std::memory_order_relaxed) - before;
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
  state.counters["allocs_per_event"] = benchmark::Counter(
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() * kEvents));
}
BENCHMARK(BM_EventQueueSteadyState);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_XoshiroNormal(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_XoshiroNormal);

void BM_WelfordAdd(benchmark::State& state) {
  Welford w;
  double x = 0.0;
  for (auto _ : state) {
    w.add(x);
    x += 0.5;
  }
  benchmark::DoNotOptimize(w.count());
}
BENCHMARK(BM_WelfordAdd);

void BM_VtSchedulerSwitch(benchmark::State& state) {
  // Two processes leapfrogging: measures the handoff cost that bounds
  // simulated ping-pong throughput.
  const int steps = 256;
  for (auto _ : state) {
    sim::VirtualTimeScheduler sched;
    const auto proc = [](sim::VirtualProcess& p) {
      for (int i = 0; i < steps; ++i) {
        p.advance(Duration::nanoseconds(10.0));
      }
    };
    sched.run({proc, proc});
    benchmark::DoNotOptimize(sched.switchCount());
  }
  state.SetItemsProcessed(state.iterations() * 2 * steps);
}
BENCHMARK(BM_VtSchedulerSwitch);

void BM_VtSchedulerSwitchMode(benchmark::State& state) {
  // The same leapfrog pinned to one execution mode (0 = Threads,
  // 1 = Cooperative): the ratio is the kernel-handoff cost the fiber
  // mode removes (DESIGN.md §12).
  using Mode = sim::VirtualTimeScheduler::Mode;
  const Mode mode = state.range(0) == 0 ? Mode::Threads : Mode::Cooperative;
  if (mode == Mode::Cooperative &&
      !sim::VirtualTimeScheduler::cooperativeSupported()) {
    state.SkipWithError("cooperative mode not supported in this build");
    return;
  }
  const int steps = 256;
  for (auto _ : state) {
    sim::VirtualTimeScheduler sched;
    sched.setMode(mode);
    const auto proc = [](sim::VirtualProcess& p) {
      for (int i = 0; i < steps; ++i) {
        p.advance(Duration::nanoseconds(10.0));
      }
    };
    sched.run({proc, proc});
    benchmark::DoNotOptimize(sched.switchCount());
  }
  state.SetItemsProcessed(state.iterations() * 2 * steps);
  state.SetLabel(mode == Mode::Threads ? "threads" : "cooperative");
}
BENCHMARK(BM_VtSchedulerSwitchMode)->Arg(0)->Arg(1);

void BM_SimulatedPingPong(benchmark::State& state) {
  const auto& m = machines::byName("Eagle");
  const int iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpisim::MpiWorld world(
        m, {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt},
            mpisim::RankPlacement{topo::CoreId{1}, std::nullopt}});
    world.runEach({
        [&](mpisim::Communicator& c) {
          for (int i = 0; i < iters; ++i) {
            c.send(1, 0, ByteCount::bytes(8));
            c.recv(1, 0, ByteCount::bytes(8));
          }
        },
        [&](mpisim::Communicator& c) {
          for (int i = 0; i < iters; ++i) {
            c.recv(0, 0, ByteCount::bytes(8));
            c.send(0, 0, ByteCount::bytes(8));
          }
        },
    });
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_SimulatedPingPong)->Arg(100)->Arg(1000);

void BM_GpuRuntimeLaunchSync(benchmark::State& state) {
  const auto& m = machines::byName("Frontier");
  gpusim::GpuRuntime rt(m);
  const auto stream = rt.defaultStream(0);
  for (auto _ : state) {
    rt.reset();
    rt.launchKernel(stream, Duration::microseconds(1.0));
    rt.streamSynchronize(stream);
    benchmark::DoNotOptimize(rt.hostNow());
  }
}
BENCHMARK(BM_GpuRuntimeLaunchSync);

void BM_MachineRegistryLookup(benchmark::State& state) {
  (void)machines::allMachines();  // build outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(&machines::byName("Perlmutter"));
  }
}
BENCHMARK(BM_MachineRegistryLookup);

// --- hot-path caching: route resolution ------------------------------------

void BM_RouteGpuToGpuUncached(benchmark::State& state) {
  // The per-message cost the transports paid before memoization: a full
  // link-list walk plus a fresh hop vector.
  const auto& topo = machines::byName("Summit").topology;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo.routeGpuToGpuUncached(topo::GpuId{0}, topo::GpuId{1}));
  }
}
BENCHMARK(BM_RouteGpuToGpuUncached);

void BM_RouteGpuToGpuCached(benchmark::State& state) {
  const auto& topo = machines::byName("Summit").topology;
  (void)topo.routeGpuToGpu(topo::GpuId{0}, topo::GpuId{1});  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(&topo.routeGpuToGpu(topo::GpuId{0},
                                                 topo::GpuId{1}));
  }
}
BENCHMARK(BM_RouteGpuToGpuCached);

// --- hot-path caching: OSU truth reuse --------------------------------------

void BM_OsuMeasureTruthPerCall(benchmark::State& state) {
  // A fresh benchmark instance per measure: every call pays the
  // thread-spawning virtual-time ping-pong.
  const auto& m = machines::byName("Eagle");
  const auto [a, b] = osu::onSocketPair(m);
  osu::LatencyConfig cfg;
  cfg.binaryRuns = 100;
  for (auto _ : state) {
    const osu::LatencyBenchmark bench(m, a, b,
                                      mpisim::BufferSpace::Kind::Host);
    benchmark::DoNotOptimize(bench.measure(cfg).latencyUs.mean);
  }
}
BENCHMARK(BM_OsuMeasureTruthPerCall);

void BM_OsuMeasureTruthReused(benchmark::State& state) {
  // A shared instance: after the first call the memoized truth turns
  // measure() into 100 noise draws.
  const auto& m = machines::byName("Eagle");
  const auto [a, b] = osu::onSocketPair(m);
  const osu::LatencyBenchmark bench(m, a, b,
                                    mpisim::BufferSpace::Kind::Host);
  osu::LatencyConfig cfg;
  cfg.binaryRuns = 100;
  benchmark::DoNotOptimize(bench.measure(cfg).latencyUs.mean);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.measure(cfg).latencyUs.mean);
  }
}
BENCHMARK(BM_OsuMeasureTruthReused);

// --- tracing overhead --------------------------------------------------------

void BM_TraceScopeDisabled(benchmark::State& state) {
  // No session active: Scope construction is one relaxed atomic load and
  // every instrumented call site is a null-pointer check. This pins the
  // "zero overhead when disabled" contract of DESIGN.md §9.
  for (auto _ : state) {
    trace::Scope scope("bench/disabled");
    benchmark::DoNotOptimize(scope.buffer());
  }
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_SimulatedPingPongTraced(benchmark::State& state) {
  // The workload of BM_SimulatedPingPong/100 with recording enabled;
  // the delta over the untraced run (which carries the compiled-in
  // instrumentation on its disabled path) is the full cost of tracing.
  const auto& m = machines::byName("Eagle");
  const int iters = 100;
  for (auto _ : state) {
    trace::Session session;
    trace::Scope scope("bench/pingpong");
    mpisim::MpiWorld world(
        m, {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt},
            mpisim::RankPlacement{topo::CoreId{1}, std::nullopt}});
    world.runEach({
        [&](mpisim::Communicator& c) {
          for (int i = 0; i < iters; ++i) {
            c.send(1, 0, ByteCount::bytes(8));
            c.recv(1, 0, ByteCount::bytes(8));
          }
        },
        [&](mpisim::Communicator& c) {
          for (int i = 0; i < iters; ++i) {
            c.recv(0, 0, ByteCount::bytes(8));
            c.send(0, 0, ByteCount::bytes(8));
          }
        },
    });
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_SimulatedPingPongTraced);

// --- parallel harness scaling ----------------------------------------------

void BM_ParallelMapPingPong(benchmark::State& state) {
  // 16 simulated ping-pong cells fanned out over N workers — the shape of
  // the table harness fan-out. On a 1-core host all worker counts should
  // be within noise of each other; on multi-core hosts this shows the
  // scaling the --jobs flag buys.
  const int jobs = static_cast<int>(state.range(0));
  const auto& m = machines::byName("Eagle");
  std::vector<int> cells(16);
  for (auto _ : state) {
    const auto out = par::parallelMap(
        cells,
        [&](const int&) {
          mpisim::MpiWorld world(
              m, {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt},
                  mpisim::RankPlacement{topo::CoreId{1}, std::nullopt}});
          double sink = 0.0;
          world.runEach({
              [&](mpisim::Communicator& c) {
                for (int i = 0; i < 100; ++i) {
                  c.send(1, 0, ByteCount::bytes(8));
                  c.recv(1, 0, ByteCount::bytes(8));
                }
                sink = c.now().us();
              },
              [&](mpisim::Communicator& c) {
                for (int i = 0; i < 100; ++i) {
                  c.recv(0, 0, ByteCount::bytes(8));
                  c.send(0, 0, ByteCount::bytes(8));
                }
              },
          });
          return sink;
        },
        jobs);
    benchmark::DoNotOptimize(out.front());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_ParallelMapPingPong)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- closed-form fast path vs event-by-event simulation ---------------------
// The same truth computations with the analytic composer pinned on (1) or
// off (0); the simcore test suite proves the results are bit-identical, so
// the ratio here is pure overhead removed.

void BM_LatencyTruth(benchmark::State& state) {
  const auto& m = machines::byName("Eagle");
  const auto [a, b] = osu::onSocketPair(m);
  const osu::LatencyBenchmark bench(m, a, b, mpisim::BufferSpace::Kind::Host);
  const FastPathGuard guard(state.range(0) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench.truthOneWay(ByteCount::bytes(8), 1000).ns());
  }
  state.SetLabel(state.range(0) == 1 ? "analytic" : "event");
}
BENCHMARK(BM_LatencyTruth)->Arg(0)->Arg(1);

void BM_LatencyTruthDevice(benchmark::State& state) {
  // GPU-machine variant: Frontier MI250X device buffers (Table 5's
  // fastest cell class). Device paths resolve through the GPU route but
  // compose identically.
  const auto& m = machines::byName("Frontier");
  const auto [a, b] = osu::devicePair(m, topo::LinkClass::A);
  const osu::LatencyBenchmark bench(m, a, b,
                                    mpisim::BufferSpace::Kind::Device);
  const FastPathGuard guard(state.range(0) == 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bench.truthOneWay(ByteCount::bytes(8), 1000).ns());
  }
  state.SetLabel(state.range(0) == 1 ? "analytic" : "event");
}
BENCHMARK(BM_LatencyTruthDevice)->Arg(0)->Arg(1);

void BM_InterNodeMeasure(benchmark::State& state) {
  // Summit device-buffer inter-node pair through netsim. Arg: 0 = event
  // path pinned, 1 = fast path, 2 = a 5% packet-loss plan (the fast path
  // must decline, so this benchmarks the fallback boundary itself).
  const auto& m = machines::byName("Summit");
  netsim::InterNodeConfig cfg;
  cfg.messageSize = ByteCount::bytes(8);
  cfg.iterations = 100;
  cfg.binaryRuns = 10;
  cfg.deviceBuffers = true;
  if (state.range(0) == 2) {
    mpisim::InterNodeParams net = netsim::networkFor(m);
    net.packetLossRate = 0.05;
    net.faultSeed = 7;
    cfg.network = net;
  }
  const FastPathGuard guard(state.range(0) >= 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::measureInterNode(m, cfg).latencyUs.mean);
  }
  state.SetLabel(state.range(0) == 0   ? "event"
                 : state.range(0) == 1 ? "analytic"
                                       : "faulted-fallback");
}
BENCHMARK(BM_InterNodeMeasure)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
