/// \file bench_simcore_gbench.cpp
/// \brief google-benchmark microbenchmarks of the simulation substrate
/// itself: how fast the event queue, virtual-time scheduler, simulated
/// MPI ping-pong and GPU runtime execute on the build host. These guard
/// the harness's own performance (the table benches run hundreds of
/// simulated benchmarks).

#include <benchmark/benchmark.h>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "gpusim/gpu_runtime.hpp"
#include "machines/registry.hpp"
#include "mpisim/world.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "sim/event_queue.hpp"
#include "sim/vt_scheduler.hpp"
#include "trace/trace.hpp"

namespace {

using namespace nodebench;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    int sink = 0;
    for (int i = 0; i < events; ++i) {
      q.scheduleAt(Duration::nanoseconds(static_cast<double>(i % 97)),
                   [&sink] { ++sink; });
    }
    q.runAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_XoshiroNormal(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.normal());
  }
}
BENCHMARK(BM_XoshiroNormal);

void BM_WelfordAdd(benchmark::State& state) {
  Welford w;
  double x = 0.0;
  for (auto _ : state) {
    w.add(x);
    x += 0.5;
  }
  benchmark::DoNotOptimize(w.count());
}
BENCHMARK(BM_WelfordAdd);

void BM_VtSchedulerSwitch(benchmark::State& state) {
  // Two processes leapfrogging: measures the handoff cost that bounds
  // simulated ping-pong throughput.
  const int steps = 256;
  for (auto _ : state) {
    sim::VirtualTimeScheduler sched;
    const auto proc = [](sim::VirtualProcess& p) {
      for (int i = 0; i < steps; ++i) {
        p.advance(Duration::nanoseconds(10.0));
      }
    };
    sched.run({proc, proc});
    benchmark::DoNotOptimize(sched.switchCount());
  }
  state.SetItemsProcessed(state.iterations() * 2 * steps);
}
BENCHMARK(BM_VtSchedulerSwitch);

void BM_SimulatedPingPong(benchmark::State& state) {
  const auto& m = machines::byName("Eagle");
  const int iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    mpisim::MpiWorld world(
        m, {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt},
            mpisim::RankPlacement{topo::CoreId{1}, std::nullopt}});
    world.runEach({
        [&](mpisim::Communicator& c) {
          for (int i = 0; i < iters; ++i) {
            c.send(1, 0, ByteCount::bytes(8));
            c.recv(1, 0, ByteCount::bytes(8));
          }
        },
        [&](mpisim::Communicator& c) {
          for (int i = 0; i < iters; ++i) {
            c.recv(0, 0, ByteCount::bytes(8));
            c.send(0, 0, ByteCount::bytes(8));
          }
        },
    });
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_SimulatedPingPong)->Arg(100)->Arg(1000);

void BM_GpuRuntimeLaunchSync(benchmark::State& state) {
  const auto& m = machines::byName("Frontier");
  gpusim::GpuRuntime rt(m);
  const auto stream = rt.defaultStream(0);
  for (auto _ : state) {
    rt.reset();
    rt.launchKernel(stream, Duration::microseconds(1.0));
    rt.streamSynchronize(stream);
    benchmark::DoNotOptimize(rt.hostNow());
  }
}
BENCHMARK(BM_GpuRuntimeLaunchSync);

void BM_MachineRegistryLookup(benchmark::State& state) {
  (void)machines::allMachines();  // build outside the loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(&machines::byName("Perlmutter"));
  }
}
BENCHMARK(BM_MachineRegistryLookup);

// --- hot-path caching: route resolution ------------------------------------

void BM_RouteGpuToGpuUncached(benchmark::State& state) {
  // The per-message cost the transports paid before memoization: a full
  // link-list walk plus a fresh hop vector.
  const auto& topo = machines::byName("Summit").topology;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        topo.routeGpuToGpuUncached(topo::GpuId{0}, topo::GpuId{1}));
  }
}
BENCHMARK(BM_RouteGpuToGpuUncached);

void BM_RouteGpuToGpuCached(benchmark::State& state) {
  const auto& topo = machines::byName("Summit").topology;
  (void)topo.routeGpuToGpu(topo::GpuId{0}, topo::GpuId{1});  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(&topo.routeGpuToGpu(topo::GpuId{0},
                                                 topo::GpuId{1}));
  }
}
BENCHMARK(BM_RouteGpuToGpuCached);

// --- hot-path caching: OSU truth reuse --------------------------------------

void BM_OsuMeasureTruthPerCall(benchmark::State& state) {
  // A fresh benchmark instance per measure: every call pays the
  // thread-spawning virtual-time ping-pong.
  const auto& m = machines::byName("Eagle");
  const auto [a, b] = osu::onSocketPair(m);
  osu::LatencyConfig cfg;
  cfg.binaryRuns = 100;
  for (auto _ : state) {
    const osu::LatencyBenchmark bench(m, a, b,
                                      mpisim::BufferSpace::Kind::Host);
    benchmark::DoNotOptimize(bench.measure(cfg).latencyUs.mean);
  }
}
BENCHMARK(BM_OsuMeasureTruthPerCall);

void BM_OsuMeasureTruthReused(benchmark::State& state) {
  // A shared instance: after the first call the memoized truth turns
  // measure() into 100 noise draws.
  const auto& m = machines::byName("Eagle");
  const auto [a, b] = osu::onSocketPair(m);
  const osu::LatencyBenchmark bench(m, a, b,
                                    mpisim::BufferSpace::Kind::Host);
  osu::LatencyConfig cfg;
  cfg.binaryRuns = 100;
  benchmark::DoNotOptimize(bench.measure(cfg).latencyUs.mean);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.measure(cfg).latencyUs.mean);
  }
}
BENCHMARK(BM_OsuMeasureTruthReused);

// --- tracing overhead --------------------------------------------------------

void BM_TraceScopeDisabled(benchmark::State& state) {
  // No session active: Scope construction is one relaxed atomic load and
  // every instrumented call site is a null-pointer check. This pins the
  // "zero overhead when disabled" contract of DESIGN.md §9.
  for (auto _ : state) {
    trace::Scope scope("bench/disabled");
    benchmark::DoNotOptimize(scope.buffer());
  }
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_SimulatedPingPongTraced(benchmark::State& state) {
  // The workload of BM_SimulatedPingPong/100 with recording enabled;
  // the delta over the untraced run (which carries the compiled-in
  // instrumentation on its disabled path) is the full cost of tracing.
  const auto& m = machines::byName("Eagle");
  const int iters = 100;
  for (auto _ : state) {
    trace::Session session;
    trace::Scope scope("bench/pingpong");
    mpisim::MpiWorld world(
        m, {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt},
            mpisim::RankPlacement{topo::CoreId{1}, std::nullopt}});
    world.runEach({
        [&](mpisim::Communicator& c) {
          for (int i = 0; i < iters; ++i) {
            c.send(1, 0, ByteCount::bytes(8));
            c.recv(1, 0, ByteCount::bytes(8));
          }
        },
        [&](mpisim::Communicator& c) {
          for (int i = 0; i < iters; ++i) {
            c.recv(0, 0, ByteCount::bytes(8));
            c.send(0, 0, ByteCount::bytes(8));
          }
        },
    });
  }
  state.SetItemsProcessed(state.iterations() * iters);
}
BENCHMARK(BM_SimulatedPingPongTraced);

// --- parallel harness scaling ----------------------------------------------

void BM_ParallelMapPingPong(benchmark::State& state) {
  // 16 simulated ping-pong cells fanned out over N workers — the shape of
  // the table harness fan-out. On a 1-core host all worker counts should
  // be within noise of each other; on multi-core hosts this shows the
  // scaling the --jobs flag buys.
  const int jobs = static_cast<int>(state.range(0));
  const auto& m = machines::byName("Eagle");
  std::vector<int> cells(16);
  for (auto _ : state) {
    const auto out = par::parallelMap(
        cells,
        [&](const int&) {
          mpisim::MpiWorld world(
              m, {mpisim::RankPlacement{topo::CoreId{0}, std::nullopt},
                  mpisim::RankPlacement{topo::CoreId{1}, std::nullopt}});
          double sink = 0.0;
          world.runEach({
              [&](mpisim::Communicator& c) {
                for (int i = 0; i < 100; ++i) {
                  c.send(1, 0, ByteCount::bytes(8));
                  c.recv(1, 0, ByteCount::bytes(8));
                }
                sink = c.now().us();
              },
              [&](mpisim::Communicator& c) {
                for (int i = 0; i < 100; ++i) {
                  c.recv(0, 0, ByteCount::bytes(8));
                  c.send(0, 0, ByteCount::bytes(8));
                }
              },
          });
          return sink;
        },
        jobs);
    benchmark::DoNotOptimize(out.front());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_ParallelMapPingPong)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
