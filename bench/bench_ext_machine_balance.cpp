/// \file bench_ext_machine_balance.cpp
/// \brief Extension: machine balance (peak FP64 over sustained STREAM
/// bandwidth) across the studied systems — the quantity McCalpin's
/// original STREAM work tracked, computed from the calibrated models.

#include <cstdio>

#include "bench_common.hpp"
#include "report/balance.hpp"

int main() {
  using namespace nodebench;
  const auto rows = report::computeBalance();
  std::fputs(report::renderBalance(rows).renderAscii().c_str(), stdout);
  std::printf(
      "\nReading guide: a balance of ~18 flops/byte (MI250X GCD) means a "
      "kernel needs 18 double-precision operations per byte moved to be "
      "compute-bound; STREAM-like kernels (~0.1 flops/byte) are two "
      "orders of magnitude away — the machine-balance gap McCalpin's "
      "STREAM papers warned about, still widening across these systems.\n");
  return 0;
}
