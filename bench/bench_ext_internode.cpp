/// \file bench_ext_internode.cpp
/// \brief Extension (paper future-work #1): inter-node latency and
/// bandwidth over representative interconnect models, plus a
/// neighbour-congestion sweep where several pairs share one NIC.

#include <cstdio>

#include "bench_common.hpp"
#include "netsim/network.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  Table t({"System", "Network", "Latency (us)", "BW/pair (GB/s)",
           "Device lat (us)"});
  t.setTitle("Inter-node point-to-point (2 nodes, idle network)");
  t.setAlign(1, Align::Left);
  for (const machines::Machine& m : machines::allMachines()) {
    netsim::InterNodeConfig cfg;
    cfg.binaryRuns = opt.binaryRuns;
    const auto host = netsim::measureInterNode(m, cfg);
    std::string deviceCell = "-";
    if (m.accelerated()) {
      netsim::InterNodeConfig dcfg = cfg;
      dcfg.deviceBuffers = true;
      deviceCell =
          netsim::measureInterNode(m, dcfg).latencyUs.toString();
    }
    t.addRow({m.info.name, netsim::networkFor(m).name,
              host.latencyUs.toString(),
              host.perPairBandwidthGBps.toString(), deviceCell});
  }
  std::fputs(t.renderAscii().c_str(), stdout);

  std::printf("\n");
  Table c({"Pairs/node", "BW per pair (GB/s)", "Aggregate (GB/s)",
           "Efficiency"});
  c.setTitle("Frontier: NIC congestion sweep (64 KiB windowed streams)");
  const auto& frontier = machines::byName("Frontier");
  netsim::InterNodeConfig ccfg;
  ccfg.binaryRuns = opt.binaryRuns;
  const auto sweep =
      netsim::congestionSweep(frontier, ByteCount::kib(64), 8, ccfg);
  const double solo = sweep.front().perPairBandwidthGBps.mean;
  for (const auto& point : sweep) {
    const double perPair = point.perPairBandwidthGBps.mean;
    const double aggregate = perPair * point.pairsPerNode;
    c.addRow({std::to_string(point.pairsPerNode), formatFixed(perPair, 2),
              formatFixed(aggregate, 2),
              formatFixed(aggregate / solo, 2)});
  }
  std::fputs(c.renderAscii().c_str(), stdout);
  std::printf(
      "\nPer-pair bandwidth halves as pairs double once the shared NIC "
      "saturates (aggregate efficiency ~flat): the injection-bandwidth "
      "contention the paper's future-work section targets. Device "
      "latency adds the GPU<->NIC base cost — negligible on the GPU-RMA "
      "MI250X systems, tens of microseconds on the V100 staging path.\n");
  return 0;
}
