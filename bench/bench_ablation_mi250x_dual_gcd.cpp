/// \file bench_ablation_mi250x_dual_gcd.cpp
/// \brief Ablation: the paper notes that BabelStream "only uses one of
/// the two Graphics Compute Dies" of an MI250X, "so the overall bandwidth
/// of the GPU would be roughly double what is reported if another GPU
/// stream were copying data at the same time." This bench verifies that
/// claim in the simulator: Triad on one GCD vs Triad on both GCDs of the
/// same package concurrently.

#include <cstdio>

#include "babelstream/kernels.hpp"
#include "bench_common.hpp"
#include "gpusim/gpu_runtime.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  (void)benchtool::optionsFromArgs(argc, argv);

  Table t({"System", "1 GCD (GB/s)", "2 GCDs (GB/s)", "speedup"});
  t.setTitle("MI250X package bandwidth: one vs both GCDs streaming Triad");

  for (const char* name : {"Frontier", "RZVernal", "Tioga"}) {
    const machines::Machine& m = machines::byName(name);
    gpusim::GpuRuntime rt(m);
    const ByteCount array = ByteCount::gib(1);
    const double traffic =
        babelstream::countedFactor(babelstream::StreamOp::Triad) *
        array.asDouble();
    const Duration kernel = Duration::nanoseconds(
        traffic / m.device->hbmBw.bytesPerNanosecond());

    // One GCD.
    rt.reset();
    const auto s0 = rt.defaultStream(0);
    rt.launchKernel(s0, kernel);
    rt.streamSynchronize(s0);
    const double single = traffic / rt.hostNow().ns();

    // Both GCDs of package 0 (devices 0 and 1), concurrent streams.
    rt.reset();
    const auto s1 = rt.defaultStream(1);
    rt.launchKernel(s0, kernel);
    rt.launchKernel(s1, kernel);
    rt.streamSynchronize(s0);
    rt.streamSynchronize(s1);
    const double dual = 2.0 * traffic / rt.hostNow().ns();

    char one[32];
    char two[32];
    char speedup[32];
    std::snprintf(one, sizeof(one), "%.2f", single);
    std::snprintf(two, sizeof(two), "%.2f", dual);
    std::snprintf(speedup, sizeof(speedup), "%.2fx", dual / single);
    t.addRow({name, one, two, speedup});
  }
  std::fputs(t.renderAscii().c_str(), stdout);
  std::printf(
      "\nSpeedup just below 2x (launch/sync overheads are serialized on "
      "the host), confirming the paper's 'roughly double' note and the "
      "~3276.8 GB/s package-level figure AMD advertises.\n");
  return 0;
}
