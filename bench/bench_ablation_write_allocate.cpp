/// \file bench_ablation_write_allocate.cpp
/// \brief Ablation: how much does BabelStream 4.0's byte-accounting
/// convention (no write-allocate traffic in the numerator, paper §3.1)
/// depress the reported CPU bandwidth per op?
///
/// We run each op twice on every CPU system: with the machine's real
/// write-allocate stores and with hypothetical non-temporal stores. The
/// per-op ratio is the analytic counted/actual fraction (2/3 for
/// copy/mul, 3/4 for add/triad, 1 for dot), which is exactly why "best
/// over all ops" selects Dot in Table 4.

#include <cstdio>

#include "babelstream/driver.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  for (const machines::Machine* base : machines::cpuMachines()) {
    machines::Machine nonTemporal = *base;  // what-if: streaming stores
    nonTemporal.hostMemory.nonTemporalStores = true;

    const ompenv::OmpConfig team{base->coreCount(), ompenv::ProcBind::Spread,
                                 ompenv::Places::Cores};
    babelstream::SimOmpBackend wa(*base, team);
    babelstream::SimOmpBackend nt(nonTemporal, team);
    babelstream::DriverConfig cfg;
    cfg.binaryRuns = opt.binaryRuns;
    cfg.arrayBytes = opt.cpuArrayBytes;
    const auto withWa = babelstream::run(wa, cfg);
    const auto withNt = babelstream::run(nt, cfg);

    Table t({"Op", "write-allocate (GB/s)", "non-temporal (GB/s)",
             "ratio"});
    t.setTitle(base->info.name +
               ": reported bandwidth vs store write-allocate behaviour");
    for (std::size_t i = 0; i < withWa.ops.size(); ++i) {
      char ratio[32];
      std::snprintf(ratio, sizeof(ratio), "%.3f",
                    withWa.ops[i].bandwidthGBps.mean /
                        withNt.ops[i].bandwidthGBps.mean);
      t.addRow({std::string(babelstream::streamOpName(withWa.ops[i].op)),
                withWa.ops[i].bandwidthGBps.toString(),
                withNt.ops[i].bandwidthGBps.toString(), ratio});
    }
    std::fputs(t.renderAscii().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "Expected ratios: Copy/Mul 2/3, Add/Triad 3/4, Dot 1 — Dot's "
      "immunity is why it wins Table 4's best-over-ops rule.\n");
  return 0;
}
