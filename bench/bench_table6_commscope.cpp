/// \file bench_table6_commscope.cpp
/// \brief Regenerates Table 6 (Comm|Scope kernel launch / empty-queue
/// wait / transfer latency and bandwidth on the accelerator systems) and
/// prints a paper-vs-measured comparison. Usage: [--runs N]

#include <cstdio>

#include "bench_common.hpp"
#include "report/paper_reference.hpp"
#include "report/tables.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);
  std::printf("Regenerating Table 6 (%d binary runs per cell)...\n\n",
              opt.binaryRuns);

  const auto rows = report::computeTable6(opt);
  std::fputs(report::renderTable6(rows).renderAscii().c_str(), stdout);
  std::printf("\n");

  benchtool::Comparison cmp("Table 6: paper vs measured");
  for (const auto& row : rows) {
    const auto& ref = report::paper::table6Row(row.machine->info.name);
    const std::string n = row.machine->info.name;
    cmp.add(n + " launch (us)", ref.launchUs, row.launchUs);
    cmp.add(n + " wait (us)", ref.waitUs, row.waitUs);
    cmp.add(n + " H<->D lat (us)", ref.hostDeviceLatencyUs,
            row.hostDeviceLatencyUs);
    cmp.add(n + " H<->D BW (GB/s)", ref.hostDeviceBandwidthGBps,
            row.hostDeviceBandwidthGBps);
    for (int c = 0; c < 4; ++c) {
      if (ref.d2dUs[c] && row.d2dLatencyUs[c]) {
        cmp.add(n + " D2D " + std::string(1, static_cast<char>('A' + c)) +
                    " (us)",
                *ref.d2dUs[c], *row.d2dLatencyUs[c]);
      }
    }
    cmp.addSeparator();
  }
  cmp.print();
  return 0;
}
