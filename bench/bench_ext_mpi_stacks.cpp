/// \file bench_ext_mpi_stacks.cpp
/// \brief Extension (paper future-work #4): the same system measured
/// under alternative MPI implementations. Scales follow the relative
/// differences Khorassani et al. [26] report between SpectrumMPI,
/// OpenMPI+UCX and MVAPICH2-GDR on OpenPOWER systems.

#include <cstdio>

#include "bench_common.hpp"
#include "machines/mpi_stacks.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  for (const char* name : {"Summit", "Sierra", "Frontier", "Eagle"}) {
    const machines::Machine& base = machines::byName(name);
    Table t({"MPI stack", "Host-to-host (us)", "Device D2D class A (us)"});
    t.setTitle(std::string(name) + ": MPI latency per implementation");
    t.setAlign(0, Align::Left);
    for (const auto& variant : machines::alternativeStacks(base)) {
      const machines::Machine m = machines::withMpiStack(base, variant);
      osu::LatencyConfig cfg;
      cfg.binaryRuns = opt.binaryRuns;
      const auto [ha, hb] = osu::onSocketPair(m);
      const auto host =
          osu::LatencyBenchmark(m, ha, hb, mpisim::BufferSpace::Kind::Host)
              .measure(cfg)
              .latencyUs;
      std::string deviceCell = "-";
      if (m.accelerated()) {
        const auto [da, db] = osu::devicePair(m, topo::LinkClass::A);
        deviceCell = osu::LatencyBenchmark(m, da, db,
                                           mpisim::BufferSpace::Kind::Device)
                         .measure(cfg)
                         .latencyUs.toString();
      }
      t.addRow({variant.name, host.toString(), deviceCell});
    }
    std::fputs(t.renderAscii().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "On the V100 systems an MVAPICH2-GDR-class stack cuts device MPI "
      "latency to roughly 40%% of SpectrumMPI's — consistent with the "
      "multi-x differences reported in [26] and with the paper's note "
      "that its own numbers 'hew to the default configuration of each "
      "platform'.\n");
  return 0;
}
