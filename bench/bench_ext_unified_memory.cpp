/// \file bench_ext_unified_memory.cpp
/// \brief Extension: Comm|Scope's unified-memory test family — explicit
/// prefetch vs demand paging of a 1 GiB managed buffer, plus a
/// kernel-launch batching ("graph capture") ablation on the same
/// machines. Neither is measured in the paper; both use representative
/// (uncalibrated) UM parameters documented in machine.hpp.

#include <cstdio>

#include "bench_common.hpp"
#include "gpusim/gpu_runtime.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  Table t({"System", "Pinned copy (GB/s)", "UM prefetch (GB/s)",
           "UM demand paging (GB/s)", "Demand penalty"});
  t.setTitle("Unified memory: moving 1 GiB host -> device");
  for (const machines::Machine* m : machines::gpuMachines()) {
    commscope::CommScope scope(*m);
    commscope::Config cfg;
    cfg.binaryRuns = opt.binaryRuns;
    const double pinned = scope.hostDeviceBandwidthGBps(cfg).mean;
    const double prefetch = scope.umPrefetchBandwidthGBps(cfg).mean;
    const double demand = scope.umDemandBandwidthGBps(cfg).mean;
    t.addRow({m->info.name, formatFixed(pinned, 2),
              formatFixed(prefetch, 2), formatFixed(demand, 2),
              formatFixed(pinned / demand, 1) + "x"});
  }
  std::fputs(t.renderAscii().c_str(), stdout);

  // Launch batching: N small kernels launched one by one vs one batched
  // submission (graph capture), isolating the Table 6 launch overhead.
  std::printf("\n");
  Table g({"System", "100 kernels, individual (us)",
           "100 kernels, batched (us)", "Speedup"});
  g.setTitle("Kernel-launch batching ablation (10 us kernels)");
  for (const char* name : {"Summit", "Perlmutter", "Frontier"}) {
    const machines::Machine& m = machines::byName(name);
    gpusim::GpuRuntime rt(m);
    const auto stream = rt.defaultStream(0);
    const Duration kernel = Duration::microseconds(10.0);

    rt.reset();
    for (int i = 0; i < 100; ++i) {
      rt.launchKernel(stream, kernel);
    }
    rt.streamSynchronize(stream);
    const double individual = rt.hostNow().us();

    // Batched: one launch overhead submits the whole dependency graph.
    rt.reset();
    rt.launchKernel(stream, kernel * 100.0);
    rt.streamSynchronize(stream);
    const double batched = rt.hostNow().us();

    g.addRow({name, formatFixed(individual, 1), formatFixed(batched, 1),
              formatFixed(individual / batched, 2) + "x"});
  }
  std::fputs(g.renderAscii().c_str(), stdout);
  std::printf(
      "\nDemand paging pays the per-fault service latency on every 2 MiB "
      "page, flooring UM bandwidth an order of magnitude under the pinned "
      "copy path; prefetch recovers ~90%% of it. Launch batching matters "
      "most where Table 6's launch column is worst (the V100 systems), "
      "though for 10 us kernels overlap hides most of it.\n");
  return 0;
}
