/// \file bench_table5_gpu.cpp
/// \brief Regenerates Table 5 (GPU device bandwidth via BabelStream and
/// host/device MPI latency via osu_latency on the eight accelerator DOE
/// systems) and prints a paper-vs-measured comparison.
/// Usage: bench_table5_gpu [--runs N]

#include <cstdio>

#include "bench_common.hpp"
#include "report/paper_reference.hpp"
#include "report/tables.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);
  std::printf("Regenerating Table 5 (%d binary runs per cell)...\n\n",
              opt.binaryRuns);

  const auto rows = report::computeTable5(opt);
  std::fputs(report::renderTable5(rows).renderAscii().c_str(), stdout);
  std::printf("\n");

  benchtool::Comparison cmp("Table 5: paper vs measured");
  for (const auto& row : rows) {
    const auto& ref = report::paper::table5Row(row.machine->info.name);
    const std::string n = row.machine->info.name;
    cmp.add(n + " device BW (GB/s)", ref.deviceGBps, row.deviceGBps);
    cmp.add(n + " host-host (us)", ref.hostToHostUs, row.hostToHostUs);
    for (int c = 0; c < 4; ++c) {
      if (ref.d2dUs[c] && row.deviceToDeviceUs[c]) {
        cmp.add(n + " D2D " + std::string(1, static_cast<char>('A' + c)) +
                    " (us)",
                *ref.d2dUs[c], *row.deviceToDeviceUs[c]);
      }
    }
    cmp.addSeparator();
  }
  cmp.print();
  return 0;
}
