/// \file bench_table4_cpu.cpp
/// \brief Regenerates Table 4 of the paper (CPU memory bandwidth + MPI
/// latency on the five non-accelerator DOE systems) and prints a
/// paper-vs-measured comparison. Usage: bench_table4_cpu [--runs N]

#include <cstdio>

#include "bench_common.hpp"
#include "report/paper_reference.hpp"
#include "report/tables.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);
  std::printf("Regenerating Table 4 (%d binary runs per cell)...\n\n",
              opt.binaryRuns);

  const auto rows = report::computeTable4(opt);
  std::fputs(report::renderTable4(rows).renderAscii().c_str(), stdout);
  std::printf("\n");

  benchtool::Comparison cmp("Table 4: paper vs measured");
  for (const auto& row : rows) {
    const auto& ref = report::paper::table4Row(row.machine->info.name);
    const std::string n = row.machine->info.name;
    cmp.add(n + " single (GB/s)", ref.singleGBps, row.singleGBps);
    cmp.add(n + " all (GB/s)", ref.allGBps, row.allGBps);
    cmp.add(n + " on-socket (us)", ref.onSocketUs, row.onSocketUs);
    cmp.add(n + " on-node (us)", ref.onNodeUs, row.onNodeUs);
    cmp.addSeparator();
  }
  cmp.print();
  return 0;
}
