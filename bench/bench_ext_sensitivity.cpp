/// \file bench_ext_sensitivity.cpp
/// \brief Extension: sensitivity of the reproduced table cells to the
/// calibrated primitives. Each primitive of Frontier's model is perturbed
/// by +-10% and the affected measurements recomputed — showing which
/// paper quantities pin which parameters (and which are insensitive),
/// i.e. how well-conditioned the calibration inversion is.

#include <cstdio>
#include <functional>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "bench_common.hpp"
#include "commscope/commscope.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"

namespace {

using namespace nodebench;

double deviceBw(const machines::Machine& m) {
  babelstream::SimDeviceBackend backend(m, 0);
  babelstream::DriverConfig cfg;
  cfg.arrayBytes = ByteCount::gib(1);
  cfg.binaryRuns = 5;
  return babelstream::run(backend, cfg).best().bandwidthGBps.mean;
}

double d2dMpiUs(const machines::Machine& m) {
  const auto [a, b] = osu::devicePair(m, topo::LinkClass::A);
  osu::LatencyConfig cfg;
  cfg.binaryRuns = 5;
  return osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Device)
      .measure(cfg)
      .latencyUs.mean;
}

double h2dLatUs(const machines::Machine& m) {
  commscope::CommScope scope(m);
  commscope::Config cfg;
  cfg.binaryRuns = 5;
  return scope.hostDeviceLatencyUs(cfg).mean;
}

double commscopeD2dUs(const machines::Machine& m) {
  commscope::CommScope scope(m);
  commscope::Config cfg;
  cfg.binaryRuns = 5;
  return scope.d2dLatencyUs(topo::LinkClass::A, cfg).mean;
}

}  // namespace

int main() {
  const machines::Machine& base = machines::byName("Frontier");

  struct Perturbation {
    const char* name;
    std::function<void(machines::Machine&, double)> apply;
  };
  const std::vector<Perturbation> perturbations{
      {"hbmBw", [](machines::Machine& m, double f) {
         m.device->hbmBw = m.device->hbmBw * f;
       }},
      {"kernelLaunch", [](machines::Machine& m, double f) {
         m.device->kernelLaunch = m.device->kernelLaunch * f;
       }},
      {"syncWait", [](machines::Machine& m, double f) {
         m.device->syncWait = m.device->syncWait * f;
       }},
      {"d2dDmaSetup", [](machines::Machine& m, double f) {
         m.device->d2dDmaSetup = m.device->d2dDmaSetup * f;
       }},
      {"deviceMpiBase", [](machines::Machine& m, double f) {
         m.deviceMpi->baseOneWay = m.deviceMpi->baseOneWay * f;
       }},
  };

  struct Observable {
    const char* name;
    double (*measure)(const machines::Machine&);
  };
  const std::vector<Observable> observables{
      {"T5 device BW", deviceBw},
      {"T5 D2D MPI (us)", d2dMpiUs},
      {"T6 H<->D lat (us)", h2dLatUs},
      {"T6 D2D copy (us)", commscopeD2dUs},
  };

  Table t({"Primitive +10%", "T5 device BW", "T5 D2D MPI (us)",
           "T6 H<->D lat (us)", "T6 D2D copy (us)"});
  t.setTitle(
      "Frontier: relative change of reproduced cells per +10% primitive "
      "perturbation");
  std::vector<double> baseline;
  for (const auto& obs : observables) {
    baseline.push_back(obs.measure(base));
  }
  for (const auto& p : perturbations) {
    machines::Machine perturbed = base;
    p.apply(perturbed, 1.10);
    std::vector<std::string> row{p.name};
    for (std::size_t i = 0; i < observables.size(); ++i) {
      const double v = observables[i].measure(perturbed);
      const double rel = (v / baseline[i] - 1.0) * 100.0;
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%+.1f%%", rel);
      row.push_back(cell);
    }
    t.addRow(row);
  }
  std::fputs(t.renderAscii().c_str(), stdout);
  std::printf(
      "\nEach observable responds to exactly the primitives its model "
      "composes: device bandwidth to hbmBw only; OSU D2D to the MPI base "
      "(not the copy engine); Comm|Scope D2D to the DMA setup. The "
      "near-diagonal structure is what makes the calibration inversion "
      "well-conditioned (DESIGN.md section 1).\n");
  return 0;
}
