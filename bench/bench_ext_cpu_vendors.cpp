/// \file bench_ext_cpu_vendors.cpp
/// \brief Extension (paper future-work #3): "Comparing results between
/// Intel, AMD and Arm CPU systems would be of interest in the future."
/// Runs the Table 4 methodology on representative Arm (A64FX, Ampere
/// Altra) and AMD (EPYC Milan) nodes next to the paper's Intel systems.

#include <cstdio>

#include "babelstream/driver.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "bench_common.hpp"
#include "machines/extra_machines.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "report/balance.hpp"

namespace {

using namespace nodebench;

void addRow(Table& t, const machines::Machine& m,
            const report::TableOptions& opt) {
  const auto sweep = report::ompSweep(m, opt);
  osu::LatencyConfig lcfg;
  lcfg.binaryRuns = opt.binaryRuns;
  const auto [sa, sb] = osu::onSocketPair(m);
  const auto [na, nb] = osu::onNodePair(m);
  const auto onSocket =
      osu::LatencyBenchmark(m, sa, sb, mpisim::BufferSpace::Kind::Host)
          .measure(lcfg)
          .latencyUs;
  const auto onNode =
      osu::LatencyBenchmark(m, na, nb, mpisim::BufferSpace::Kind::Host)
          .measure(lcfg)
          .latencyUs;
  const double balance =
      m.hostPeakFp64Gflops /
      (m.hostMemory.perNumaSaturation.inGBps() * m.topology.numaCount() /
       m.hostMemory.cacheModeOverhead);
  t.addRow({m.info.name, m.info.cpuModel, sweep.bestSingle.toString(),
            sweep.bestAll.toString(), onSocket.toString(),
            onNode.toString(), formatFixed(balance, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  auto opt = benchtool::optionsFromArgs(argc, argv);

  Table t({"System", "CPU", "Single (GB/s)", "All (GB/s)",
           "On-Socket (us)", "On-Node (us)", "Balance (f/B)"});
  t.setTitle(
      "Table 4 methodology across CPU vendors (Intel = paper systems; "
      "AMD/Arm = representative reference nodes)");
  t.setAlign(1, Align::Left);

  for (const char* name : {"Sawtooth", "Eagle", "Trinity"}) {
    addRow(t, machines::byName(name), opt);
  }
  t.addSeparator();
  for (const machines::Machine& m : machines::extraMachines()) {
    addRow(t, m, opt);
  }
  std::fputs(t.renderAscii().c_str(), stdout);
  std::printf(
      "\nThe comparison the paper wished for: the HBM2-fed A64FX more "
      "than triples any Xeon's sustained bandwidth (830 vs ~240 GB/s) at "
      "similar peak FLOPS — a very different balance point — while the "
      "Milan and Altra nodes land near the Xeons on bandwidth but differ "
      "in NUMA structure and software-stack latency. Reference rows are "
      "representative models from public literature, not paper data.\n");
  return 0;
}
