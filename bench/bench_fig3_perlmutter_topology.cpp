/// \file bench_fig3_perlmutter_topology.cpp
/// \brief Figure 3 harness: the Perlmutter node diagram (EPYC 7763 + 4x
/// A100 with all-to-all NVLink3), annotated with measured latencies.
/// Polaris shares the topology; pass a machine name to render it.
/// Usage: [machine] [--runs N]

#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  std::string machine = "Perlmutter";
  if (argc > 1 && argv[1][0] != '-') {
    machine = argv[1];
  }
  nodebench::benchtool::printFigure(
      machine, nodebench::benchtool::optionsFromArgs(argc, argv));
  return 0;
}
