/// \file bench_ablation_eager_rendezvous.cpp
/// \brief Ablation: locate the eager->rendezvous protocol step in the
/// osu_latency size sweep. The paper's tables report only the
/// small-message (eager) regime; this bench shows where the protocol
/// switch falls and how large the handshake step is on each machine.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  const std::vector<const char*> systems{"Eagle", "Manzano", "Theta",
                                         "Frontier"};
  osu::LatencyConfig cfg;
  cfg.binaryRuns = opt.binaryRuns;
  cfg.iterations = 200;

  Table t({"Size (B)", "Eagle (us)", "Manzano (us)", "Theta (us)",
           "Frontier (us)"});
  t.setTitle(
      "osu_latency one-way latency across the eager threshold (8 KiB)");
  for (std::uint64_t size = 1024; size <= 64 * 1024; size *= 2) {
    for (const std::uint64_t probe : {size, size + 1}) {
      if (probe != size && size != 8192) {
        continue;  // the +1 probe only matters at the threshold
      }
      std::vector<std::string> row{std::to_string(probe)};
      for (const char* name : systems) {
        const auto& m = machines::byName(name);
        const auto [a, b] = osu::onSocketPair(m);
        const osu::LatencyBenchmark bench(m, a, b,
                                          mpisim::BufferSpace::Kind::Host);
        cfg.messageSize = ByteCount::bytes(probe);
        row.push_back(bench.measure(cfg).latencyUs.toString());
      }
      t.addRow(row);
    }
  }
  std::fputs(t.renderAscii().c_str(), stdout);
  std::printf(
      "\nThe 8193 B row shows the rendezvous handshake step; its height "
      "scales with the machine's MPI software overhead (largest on "
      "Theta's old cray-mpich stack).\n");
  return 0;
}
