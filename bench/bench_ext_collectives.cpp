/// \file bench_ext_collectives.cpp
/// \brief Extension: collective latency (OSU osu_allreduce/osu_bcast
/// style) across machines and rank counts — part of the inter-node
/// future-work agenda, exercised here within a node.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "osu/collectives.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  const std::vector<osu::Collective> collectives{
      osu::Collective::Barrier, osu::Collective::Bcast,
      osu::Collective::Reduce, osu::Collective::Allreduce,
      osu::Collective::Allgather, osu::Collective::Alltoall};

  for (const char* name : {"Eagle", "Frontier"}) {
    const auto& m = machines::byName(name);
    Table t({"Collective", "8 ranks, 8 B (us)", "8 ranks, 64 KiB (us)",
             "32 ranks, 8 B (us)"});
    t.setTitle(std::string(name) + ": per-operation collective latency");
    t.setAlign(0, Align::Left);
    // One task per collective (its three configurations run inline);
    // rows print in operation order.
    const auto rows = par::parallelMap(
        collectives,
        [&](const osu::Collective& coll) {
          osu::CollectiveConfig cfg;
          cfg.collective = coll;
          cfg.binaryRuns = opt.binaryRuns;
          cfg.iterations = 20;

          cfg.ranks = 8;
          cfg.messageSize = ByteCount::bytes(8);
          const auto small8 = osu::measureCollective(m, cfg);
          cfg.messageSize = ByteCount::kib(64);
          const auto big8 = osu::measureCollective(m, cfg);
          cfg.ranks = 32;
          cfg.messageSize = ByteCount::bytes(8);
          const auto small32 = osu::measureCollective(m, cfg);

          return std::vector<std::string>{
              std::string(osu::collectiveName(coll)),
              small8.latencyUs.toString(), big8.latencyUs.toString(),
              small32.latencyUs.toString()};
        },
        opt.jobs);
    for (const auto& row : rows) {
      t.addRow(row);
    }
    std::fputs(t.renderAscii().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "Tree collectives scale ~log2(ranks) in the latency term; "
      "ring allgather and pairwise alltoall scale linearly — visible in "
      "the 8-vs-32-rank columns.\n");
  return 0;
}
