/// \file bench_ext_roofline.cpp
/// \brief Extension: roofline tables for the studied systems plus the
/// DGEMM proxy — where each machine turns compute-bound and what that
/// means for a dense kernel.

#include <cstdio>

#include "bench_common.hpp"
#include "report/roofline.hpp"
#include "workload/gemm.hpp"

int main() {
  using namespace nodebench;

  const std::vector<const machines::Machine*> gpus{
      &machines::byName("Summit"), &machines::byName("Perlmutter"),
      &machines::byName("Frontier")};
  const std::vector<double> intensities{0.125, 0.5, 2.0, 8.0, 32.0, 128.0};
  std::fputs(
      report::renderRooflines(gpus, /*deviceSide=*/true, intensities)
          .renderAscii()
          .c_str(),
      stdout);
  std::printf("\nRidge points (flops/byte): Summit %.1f, Perlmutter %.1f, "
              "Frontier %.1f\n\n",
              report::ridgeIntensity(*gpus[0], true),
              report::ridgeIntensity(*gpus[1], true),
              report::ridgeIntensity(*gpus[2], true));

  Table t({"System", "Side", "N", "Intensity", "GFLOP/s", "Bound",
           "Time (ms)"});
  t.setTitle("Blocked DGEMM proxy (b = 256, 90% compute efficiency)");
  t.setAlign(1, Align::Left);
  t.setAlign(5, Align::Left);
  for (const char* name : {"Frontier", "Perlmutter", "Summit", "Sawtooth",
                           "Trinity"}) {
    const machines::Machine& m = machines::byName(name);
    for (const bool device : {false, true}) {
      if (device && !m.accelerated()) {
        continue;
      }
      workload::GemmConfig cfg;
      cfg.useDevice = device;
      const auto r = workload::runGemm(m, cfg);
      t.addRow({name, device ? "device" : "host", "4096",
                formatFixed(r.intensityFlopsPerByte, 1),
                formatFixed(r.achievedGflops, 0),
                r.computeBound ? "compute" : "memory",
                formatFixed(r.total.ms(), 2)});
    }
  }
  std::fputs(t.renderAscii().c_str(), stdout);
  std::printf(
      "\nAt b=256 the blocked GEMM's ~32 flops/byte clears every ridge "
      "point (the tightest are Theta's ~22 and the MI250X GCD's ~18): "
      "dense kernels are compute-bound everywhere, which is exactly why "
      "the paper measures bandwidth and latency instead of FLOPS.\n");
  return 0;
}
