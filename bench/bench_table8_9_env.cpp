/// \file bench_table8_9_env.cpp
/// \brief Regenerates the software-environment inventories of Tables 8
/// and 9 (appendix A of the paper).

#include <cstdio>

#include "report/tables.hpp"

int main() {
  using namespace nodebench;
  std::fputs(report::buildTable8().renderAscii().c_str(), stdout);
  std::printf("\n");
  std::fputs(report::buildTable9().renderAscii().c_str(), stdout);
  return 0;
}
