/// \file bench_table1_omp_sweep.cpp
/// \brief Table 1 harness: prints the eight OpenMP environment
/// combinations and, for each CPU system, the best BabelStream bandwidth
/// each combination achieves — showing which row wins the "Single" and
/// "All" columns of Table 4. Usage: [--runs N]

#include <cstdio>

#include "bench_common.hpp"
#include "machines/registry.hpp"
#include "report/tables.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  std::fputs(report::buildTable1().renderAscii().c_str(), stdout);
  std::printf("\n");

  // Sweep the machines in parallel (each sweep's configs then run inline
  // on their worker), print in registry order.
  const auto ms = machines::cpuMachines();
  const auto sweeps = par::parallelMap(
      ms,
      [&](const machines::Machine* m) { return report::ompSweep(*m, opt); },
      opt.jobs);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const auto& sweep = sweeps[i];
    Table t({"Configuration", "Best op", "Bandwidth (GB/s)"});
    t.setTitle(ms[i]->info.name + ": BabelStream across Table 1 combinations");
    t.setAlign(1, Align::Left);
    for (const auto& entry : sweep.entries) {
      t.addRow({entry.config, entry.bestOpName,
                entry.bestOpGBps.toString()});
    }
    std::fputs(t.renderAscii().c_str(), stdout);
    std::printf("  -> reported Single = %s, All = %s\n\n",
                sweep.bestSingle.toString().c_str(),
                sweep.bestAll.toString().c_str());
  }
  return 0;
}
