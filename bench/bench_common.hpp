#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the table/figure bench harnesses: a
/// paper-vs-measured comparison table builder and the --runs/--jobs
/// argument parser.

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "commscope/commscope.hpp"
#include "core/parallel.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "machines/registry.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "report/figures.hpp"
#include "report/paper_reference.hpp"
#include "report/tables.hpp"
#include "topo/dot.hpp"

namespace nodebench::benchtool {

/// Strict positive-integer parse; nullopt on garbage, trailing characters
/// or out-of-range values (std::atoi would silently yield 0 and the
/// harness would then run zero binaries per cell).
inline std::optional<int> parsePositiveInt(const char* text) {
  if (text == nullptr || *text == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || value < 1 ||
      value > 1'000'000'000L) {
    return std::nullopt;
  }
  return static_cast<int>(value);
}

/// Parses the shared harness arguments: "--runs N" (default: the paper's
/// 100) and "--jobs N" (default: hardware concurrency; 1 = sequential).
/// Invalid or missing values fail fast with a usage message instead of
/// silently running a nonsense configuration.
inline report::TableOptions optionsFromArgs(int argc, char** argv) {
  report::TableOptions opt;
  const auto usage = [&](const std::string& detail) {
    std::fprintf(stderr, "%s: %s\nusage: %s [--runs N] [--jobs N]\n",
                 argv[0], detail.c_str(), argv[0]);
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    if (arg == "--runs" || arg == "--jobs") {
      if (i + 1 >= argc) {
        usage(arg + " requires a value");
      }
      const auto value = parsePositiveInt(argv[++i]);
      if (!value) {
        usage(arg + " expects a positive integer, got '" +
              std::string(argv[i]) + "'");
      }
      (arg == "--runs" ? opt.binaryRuns : opt.jobs) = *value;
    } else if (arg.rfind("--", 0) == 0) {
      usage("unknown argument '" + arg + "'");
    }
    // Positional arguments (e.g. the figure benches' machine name) are
    // the binary's own business.
  }
  return opt;
}

/// Accumulates "cell | paper | measured | ratio" comparison rows.
class Comparison {
 public:
  explicit Comparison(std::string title)
      : table_({"Quantity", "Paper", "Measured", "Ratio"}),
        title_(std::move(title)) {
    table_.setTitle(title_);
  }

  void add(const std::string& label, const report::paper::Value& ref,
           const Summary& measured, int precision = 2) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f", measured.mean / ref.mean);
    char paperCell[64];
    std::snprintf(paperCell, sizeof(paperCell), "%.*f ± %.*f", precision,
                  ref.mean, precision, ref.sd);
    table_.addRow({label, paperCell, measured.toString(precision), ratio});
    worst_ = std::max(worst_, std::abs(measured.mean / ref.mean - 1.0));
  }

  void addSeparator() { table_.addSeparator(); }

  /// Prints the table plus the worst relative deviation.
  void print() const {
    std::fputs(table_.renderAscii().c_str(), stdout);
    std::printf("worst |measured/paper - 1|: %.2f%%\n\n", worst_ * 100.0);
  }

 private:
  Table table_;
  std::string title_;
  double worst_ = 0.0;
};

/// Figure harness shared by bench_fig1/2/3: renders the node diagram, the
/// link-class legend, the DOT export, and annotates each link class with
/// the measured OSU (Table 5) and Comm|Scope (Table 6) latencies — the
/// quantities the paper's figure arrows point at.
inline void printFigure(const std::string& machineName,
                        const report::TableOptions& opt) {
  const machines::Machine& m = machines::byName(machineName);
  std::fputs(report::nodeDiagram(m).c_str(), stdout);
  std::printf("\n");
  std::fputs(report::linkClassLegend(m).c_str(), stdout);

  commscope::Config ccfg;
  ccfg.binaryRuns = opt.binaryRuns;
  osu::LatencyConfig lcfg;
  lcfg.binaryRuns = opt.binaryRuns;

  Table t({"Link class", "OSU D2D MPI latency (us)",
           "Comm|Scope D2D memcpy latency (us)"});
  t.setTitle("Measured per-class latencies (arrows of the paper's figure)");
  // Measure the link classes in parallel (one OSU + one Comm|Scope cell
  // each), then emit rows in class order.
  struct ClassRow {
    Summary mpi;
    Summary copy;
  };
  const auto classes = m.topology.presentGpuLinkClasses();
  const auto measured = par::parallelMap(
      classes,
      [&](const topo::LinkClass c) {
        const auto [a, b] = osu::devicePair(m, c);
        ClassRow row;
        row.mpi =
            osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Device)
                .measure(lcfg)
                .latencyUs;
        row.copy = commscope::CommScope(m).d2dLatencyUs(c, ccfg);
        return row;
      },
      opt.jobs);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    t.addRow({std::string(topo::linkClassName(classes[i])),
              measured[i].mpi.toString(), measured[i].copy.toString()});
  }
  std::printf("\n");
  std::fputs(t.renderAscii().c_str(), stdout);

  std::printf("\nGraphviz export:\n\n%s",
              topo::toDot(m.topology, m.info.name).c_str());
}

}  // namespace nodebench::benchtool
