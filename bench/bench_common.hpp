#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the table/figure bench harnesses: a
/// paper-vs-measured comparison table builder and the --runs/--jobs
/// argument parser.

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/journal.hpp"
#include "commscope/commscope.hpp"
#include "core/parallel.hpp"
#include "core/samples.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "machines/registry.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "report/figures.hpp"
#include "report/paper_reference.hpp"
#include "report/tables.hpp"
#include "stats/store.hpp"
#include "topo/dot.hpp"

namespace nodebench::benchtool {

/// Strict positive-integer parse; nullopt on garbage, trailing characters
/// or out-of-range values (std::atoi would silently yield 0 and the
/// harness would then run zero binaries per cell).
inline std::optional<int> parsePositiveInt(const char* text) {
  if (text == nullptr || *text == '\0') {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (errno != 0 || end == nullptr || *end != '\0' || value < 1 ||
      value > 1'000'000'000L) {
    return std::nullopt;
  }
  return static_cast<int>(value);
}

/// Parsed form of the shared bench arguments; `options.journal` is wired
/// up by `optionsFromArgs`, not here, because opening the journal needs
/// the final option values (the header fingerprints them).
struct BenchArgs {
  report::TableOptions options;
  std::optional<std::string> journalPath;
  std::optional<std::string> storePath;
  bool resume = false;
  std::vector<std::string> positional;
};

/// Throwing core of the bench argument parser (testable without the
/// std::exit wrapper): "--runs N", "--jobs N", "--journal FILE",
/// "--store FILE" and "--resume". A flag given twice is an error — last-wins parsing
/// silently discards half of what the user asked for, which is exactly
/// the kind of input-boundary leniency a measurement campaign cannot
/// afford.
inline BenchArgs parseBenchArgs(const std::vector<std::string>& args) {
  BenchArgs out;
  std::vector<std::string> seen;
  const auto onceOnly = [&](const std::string& flag) {
    if (std::find(seen.begin(), seen.end(), flag) != seen.end()) {
      throw Error("duplicate flag " + flag +
                  " (each option may be given once)");
    }
    seen.push_back(flag);
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--runs" || arg == "--jobs") {
      onceOnly(arg);
      if (i + 1 >= args.size()) {
        throw Error(arg + " requires a value");
      }
      const auto value = parsePositiveInt(args[++i].c_str());
      if (!value) {
        throw Error(arg + " expects a positive integer, got '" + args[i] +
                    "'");
      }
      (arg == "--runs" ? out.options.binaryRuns : out.options.jobs) = *value;
    } else if (arg == "--journal") {
      onceOnly(arg);
      if (i + 1 >= args.size()) {
        throw Error(arg + " requires a value");
      }
      out.journalPath = args[++i];
    } else if (arg == "--store") {
      onceOnly(arg);
      if (i + 1 >= args.size()) {
        throw Error(arg + " requires a value");
      }
      out.storePath = args[++i];
    } else if (arg == "--resume") {
      onceOnly(arg);
      out.resume = true;
    } else if (arg.rfind("--", 0) == 0) {
      throw Error("unknown argument '" + arg + "'");
    } else {
      // Positional arguments (e.g. the figure benches' machine name) are
      // the binary's own business.
      out.positional.push_back(arg);
    }
  }
  if (out.resume && !out.journalPath) {
    throw Error("--resume requires --journal FILE");
  }
  return out;
}

/// Parses the shared harness arguments: "--runs N" (default: the paper's
/// 100), "--jobs N" (default: hardware concurrency; 1 = sequential),
/// "--journal FILE [--resume]" (crash-safe figure campaigns) and
/// "--store FILE" (raw-sample results store for compare/gate). Invalid,
/// missing or duplicate values fail fast with a usage message instead of
/// silently running a nonsense configuration.
///
/// Both the journal resume and the store reattach validate their header
/// fingerprints against the *same* current configuration — so a --resume
/// whose journal and store disagree (e.g. the store was recorded at a
/// different --runs) is rejected with the mismatched parameter named,
/// whichever of the two files carries the stale fingerprint.
inline report::TableOptions optionsFromArgs(int argc, char** argv) {
  // The opened journal/store must outlive the returned options (they
  // hold raw pointers); bench tools are one-shot processes, so
  // process-lifetime holders are the simplest correct owners.
  static std::unique_ptr<campaign::Journal> journalHolder;
  static std::unique_ptr<stats::ResultStore> storeHolder;
  try {
    BenchArgs parsed =
        parseBenchArgs(std::vector<std::string>(argv + 1, argv + argc));
    const campaign::CampaignConfig cfg =
        report::campaignConfig(parsed.options);
    if (parsed.journalPath) {
      journalHolder = parsed.resume
                          ? campaign::Journal::resume(*parsed.journalPath, cfg)
                          : campaign::Journal::create(*parsed.journalPath, cfg);
      for (const std::string& warning : journalHolder->warnings()) {
        std::fprintf(stderr, "%s: warning: %s\n", argv[0], warning.c_str());
      }
      parsed.options.journal = journalHolder.get();
    }
    if (parsed.storePath) {
      storeHolder =
          stats::ResultStore::attach(*parsed.storePath, cfg, parsed.resume);
      parsed.options.store = storeHolder.get();
    }
    return parsed.options;
  } catch (const Error& e) {
    std::fprintf(stderr,
                 "%s: %s\nusage: %s [--runs N] [--jobs N] "
                 "[--journal FILE [--resume]] [--store FILE]\n",
                 argv[0], e.what(), argv[0]);
    std::exit(2);
  }
}

/// Accumulates "cell | paper | measured | ratio" comparison rows.
class Comparison {
 public:
  explicit Comparison(std::string title)
      : table_({"Quantity", "Paper", "Measured", "Ratio"}),
        title_(std::move(title)) {
    table_.setTitle(title_);
  }

  void add(const std::string& label, const report::paper::Value& ref,
           const Summary& measured, int precision = 2) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f", measured.mean / ref.mean);
    char paperCell[64];
    std::snprintf(paperCell, sizeof(paperCell), "%.*f ± %.*f", precision,
                  ref.mean, precision, ref.sd);
    table_.addRow({label, paperCell, measured.toString(precision), ratio});
    worst_ = std::max(worst_, std::abs(measured.mean / ref.mean - 1.0));
  }

  void addSeparator() { table_.addSeparator(); }

  /// Prints the table plus the worst relative deviation.
  void print() const {
    std::fputs(table_.renderAscii().c_str(), stdout);
    std::printf("worst |measured/paper - 1|: %.2f%%\n\n", worst_ * 100.0);
  }

 private:
  Table table_;
  std::string title_;
  double worst_ = 0.0;
};

/// Figure harness shared by bench_fig1/2/3: renders the node diagram, the
/// link-class legend, the DOT export, and annotates each link class with
/// the measured OSU (Table 5) and Comm|Scope (Table 6) latencies — the
/// quantities the paper's figure arrows point at.
inline void printFigure(const std::string& machineName,
                        const report::TableOptions& opt) {
  const machines::Machine& m = machines::byName(machineName);
  std::fputs(report::nodeDiagram(m).c_str(), stdout);
  std::printf("\n");
  std::fputs(report::linkClassLegend(m).c_str(), stdout);

  commscope::Config ccfg;
  ccfg.binaryRuns = opt.binaryRuns;
  osu::LatencyConfig lcfg;
  lcfg.binaryRuns = opt.binaryRuns;

  Table t({"Link class", "OSU D2D MPI latency (us)",
           "Comm|Scope D2D memcpy latency (us)"});
  t.setTitle("Measured per-class latencies (arrows of the paper's figure)");
  // Measure the link classes in parallel (one OSU + one Comm|Scope cell
  // each), then emit rows in class order.
  struct ClassRow {
    Summary mpi;
    Summary copy;
  };
  const auto classes = m.topology.presentGpuLinkClasses();
  const auto measured = par::parallelMap(
      classes,
      [&](const topo::LinkClass c) {
        // Under --journal, each class row is one campaign cell: replay it
        // bit-exactly when already journalled, persist it otherwise. A
        // cell the store lacks is re-measured even when the journal could
        // replay it (replayed payloads carry no raw samples);
        // re-measurement is bit-identical and the append is idempotent.
        const std::string cell =
            std::string("figure D2D class ") +
            static_cast<char>('A' + static_cast<int>(c));
        const bool wantStore =
            opt.store != nullptr && !opt.store->containsCell(m.info.name, cell);
        if (opt.journal != nullptr && !wantStore) {
          if (const campaign::CellRecord* rec =
                  opt.journal->find(m.info.name, cell)) {
            campaign::PayloadReader r(rec->payload);
            ClassRow row;
            row.mpi = campaign::readSummary(r);
            row.copy = campaign::readSummary(r);
            return row;
          }
        }
        std::optional<SampleCapture> capture;
        if (wantStore) {
          capture.emplace();
        }
        const auto [a, b] = osu::devicePair(m, c);
        ClassRow row;
        row.mpi =
            osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Device)
                .measure(lcfg)
                .latencyUs;
        row.copy = commscope::CommScope(m).d2dLatencyUs(c, ccfg);
        if (wantStore) {
          stats::SampleRecord rec;
          rec.machine = m.info.name;
          rec.cell = cell;
          rec.unit = "us";
          rec.better = stats::Better::Lower;
          rec.quantity = "OSU D2D MPI latency";
          rec.summary = row.mpi;
          rec.samples = capture->take(osu::kLatencySampleChannel);
          opt.store->append(rec);
          rec.quantity = "Comm|Scope D2D memcpy latency";
          rec.summary = row.copy;
          rec.samples = capture->take(commscope::kD2dLatencySampleChannel);
          opt.store->append(std::move(rec));
        }
        if (opt.journal != nullptr) {
          campaign::CellRecord rec;
          rec.machine = m.info.name;
          rec.cell = cell;
          rec.attempts = 1;
          campaign::PayloadWriter w;
          campaign::putSummary(w, row.mpi);
          campaign::putSummary(w, row.copy);
          rec.payload = w.bytes();
          opt.journal->append(std::move(rec));
        }
        return row;
      },
      opt.jobs);
  for (std::size_t i = 0; i < classes.size(); ++i) {
    t.addRow({std::string(topo::linkClassName(classes[i])),
              measured[i].mpi.toString(), measured[i].copy.toString()});
  }
  std::printf("\n");
  std::fputs(t.renderAscii().c_str(), stdout);

  std::printf("\nGraphviz export:\n\n%s",
              topo::toDot(m.topology, m.info.name).c_str());
}

}  // namespace nodebench::benchtool
