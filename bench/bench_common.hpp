#pragma once
/// \file bench_common.hpp
/// \brief Shared helpers for the table/figure bench harnesses: a
/// paper-vs-measured comparison table builder and a --runs argument.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "commscope/commscope.hpp"
#include "core/stats.hpp"
#include "core/table.hpp"
#include "machines/registry.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "report/figures.hpp"
#include "report/paper_reference.hpp"
#include "report/tables.hpp"
#include "topo/dot.hpp"

namespace nodebench::benchtool {

/// Parses an optional "--runs N" argument (default: the paper's 100).
inline report::TableOptions optionsFromArgs(int argc, char** argv) {
  report::TableOptions opt;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--runs") {
      opt.binaryRuns = std::atoi(argv[i + 1]);
    }
  }
  return opt;
}

/// Accumulates "cell | paper | measured | ratio" comparison rows.
class Comparison {
 public:
  explicit Comparison(std::string title)
      : table_({"Quantity", "Paper", "Measured", "Ratio"}),
        title_(std::move(title)) {
    table_.setTitle(title_);
  }

  void add(const std::string& label, const report::paper::Value& ref,
           const Summary& measured, int precision = 2) {
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.3f", measured.mean / ref.mean);
    char paperCell[64];
    std::snprintf(paperCell, sizeof(paperCell), "%.*f ± %.*f", precision,
                  ref.mean, precision, ref.sd);
    table_.addRow({label, paperCell, measured.toString(precision), ratio});
    worst_ = std::max(worst_, std::abs(measured.mean / ref.mean - 1.0));
  }

  void addSeparator() { table_.addSeparator(); }

  /// Prints the table plus the worst relative deviation.
  void print() const {
    std::fputs(table_.renderAscii().c_str(), stdout);
    std::printf("worst |measured/paper - 1|: %.2f%%\n\n", worst_ * 100.0);
  }

 private:
  Table table_;
  std::string title_;
  double worst_ = 0.0;
};

/// Figure harness shared by bench_fig1/2/3: renders the node diagram, the
/// link-class legend, the DOT export, and annotates each link class with
/// the measured OSU (Table 5) and Comm|Scope (Table 6) latencies — the
/// quantities the paper's figure arrows point at.
inline void printFigure(const std::string& machineName,
                        const report::TableOptions& opt) {
  const machines::Machine& m = machines::byName(machineName);
  std::fputs(report::nodeDiagram(m).c_str(), stdout);
  std::printf("\n");
  std::fputs(report::linkClassLegend(m).c_str(), stdout);

  commscope::CommScope scope(m);
  commscope::Config ccfg;
  ccfg.binaryRuns = opt.binaryRuns;
  osu::LatencyConfig lcfg;
  lcfg.binaryRuns = opt.binaryRuns;

  Table t({"Link class", "OSU D2D MPI latency (us)",
           "Comm|Scope D2D memcpy latency (us)"});
  t.setTitle("Measured per-class latencies (arrows of the paper's figure)");
  for (const topo::LinkClass c : m.topology.presentGpuLinkClasses()) {
    const auto [a, b] = osu::devicePair(m, c);
    const auto mpi =
        osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Device)
            .measure(lcfg)
            .latencyUs;
    const auto copy = scope.d2dLatencyUs(c, ccfg);
    t.addRow({std::string(topo::linkClassName(c)), mpi.toString(),
              copy.toString()});
  }
  std::printf("\n");
  std::fputs(t.renderAscii().c_str(), stdout);

  std::printf("\nGraphviz export:\n\n%s",
              topo::toDot(m.topology, m.info.name).c_str());
}

}  // namespace nodebench::benchtool
