/// \file bench_ablation_stream_sizes.cpp
/// \brief BabelStream vector-size sweep (appendix B.2 of the paper sweeps
/// 16k doubles up to 128M doubles): cache effects on the host side,
/// launch-overhead amortization on the device side.

#include <cstdio>
#include <vector>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "bench_common.hpp"
#include "report/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  babelstream::DriverConfig cfg;
  cfg.binaryRuns = opt.binaryRuns;
  cfg.arrayBytes = ByteCount::gib(1);

  const machines::Machine& eagle = machines::byName("Eagle");
  babelstream::SimOmpBackend host(
      eagle, ompenv::OmpConfig{eagle.coreCount(), ompenv::ProcBind::Spread,
                               ompenv::Places::Cores});
  const auto hostSweep =
      babelstream::sizeSweep(host, babelstream::StreamOp::Triad, cfg);

  babelstream::SimDeviceBackend frontier(machines::byName("Frontier"), 0);
  const auto devSweep =
      babelstream::sizeSweep(frontier, babelstream::StreamOp::Triad, cfg);

  babelstream::SimDeviceBackend summit(machines::byName("Summit"), 0);
  const auto v100Sweep =
      babelstream::sizeSweep(summit, babelstream::StreamOp::Triad, cfg);

  Table t({"Array (KiB)", "Eagle 36t Triad (GB/s)",
           "Frontier GCD Triad (GB/s)", "Summit V100 Triad (GB/s)"});
  t.setTitle("BabelStream Triad bandwidth vs vector size");
  for (std::size_t i = 0; i < devSweep.size(); ++i) {
    std::vector<std::string> row{
        std::to_string(devSweep[i].arrayBytes.count() / 1024)};
    row.push_back(i < hostSweep.size()
                      ? formatFixed(hostSweep[i].bandwidthGBps.mean, 1)
                      : std::string{});
    row.push_back(formatFixed(devSweep[i].bandwidthGBps.mean, 1));
    row.push_back(formatFixed(v100Sweep[i].bandwidthGBps.mean, 1));
    t.addRow(row);
  }
  std::fputs(t.renderAscii().c_str(), stdout);

  std::vector<double> xs;
  report::Series hostS{"Eagle host Triad", {}};
  report::Series frontierS{"Frontier GCD Triad", {}};
  report::Series summitS{"Summit V100 Triad", {}};
  for (std::size_t i = 0; i < devSweep.size(); ++i) {
    xs.push_back(devSweep[i].arrayBytes.asDouble());
    hostS.y.push_back(i < hostSweep.size()
                          ? hostSweep[i].bandwidthGBps.mean
                          : hostSweep.back().bandwidthGBps.mean);
    frontierS.y.push_back(devSweep[i].bandwidthGBps.mean);
    summitS.y.push_back(v100Sweep[i].bandwidthGBps.mean);
  }
  report::ChartOptions copt;
  copt.logX = true;
  copt.logY = true;
  copt.xLabel = "array bytes (log2)";
  copt.yLabel = "GB/s (log2)";
  std::printf("\n%s",
              report::renderChart(xs, {hostS, frontierS, summitS}, copt)
                  .c_str());
  std::printf(
      "\nHost curve: LLC boost below ~32 MiB/socket, DRAM plateau above "
      "(the paper reports the >=128 MB plateau). Device curves: launch + "
      "sync overhead dominates small vectors, HBM plateau at large ones "
      "(the paper reports the 1 GB point).\n");
  return 0;
}
