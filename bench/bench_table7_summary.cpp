/// \file bench_table7_summary.cpp
/// \brief Regenerates Table 7 (min-max ranges of every Table 5/6 mean per
/// accelerator model) and prints the paper's published ranges alongside.
/// Usage: [--runs N]

#include <cstdio>

#include "bench_common.hpp"
#include "report/tables.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);
  std::printf("Regenerating Table 7 (%d binary runs per cell)...\n\n",
              opt.binaryRuns);

  const auto t5 = report::computeTable5(opt);
  const auto t6 = report::computeTable6(opt);
  std::fputs(report::buildTable7(t5, t6).renderAscii().c_str(), stdout);

  std::printf(
      "\nPaper's Table 7 for reference:\n"
      "  V100   | 786.43-861.40   | 18.10-18.72 | 4.13-4.84 | 4.31-5.59 |"
      " 7.27-7.82   | 44.88-63.40 | 23.91-24.97\n"
      "  A100   | 1362.75-1363.74 | 10.42-13.50 | 1.77-1.83 | 0.98-1.32 |"
      " 4.24-5.33   | 23.71-24.74 | 14.74-32.84\n"
      "  MI250X | 1291.38-1336.81 | 0.44-0.50   | 1.51-2.16 | 0.12-0.14 |"
      " 12.19-12.91 | 24.87-24.88 | 9.85-12.02\n");
  return 0;
}
