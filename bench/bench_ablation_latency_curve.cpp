/// \file bench_ablation_latency_curve.cpp
/// \brief Full osu_latency message-size curve (0 B .. 1 MiB) for a
/// representative machine of each class — the data the paper's
/// small-message latency cells are sampled from.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "report/ascii_chart.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  struct Case {
    const char* machine;
    const char* label;
    bool device;
  };
  const std::vector<Case> cases{
      {"Eagle", "Eagle host on-socket", false},
      {"Trinity", "Trinity host on-socket", false},
      {"Frontier", "Frontier GPU class A", true},
      {"Summit", "Summit GPU class A", true},
  };

  osu::LatencyConfig cfg;
  cfg.binaryRuns = opt.binaryRuns;
  cfg.iterations = 100;

  std::vector<std::vector<osu::LatencyResult>> curves;
  for (const Case& c : cases) {
    const machines::Machine& m = machines::byName(c.machine);
    const auto [a, b] = c.device
                            ? osu::devicePair(m, topo::LinkClass::A)
                            : osu::onSocketPair(m);
    const osu::LatencyBenchmark bench(
        m, a, b,
        c.device ? mpisim::BufferSpace::Kind::Device
                 : mpisim::BufferSpace::Kind::Host);
    curves.push_back(bench.sweep(ByteCount::mib(1), cfg));
  }

  Table t({"Size (B)", cases[0].label, cases[1].label, cases[2].label,
           cases[3].label});
  t.setTitle("osu_latency one-way latency (us) vs message size");
  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    std::vector<std::string> row{
        std::to_string(curves[0][i].messageSize.count())};
    for (const auto& curve : curves) {
      row.push_back(formatFixed(curve[i].latencyUs.mean, 3));
    }
    t.addRow(row);
  }
  std::fputs(t.renderAscii().c_str(), stdout);

  // Figure view: log-log latency curves (skip the 0 B point for log x).
  std::vector<double> xs;
  std::vector<report::Series> series(cases.size());
  for (std::size_t c = 0; c < cases.size(); ++c) {
    series[c].name = cases[c].label;
  }
  for (std::size_t i = 1; i < curves[0].size(); ++i) {
    xs.push_back(static_cast<double>(curves[0][i].messageSize.count()));
    for (std::size_t c = 0; c < curves.size(); ++c) {
      series[c].y.push_back(curves[c][i].latencyUs.mean);
    }
  }
  report::ChartOptions copt;
  copt.logX = true;
  copt.logY = true;
  copt.xLabel = "message size (B, log2)";
  copt.yLabel = "one-way latency (us, log2)";
  std::printf("\n%s", report::renderChart(xs, series, copt).c_str());
  std::printf(
      "\nFlat eager floor for small sizes (the value the paper reports), "
      "a handshake step at 8 KiB, then bandwidth-dominated growth.\n");
  return 0;
}
