/// \file bench_ext_stencil.cpp
/// \brief Extension: stencil-proxy scaling study — how the balance of
/// compute vs halo exchange shifts with rank count and halo size on
/// representative machines, composing the paper's measured quantities
/// into application-level behaviour.

#include <cstdio>

#include "bench_common.hpp"
#include "workload/stencil.hpp"

int main() {
  using namespace nodebench;

  // Strong scaling: fixed global problem, growing rank count.
  const std::uint64_t globalCells = 1ull << 24;
  for (const char* name : {"Eagle", "Frontier"}) {
    const machines::Machine& m = machines::byName(name);
    Table t({"Ranks", "Total/iter (us)", "Compute (us)", "Halo (us)",
             "Halo frac", "Speedup"});
    t.setTitle(std::string(name) +
               ": strong scaling of the stencil proxy (host ranks)");
    double base = 0.0;
    for (int ranks = 2; ranks <= 32; ranks *= 2) {
      workload::StencilConfig cfg;
      cfg.ranks = ranks;
      cfg.cellsPerRank = globalCells / ranks;
      cfg.iterations = 5;
      const auto r = workload::runStencil(m, cfg);
      if (base == 0.0) {
        base = r.totalPerIteration.us() * 2.0;  // normalized to 1 rank
      }
      t.addRow({std::to_string(ranks),
                formatFixed(r.totalPerIteration.us(), 1),
                formatFixed(r.computePerIteration.us(), 1),
                formatFixed(r.haloPerIteration.us(), 1),
                formatFixed(r.haloFraction(), 3),
                formatFixed(base / r.totalPerIteration.us(), 2)});
    }
    std::fputs(t.renderAscii().c_str(), stdout);
    std::printf("\n");
  }

  // Device comparison at fixed configuration.
  Table d({"System", "Total/iter (us)", "Compute (us)", "Halo (us)",
           "Mcells/s"});
  d.setTitle("Device stencil (4 GPU ranks, 2M cells/rank)");
  for (const char* name :
       {"Frontier", "Summit", "Perlmutter", "Polaris", "Tioga"}) {
    const machines::Machine& m = machines::byName(name);
    workload::StencilConfig cfg;
    cfg.ranks = 4;
    cfg.useDevice = true;
    cfg.iterations = 5;
    const auto r = workload::runStencil(m, cfg);
    d.addRow({name, formatFixed(r.totalPerIteration.us(), 1),
              formatFixed(r.computePerIteration.us(), 1),
              formatFixed(r.haloPerIteration.us(), 1),
              formatFixed(r.cellsPerSecond / 1e6, 0)});
  }
  std::fputs(d.renderAscii().c_str(), stdout);
  std::printf(
      "\nStrong scaling flattens once the fixed halo cost dominates the "
      "shrinking per-rank compute (Amdahl through the microbenchmark "
      "lens). On devices, Summit's high launch+sync and 18 us staging "
      "path cost it the lead its HBM deficit alone would not explain.\n");
  return 0;
}
