/// \file bench_fig2_summit_topology.cpp
/// \brief Figure 2 harness: the Summit node diagram (2x Power9 + 6x V100,
/// NVLink2 cliques bridged by X-Bus), annotated with measured per-class
/// latencies. Sierra and Lassen share the topology shape with 4 GPUs;
/// pass a machine name to render them. Usage: [machine] [--runs N]

#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  std::string machine = "Summit";
  if (argc > 1 && argv[1][0] != '-') {
    machine = argv[1];
  }
  nodebench::benchtool::printFigure(
      machine, nodebench::benchtool::optionsFromArgs(argc, argv));
  return 0;
}
