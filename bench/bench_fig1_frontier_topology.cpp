/// \file bench_fig1_frontier_topology.cpp
/// \brief Figure 1 harness: the Frontier node diagram (EPYC + 4x MI250X
/// exposing 8 GCDs over Infinity Fabric link classes A-D), annotated with
/// the measured latencies its arrows refer to. RZVernal and Tioga share
/// the topology; pass a machine name to render them instead.
/// Usage: bench_fig1_frontier_topology [machine] [--runs N]

#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  std::string machine = "Frontier";
  if (argc > 1 && argv[1][0] != '-') {
    machine = argv[1];
  }
  nodebench::benchtool::printFigure(
      machine, nodebench::benchtool::optionsFromArgs(argc, argv));
  return 0;
}
