/// \file bench_ext_osu_bw.cpp
/// \brief Extension: OSU bandwidth (osu_bw) and bidirectional bandwidth
/// (osu_bibw) sweeps on representative machines — the point-to-point
/// counterparts of the latency-only selection in the paper.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "osu/bandwidth.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  const std::vector<const char*> systems{"Eagle", "Sawtooth", "Frontier",
                                         "Summit"};
  osu::BandwidthConfig cfg;
  cfg.binaryRuns = opt.binaryRuns;
  cfg.iterations = 5;

  for (const bool bidirectional : {false, true}) {
    Table t({"Size (B)", "Eagle", "Sawtooth", "Frontier", "Summit"});
    t.setTitle(std::string(bidirectional ? "osu_bibw" : "osu_bw") +
               ": on-socket host window bandwidth (GB/s)");
    // One sweep task per machine; rows assemble in fixed column order.
    const auto sweeps = par::parallelMap(
        systems,
        [&](const char* const& name) {
          const auto& m = machines::byName(name);
          const auto [a, b] = osu::onSocketPair(m);
          const osu::BandwidthBenchmark bench(
              m, a, b, mpisim::BufferSpace::Kind::Host, bidirectional);
          return bench.sweep(ByteCount::mib(4), cfg);
        },
        opt.jobs);
    for (std::size_t i = 0; i < sweeps[0].size(); ++i) {
      std::vector<std::string> row{
          std::to_string(sweeps[0][i].messageSize.count())};
      for (const auto& sweep : sweeps) {
        row.push_back(formatFixed(sweep[i].bandwidthGBps.mean, 2));
      }
      t.addRow(row);
    }
    std::fputs(t.renderAscii().c_str(), stdout);
    std::printf("\n");
  }
  std::printf(
      "Small messages are overhead-bound (rate ~ size/softwareOverhead); "
      "large ones converge to the path copy bandwidth, with bibw "
      "approaching 2x bw where the two directions do not share a "
      "bottleneck.\n");
  return 0;
}
