/// \file bench_ext_message_rate.cpp
/// \brief Extension: osu_mbw_mr-style multi-pair bandwidth and message
/// rate, intra-node and across two nodes, plus multi-node allreduce
/// scaling — the remaining limbs of the paper's inter-node future-work
/// item ("collective communication", "injection bandwidth").

#include <cstdio>

#include "bench_common.hpp"
#include "netsim/network.hpp"
#include "osu/message_rate.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  // Intra-node message rate vs pair count.
  Table t({"Pairs", "Eagle agg BW (GB/s)", "Eagle Mmsgs/s",
           "Frontier agg BW (GB/s)", "Frontier Mmsgs/s"});
  t.setTitle("osu_mbw_mr intra-node (8 B messages, window 64)");
  for (int pairs = 1; pairs <= 16; pairs *= 2) {
    osu::MessageRateConfig cfg;
    cfg.pairs = pairs;
    cfg.binaryRuns = opt.binaryRuns;
    const auto eagle =
        osu::measureMessageRate(machines::byName("Eagle"), cfg);
    const auto frontier =
        osu::measureMessageRate(machines::byName("Frontier"), cfg);
    t.addRow({std::to_string(pairs),
              formatFixed(eagle.aggregateBandwidthGBps.mean, 3),
              formatFixed(eagle.messagesPerSecondM.mean, 1),
              formatFixed(frontier.aggregateBandwidthGBps.mean, 3),
              formatFixed(frontier.messagesPerSecondM.mean, 1)});
  }
  std::fputs(t.renderAscii().c_str(), stdout);

  // Inter-node: the NIC caps the aggregate (64 KiB messages).
  std::printf("\n");
  Table n({"Pairs", "Aggregate BW (GB/s)", "BW per pair (GB/s)"});
  n.setTitle(
      "osu_mbw_mr across two Frontier nodes (64 KiB): NIC injection cap");
  const auto& frontier = machines::byName("Frontier");
  for (int pairs = 1; pairs <= 8; pairs *= 2) {
    osu::MessageRateConfig cfg;
    cfg.pairs = pairs;
    cfg.messageSize = ByteCount::kib(64);
    cfg.binaryRuns = opt.binaryRuns;
    cfg.network = netsim::networkFor(frontier);
    const auto r = osu::measureMessageRate(frontier, cfg);
    n.addRow({std::to_string(pairs),
              formatFixed(r.aggregateBandwidthGBps.mean, 2),
              formatFixed(r.aggregateBandwidthGBps.mean / pairs, 2)});
  }
  std::fputs(n.renderAscii().c_str(), stdout);
  std::printf(
      "\nIntra-node pairs scale nearly linearly (independent shared-memory "
      "channels); the inter-node aggregate is flat regardless of pair "
      "count — all pairs serialize on the node's NIC injection channel "
      "(at 64 KiB the per-message software/NIC overheads keep the "
      "achieved rate around half the 25 GB/s Slingshot wire rate) — the "
      "node-vs-network capability contrast the paper's future work "
      "targets.\n");
  return 0;
}
