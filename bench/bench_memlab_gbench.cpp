/// \file bench_memlab_gbench.cpp
/// \brief google-benchmark microbenchmarks of the memory-hierarchy lab:
/// the pointer-chase analytic truth, one measured chase/sweep grid
/// point, and the full sweep grid on one machine. These guard the
/// harness cost of the memlab families — `nodebench sweep` runs
/// machines x 15 grid points x --runs driver executions, so a
/// regression in the per-point path multiplies out fast.

#include <benchmark/benchmark.h>

#include "core/units.hpp"
#include "machines/registry.hpp"
#include "memlab/chase.hpp"
#include "memlab/sweep.hpp"

namespace {

using namespace nodebench;

void BM_ChaseTruthLadder(benchmark::State& state) {
  const machines::Machine& m = machines::byName("Frontier");
  const memlab::ChaseConfig cfg;
  const std::vector<ByteCount> grid = memlab::chaseGrid(cfg);
  for (auto _ : state) {
    double acc = 0.0;
    for (const ByteCount ws : grid) {
      acc += memlab::chaseNsPerAccessTruth(m, ws);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_ChaseTruthLadder);

void BM_MeasureChasePoint(benchmark::State& state) {
  const machines::Machine& m = machines::byName("Frontier");
  memlab::ChaseConfig cfg;
  cfg.binaryRuns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memlab::measureChasePoint(m, ByteCount::mib(8), cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          cfg.binaryRuns);
}
BENCHMARK(BM_MeasureChasePoint)->Arg(10)->Arg(100);

void BM_MeasureSweepPoint(benchmark::State& state) {
  // One full-team triad point: the dominant cost of `nodebench sweep`
  // (simulated OpenMP team + noise draws per binary run).
  const machines::Machine& m = machines::byName("Frontier");
  memlab::SweepConfig cfg;
  cfg.binaryRuns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        memlab::measureSweepPoint(m, ByteCount::mib(1), cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          cfg.binaryRuns);
}
BENCHMARK(BM_MeasureSweepPoint)->Arg(10)->Arg(100);

void BM_SweepGridOneMachine(benchmark::State& state) {
  const machines::Machine& m = machines::byName("Eagle");
  memlab::SweepConfig cfg;
  cfg.binaryRuns = 10;
  const std::vector<ByteCount> grid = memlab::sweepGrid(cfg);
  for (auto _ : state) {
    for (const ByteCount arrayBytes : grid) {
      benchmark::DoNotOptimize(
          memlab::measureSweepPoint(m, arrayBytes, cfg));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_SweepGridOneMachine);

}  // namespace
