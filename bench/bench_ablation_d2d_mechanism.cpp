/// \file bench_ablation_d2d_mechanism.cpp
/// \brief Ablation: why is Comm|Scope's device-to-device latency so much
/// higher than OSU's (paper §4: hipMemcpyAsync vs MPI remote memory
/// access)? This bench measures both on every accelerator system and
/// decomposes the Comm|Scope path into its cost terms.

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const auto opt = benchtool::optionsFromArgs(argc, argv);

  Table t({"System", "OSU D2D (us)", "Comm|Scope D2D (us)", "gap (x)",
           "call ovhd", "DMA setup", "route", "sync wait"});
  t.setTitle(
      "Class-A device pair: MPI-RMA vs memcpyAsync latency decomposition "
      "(us)");

  for (const machines::Machine* m : machines::gpuMachines()) {
    commscope::CommScope scope(*m);
    commscope::Config ccfg;
    ccfg.binaryRuns = opt.binaryRuns;
    osu::LatencyConfig lcfg;
    lcfg.binaryRuns = opt.binaryRuns;

    const auto [a, b] = osu::devicePair(*m, topo::LinkClass::A);
    const double mpi =
        osu::LatencyBenchmark(*m, a, b, mpisim::BufferSpace::Kind::Device)
            .measure(lcfg)
            .latencyUs.mean;
    const double copy = scope.d2dLatencyUs(topo::LinkClass::A, ccfg).mean;

    const auto pair = m->topology.representativePair(topo::LinkClass::A);
    const auto route =
        m->topology.routeGpuToGpu(pair->first, pair->second);
    const auto& d = *m->device;

    const auto cell = [](double v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return std::string(buf);
    };
    t.addRow({m->info.name, cell(mpi), cell(copy), cell(copy / mpi),
              cell(d.memcpyCallOverhead.us()), cell(d.d2dDmaSetup.us()),
              cell(route.latency.us()), cell(d.syncWait.us())});
  }
  std::fputs(t.renderAscii().c_str(), stdout);
  std::printf(
      "\nThe memcpyAsync path pays driver call + DMA-engine setup + a "
      "synchronize per copy; MPI's RMA path amortizes registration and "
      "rides the fabric directly — a >20x gap on the MI250X machines, "
      "exactly the contrast the paper observes between Tables 5 and 6. "
      "Perlmutter vs Polaris isolates the system-software term: same "
      "route, ~2.3x different DMA setup (CUDA driver difference).\n");
  return 0;
}
