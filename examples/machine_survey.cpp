/// \file machine_survey.cpp
/// \brief The paper's core use case: a developer of a portable
/// application wants to compare machine characteristics *across*
/// platforms, not study one machine in isolation (§1). This example
/// surveys all thirteen systems and prints a compact cross-machine
/// comparison ranked by each metric.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "commscope/commscope.hpp"
#include "core/table.hpp"
#include "machines/registry.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"

namespace {

using namespace nodebench;

struct SurveyRow {
  const machines::Machine* machine;
  double memoryBw = 0.0;   // GB/s (device on GPU systems, host otherwise)
  double mpiLatency = 0.0; // us (device pair on GPU systems)
  double launch = -1.0;    // us, GPU systems only
};

SurveyRow survey(const machines::Machine& m) {
  SurveyRow row{&m};
  babelstream::DriverConfig scfg;
  scfg.binaryRuns = 20;
  osu::LatencyConfig lcfg;
  lcfg.binaryRuns = 20;

  if (m.accelerated()) {
    babelstream::SimDeviceBackend stream(m, 0);
    scfg.arrayBytes = ByteCount::gib(1);
    row.memoryBw = babelstream::run(stream, scfg).best().bandwidthGBps.mean;
    const auto [a, b] = osu::devicePair(m, topo::LinkClass::A);
    row.mpiLatency =
        osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Device)
            .measure(lcfg)
            .latencyUs.mean;
    commscope::CommScope scope(m);
    commscope::Config ccfg;
    ccfg.binaryRuns = 20;
    row.launch = scope.kernelLaunchUs(ccfg).mean;
  } else {
    babelstream::SimOmpBackend stream(
        m, ompenv::OmpConfig{m.coreCount(), ompenv::ProcBind::Spread,
                             ompenv::Places::Cores});
    row.memoryBw = babelstream::run(stream, scfg).best().bandwidthGBps.mean;
    const auto [a, b] = osu::onSocketPair(m);
    row.mpiLatency =
        osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Host)
            .measure(lcfg)
            .latencyUs.mean;
  }
  return row;
}

}  // namespace

int main() {
  std::vector<SurveyRow> rows;
  for (const machines::Machine& m : machines::allMachines()) {
    std::printf("surveying %s...\n", m.info.name.c_str());
    rows.push_back(survey(m));
  }

  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.memoryBw > b.memoryBw;
  });

  Table t({"System", "Type", "Stream BW (GB/s)", "MPI latency (us)",
           "Kernel launch (us)"});
  t.setTitle("Cross-machine survey, ranked by achievable memory bandwidth");
  t.setAlign(1, Align::Left);
  for (const SurveyRow& row : rows) {
    t.addRow({row.machine->info.name,
              row.machine->accelerated()
                  ? row.machine->info.acceleratorModel
                  : row.machine->info.cpuModel,
              formatFixed(row.memoryBw, 1), formatFixed(row.mpiLatency, 2),
              row.launch >= 0.0 ? formatFixed(row.launch, 2)
                                : std::string("-")});
  }
  std::printf("\n%s", t.renderAscii().c_str());

  std::printf(
      "\nReading guide: GPU rows report device-resident benchmarks "
      "(BabelStream on one GCD for MI250X systems), CPU rows the host "
      "equivalents, so the table answers the paper's motivating "
      "questions — realizable bandwidth and the latencies an application "
      "actually sees — in one place.\n");
  return 0;
}
