/// \file quickstart.cpp
/// \brief Five-minute tour of the nodebench public API: pick a machine,
/// look at its node, and run the three benchmark suites of the paper
/// against it.
///
///   $ ./quickstart [machine]        (default: Frontier)

#include <cstdio>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "commscope/commscope.hpp"
#include "machines/registry.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "report/figures.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;

  // 1. Pick a system from the June-2023 Top500 study.
  const machines::Machine& m =
      machines::byName(argc > 1 ? argv[1] : "Frontier");
  std::printf("== %s (Top500 rank %d, %s) ==\n\n", m.info.name.c_str(),
              m.info.top500Rank, m.info.location.c_str());

  // 2. Look at the node.
  std::fputs(report::nodeDiagram(m).c_str(), stdout);

  // 3. BabelStream: achievable memory bandwidth.
  if (m.accelerated()) {
    babelstream::SimDeviceBackend stream(m, /*device=*/0);
    babelstream::DriverConfig cfg;
    cfg.arrayBytes = ByteCount::gib(1);
    const auto result = babelstream::run(stream, cfg);
    std::printf("\nBabelStream best op (%s): %s GB/s (peak %s)\n",
                babelstream::streamOpName(result.best().op).data(),
                result.best().bandwidthGBps.toString().c_str(),
                m.device->hbmPeakNote.c_str());
  }

  // 4. osu_latency: host pair and, on GPU machines, the class-A pair.
  osu::LatencyConfig lcfg;
  const auto [hostA, hostB] = osu::onSocketPair(m);
  const auto hostLat =
      osu::LatencyBenchmark(m, hostA, hostB, mpisim::BufferSpace::Kind::Host)
          .measure(lcfg);
  std::printf("MPI latency host-to-host: %s us\n",
              hostLat.latencyUs.toString().c_str());
  if (m.accelerated()) {
    const auto [devA, devB] = osu::devicePair(m, topo::LinkClass::A);
    const auto devLat = osu::LatencyBenchmark(
                            m, devA, devB, mpisim::BufferSpace::Kind::Device)
                            .measure(lcfg);
    std::printf("MPI latency device-to-device (class A): %s us\n",
                devLat.latencyUs.toString().c_str());

    // 5. Comm|Scope: runtime costs every kernel pays.
    commscope::CommScope scope(m);
    const commscope::Config ccfg;
    std::printf("kernel launch: %s us, empty-queue wait: %s us\n",
                scope.kernelLaunchUs(ccfg).toString().c_str(),
                scope.syncWaitUs(ccfg).toString().c_str());
    std::printf("pinned<->device: %s us latency, %s GB/s\n",
                scope.hostDeviceLatencyUs(ccfg).toString().c_str(),
                scope.hostDeviceBandwidthGBps(ccfg).toString().c_str());
  }
  return 0;
}
