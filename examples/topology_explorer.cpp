/// \file topology_explorer.cpp
/// \brief Walks a machine's node topology through the public API: the
/// diagram, every GPU pair's link class, and the resolved route (hops,
/// latency, bottleneck bandwidth) between any two devices.
///
///   $ ./topology_explorer [machine]   (default: Summit)

#include <cstdio>

#include "machines/registry.hpp"
#include "report/figures.hpp"
#include "topo/dot.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  const machines::Machine& m =
      machines::byName(argc > 1 ? argv[1] : "Summit");
  const topo::NodeTopology& topology = m.topology;

  std::fputs(report::nodeDiagram(m).c_str(), stdout);
  std::printf("\nsockets=%d numa=%d cores=%d hwthreads=%d gpus=%d\n\n",
              topology.socketCount(), topology.numaCount(),
              topology.coreCount(), m.hardwareThreadCount(),
              topology.gpuCount());

  std::fputs(report::linkClassLegend(m).c_str(), stdout);

  if (topology.gpuCount() >= 2) {
    std::printf("\nResolved routes between all GPU pairs:\n");
    for (int i = 0; i < topology.gpuCount(); ++i) {
      for (int j = i + 1; j < topology.gpuCount(); ++j) {
        const auto route =
            topology.routeGpuToGpu(topo::GpuId{i}, topo::GpuId{j});
        std::printf(
            "  gpu%d -> gpu%d: class %s, %zu hop%s, %.2f us, %.0f GB/s "
            "bottleneck\n",
            i, j,
            topo::linkClassName(
                topology.gpuPairClass(topo::GpuId{i}, topo::GpuId{j}))
                .data(),
            route.hops.size(), route.hops.size() == 1 ? "" : "s",
            route.latency.us(), route.bottleneck.inGBps());
      }
    }
  }

  std::printf("\nGraphviz (pipe into `dot -Tsvg`):\n\n%s",
              topo::toDot(topology, m.info.name).c_str());
  return 0;
}
