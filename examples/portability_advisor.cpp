/// \file portability_advisor.cpp
/// \brief Domain scenario from the paper's introduction: a developer of a
/// performance-portable application wants a "first stop" answer to how
/// their code will behave across DOE systems.
///
/// Given a simple application profile — bytes streamed per step, kernels
/// launched per step, MPI messages per step — this example composes the
/// microbenchmark results into a per-machine time-per-step estimate and
/// flags which resource dominates on each system. (A roofline-style
/// estimate built *only* from quantities the paper measures.)
///
///   $ ./portability_advisor [--bytes-gb 2] [--kernels 500] [--messages 200]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "commscope/commscope.hpp"
#include "core/table.hpp"
#include "machines/registry.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"

namespace {

using namespace nodebench;

struct AppProfile {
  double bytesStreamedGB = 2.0;  ///< HBM/DRAM traffic per step
  int kernelLaunches = 500;      ///< device kernels per step
  int mpiMessages = 200;         ///< small point-to-point messages per step
};

struct Estimate {
  const machines::Machine* machine;
  double streamMs;
  double launchMs;
  double mpiMs;
  [[nodiscard]] double totalMs() const {
    return streamMs + launchMs + mpiMs;
  }
  [[nodiscard]] const char* dominant() const {
    if (streamMs >= launchMs && streamMs >= mpiMs) {
      return "memory bandwidth";
    }
    return launchMs >= mpiMs ? "kernel launch" : "MPI latency";
  }
};

Estimate estimate(const machines::Machine& m, const AppProfile& app) {
  Estimate e{&m, 0.0, 0.0, 0.0};
  babelstream::DriverConfig scfg;
  scfg.binaryRuns = 10;
  osu::LatencyConfig lcfg;
  lcfg.binaryRuns = 10;

  double bwGBps = 0.0;
  double mpiUs = 0.0;
  double launchUs = 0.0;
  if (m.accelerated()) {
    babelstream::SimDeviceBackend stream(m, 0);
    scfg.arrayBytes = ByteCount::gib(1);
    bwGBps = babelstream::run(stream, scfg).best().bandwidthGBps.mean;
    const auto [a, b] = osu::devicePair(m, topo::LinkClass::A);
    mpiUs = osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Device)
                .measure(lcfg)
                .latencyUs.mean;
    commscope::CommScope scope(m);
    commscope::Config ccfg;
    ccfg.binaryRuns = 10;
    launchUs = scope.kernelLaunchUs(ccfg).mean;
  } else {
    babelstream::SimOmpBackend stream(
        m, ompenv::OmpConfig{m.coreCount(), ompenv::ProcBind::Spread,
                             ompenv::Places::Cores});
    bwGBps = babelstream::run(stream, scfg).best().bandwidthGBps.mean;
    const auto [a, b] = osu::onSocketPair(m);
    mpiUs = osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Host)
                .measure(lcfg)
                .latencyUs.mean;
  }
  e.streamMs = app.bytesStreamedGB / bwGBps * 1000.0;
  e.launchMs = launchUs * app.kernelLaunches / 1000.0;
  e.mpiMs = mpiUs * app.mpiMessages / 1000.0;
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  AppProfile app;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--bytes-gb") == 0) {
      app.bytesStreamedGB = std::atof(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--kernels") == 0) {
      app.kernelLaunches = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--messages") == 0) {
      app.mpiMessages = std::atoi(argv[i + 1]);
    }
  }
  std::printf(
      "Application profile per step: %.2f GB streamed, %d kernel "
      "launches, %d small MPI messages\n\n",
      app.bytesStreamedGB, app.kernelLaunches, app.mpiMessages);

  std::vector<Estimate> estimates;
  for (const machines::Machine& m : machines::allMachines()) {
    estimates.push_back(estimate(m, app));
  }
  std::sort(estimates.begin(), estimates.end(),
            [](const auto& a, const auto& b) {
              return a.totalMs() < b.totalMs();
            });

  Table t({"System", "Stream (ms)", "Launch (ms)", "MPI (ms)",
           "Total (ms)", "Dominated by"});
  t.setTitle("Estimated time per application step (best system first)");
  t.setAlign(5, Align::Left);
  for (const Estimate& e : estimates) {
    t.addRow({e.machine->info.name, formatFixed(e.streamMs, 3),
              formatFixed(e.launchMs, 3), formatFixed(e.mpiMs, 3),
              formatFixed(e.totalMs(), 3), e.dominant()});
  }
  std::fputs(t.renderAscii().c_str(), stdout);
  std::printf(
      "\nLaunch-heavy profiles favour MI250X/A100 systems (1.5-2.2 us "
      "launches vs 4-5 us on V100); message-heavy profiles punish the "
      "V100 systems' ~18 us staging path; bandwidth-bound profiles track "
      "Table 5's device bandwidth column. Try --kernels 5000 or "
      "--messages 5000 to move the crossover.\n");
  return 0;
}
