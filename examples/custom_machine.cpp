/// \file custom_machine.cpp
/// \brief Builds a *hypothetical* system from scratch through the public
/// API — the paper's future-work scenario of comparing against vendors
/// the DOE doesn't field (an Arm CPU host with next-generation GPUs) —
/// and runs the full benchmark suite against it.
///
/// This is the template to copy when modelling your own machine: describe
/// the topology, state the primitive performance parameters, and every
/// benchmark in the suite works unchanged.

#include <cstdio>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "commscope/commscope.hpp"
#include "machines/machine.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"
#include "report/figures.hpp"

namespace {

using namespace nodebench;
using namespace nodebench::literals;

machines::Machine makeHypotheticalArmNode() {
  machines::Machine m;
  m.info = machines::SystemInfo{"ArmStar", 0, "hypothetical",
                                "Arm Neoverse V2 (72c)", "HG100"};
  m.env = machines::SoftwareEnv{"clang/18", "hgsdk/1.0", "openmpi/5.0"};
  m.seed = 0xa23a57a2u;

  // --- topology: one 72-core socket, 4 NUMA domains, 4 GPUs -------------
  topo::NodeTopology& node = m.topology;
  const auto socket = node.addSocket(m.info.cpuModel);
  for (int d = 0; d < 4; ++d) {
    const auto numa = node.addNumaDomain(socket);
    node.addCores(numa, 18, /*smtThreads=*/1);
  }
  std::vector<topo::GpuId> gpus;
  for (int g = 0; g < 4; ++g) {
    gpus.push_back(node.addGpu("HG100", socket, ByteCount::gib(96)));
    // Coherent CPU-GPU links: low latency, high bandwidth.
    node.connectHostGpu(socket, gpus.back(), topo::LinkType::NVLink3,
                        0.25_us, Bandwidth::gbps(150.0));
  }
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      node.connectGpuPeer(gpus[i], gpus[j], topo::LinkType::NVLink3, 6,
                          0.20_us, Bandwidth::gbps(150.0));
    }
  }
  node.setGpuFlavor(topo::GpuInterconnectFlavor::NvlinkAllToAll);

  // --- primitive performance parameters ---------------------------------
  m.hostMemory.perCoreBw = Bandwidth::gbps(35.0);
  m.hostMemory.perNumaSaturation = Bandwidth::gbps(110.0);
  m.hostMemory.peak = Bandwidth::gbps(500.0);
  m.hostMemory.peakNote = "500 (hypothetical)";

  m.hostMpi.softwareOverhead = 0.22_us;
  m.hostMpi.sameNumaHop = 0.04_us;
  m.hostMpi.crossNumaHop = 0.08_us;
  m.hostMpi.crossSocketHop = 0.15_us;

  machines::DeviceParams d;
  d.hbmBw = Bandwidth::gbps(3200.0);
  d.hbmPeak = Bandwidth::gbps(4000.0);
  d.hbmPeakNote = "4000 (hypothetical)";
  d.kernelLaunch = 1.2_us;
  d.syncWait = 0.3_us;
  d.memcpyCallOverhead = 0.8_us;
  d.h2dDmaSetup = 1.5_us;
  d.d2dDmaSetup = 4.0_us;
  m.device = d;
  m.deviceMpi = machines::DeviceMpiParams{2.0_us, 0.01};
  return m;
}

}  // namespace

int main() {
  const machines::Machine m = makeHypotheticalArmNode();
  std::printf("== %s: a machine that does not exist yet ==\n\n",
              m.info.name.c_str());
  std::fputs(report::linkClassLegend(m).c_str(), stdout);

  babelstream::SimDeviceBackend stream(m, 0);
  babelstream::DriverConfig scfg;
  scfg.arrayBytes = ByteCount::gib(1);
  const auto bw = babelstream::run(stream, scfg).best();
  std::printf("\nBabelStream %s: %s GB/s\n",
              babelstream::streamOpName(bw.op).data(),
              bw.bandwidthGBps.toString().c_str());

  const auto [a, b] = osu::devicePair(m, topo::LinkClass::A);
  osu::LatencyConfig lcfg;
  const auto lat =
      osu::LatencyBenchmark(m, a, b, mpisim::BufferSpace::Kind::Device)
          .measure(lcfg);
  std::printf("osu_latency D2D: %s us\n", lat.latencyUs.toString().c_str());

  commscope::CommScope scope(m);
  const commscope::Config ccfg;
  std::printf("Comm|Scope launch %s us, wait %s us, H<->D %s us / %s GB/s\n",
              scope.kernelLaunchUs(ccfg).toString().c_str(),
              scope.syncWaitUs(ccfg).toString().c_str(),
              scope.hostDeviceLatencyUs(ccfg).toString().c_str(),
              scope.hostDeviceBandwidthGBps(ccfg).toString().c_str());

  std::printf(
      "\nCompare with Table 7 of the paper: this hypothetical node would "
      "sit above every studied system on bandwidth and below the A100s "
      "on launch latency.\n");
  return 0;
}
