/// \file native_host.cpp
/// \brief Runs the benchmark instruments against *this* machine, not a
/// simulated one: the same BabelStream driver over real threads and
/// memory, and a real shared-memory ping-pong. This is how you would use
/// nodebench to produce a Table-4-style row for your own hardware.
///
///   $ ./native_host [--threads N]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "babelstream/driver.hpp"
#include "core/table.hpp"
#include "native/pingpong_native.hpp"
#include "native/stream_native.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  int threads = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = std::atoi(argv[i + 1]);
    }
  }

  // BabelStream, best over ops, single thread and full team — the
  // "Single" and "All" columns of Table 4 for this host.
  babelstream::DriverConfig cfg;
  cfg.arrayBytes = ByteCount::mib(64);
  cfg.binaryRuns = 5;  // real measurements: keep the demo quick

  native::NativeStreamBackend single(1, /*pinToCores=*/true);
  native::NativeStreamBackend team(threads, /*pinToCores=*/true);
  const auto singleRun = babelstream::run(single, cfg);
  const auto teamRun = babelstream::run(team, cfg);

  Table t({"Backend", "Best op", "Bandwidth (GB/s)"});
  t.setTitle("BabelStream on this host (real measurement)");
  t.setAlign(1, Align::Left);
  t.addRow({single.name(),
            std::string(babelstream::streamOpName(singleRun.best().op)),
            singleRun.best().bandwidthGBps.toString()});
  t.addRow({team.name(),
            std::string(babelstream::streamOpName(teamRun.best().op)),
            teamRun.best().bandwidthGBps.toString()});
  std::fputs(t.renderAscii().c_str(), stdout);

  // Shared-memory ping-pong: the host "on-socket MPI latency" analogue.
  native::NativePingPongConfig pcfg;
  pcfg.iterations = 5000;
  pcfg.warmupIterations = 500;
  pcfg.cores = {{0, 1}};
  std::printf("\nshared-memory ping-pong (8 B, cores 0-1): %.3f us one-way\n",
              native::nativePingPongOneWay(pcfg).us());

  native::NativePingPongConfig big = pcfg;
  big.messageSize = ByteCount::kib(64);
  big.iterations = 1000;
  std::printf("shared-memory ping-pong (64 KiB):          %.3f us one-way\n",
              native::nativePingPongOneWay(big).us());
  return 0;
}
