/// \file stencil_proxy.cpp
/// \brief Runs the halo-exchange stencil proxy across the studied
/// machines — the mini-app view of the paper's microbenchmark data — and
/// optionally writes a Chrome-trace timeline of one run.
///
///   $ ./stencil_proxy [--ranks N] [--cells N] [--halo N] [--trace out.json]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/table.hpp"
#include "machines/registry.hpp"
#include "workload/stencil.hpp"

int main(int argc, char** argv) {
  using namespace nodebench;
  workload::StencilConfig cfg;
  std::string tracePath;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--ranks") == 0) {
      cfg.ranks = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--cells") == 0) {
      cfg.cellsPerRank = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--halo") == 0) {
      cfg.haloCells = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      tracePath = argv[i + 1];
    }
  }

  Table t({"System", "Mode", "Total/iter (us)", "Compute (us)",
           "Halo (us)", "Reduce (us)", "Halo frac", "Mcells/s"});
  t.setTitle("Halo-exchange stencil proxy across the studied systems");
  t.setAlign(1, Align::Left);

  const auto addRow = [&](const machines::Machine& m, bool device) {
    workload::StencilConfig c = cfg;
    c.useDevice = device;
    if (device) {
      c.ranks = std::min(c.ranks, m.topology.gpuCount());
    }
    const auto r = workload::runStencil(m, c);
    t.addRow({m.info.name, device ? "device" : "host",
              formatFixed(r.totalPerIteration.us(), 1),
              formatFixed(r.computePerIteration.us(), 1),
              formatFixed(r.haloPerIteration.us(), 1),
              formatFixed(r.reducePerIteration.us(), 1),
              formatFixed(r.haloFraction(), 3),
              formatFixed(r.cellsPerSecond / 1e6, 0)});
  };

  for (const machines::Machine& m : machines::allMachines()) {
    addRow(m, false);
    if (m.accelerated()) {
      addRow(m, true);
    }
  }
  std::fputs(t.renderAscii().c_str(), stdout);

  if (!tracePath.empty()) {
    mpisim::Tracer tracer;
    workload::StencilConfig c = cfg;
    c.useDevice = true;
    const machines::Machine& frontier = machines::byName("Frontier");
    c.ranks = std::min(cfg.ranks, frontier.topology.gpuCount());
    (void)workload::runStencil(frontier, c, &tracer);
    std::ofstream out(tracePath);
    out << tracer.toChromeJson();
    std::printf("\nwrote Chrome trace of the Frontier device run to %s "
                "(open in chrome://tracing or Perfetto)\n\n%s",
                tracePath.c_str(),
                tracer.summaryTable(c.ranks).c_str());
  }

  std::printf(
      "\nThe host/device contrast and the halo fraction tie the paper's "
      "Table 4-6 quantities to application-level behaviour: V100-era "
      "nodes lose ground on compute bandwidth, MI250X nodes on halo "
      "latency the moment messages leave the GPU-RMA path.\n");
  return 0;
}
