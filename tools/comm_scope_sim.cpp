/// \file comm_scope_sim.cpp
/// \brief Comm|Scope-style command-line tool over the simulated GPU
/// runtime, mirroring the google-benchmark console format the real tool
/// (which builds on google/benchmark) prints.
///
///   comm_scope_sim --machine Frontier [--runs N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "commscope/commscope.hpp"
#include "core/error.hpp"
#include "machines/registry.hpp"

namespace {

using namespace nodebench;

void printRow(const std::string& name, const Summary& us,
              const char* counterName = nullptr, double counter = 0.0) {
  // google-benchmark-ish: name, Time, CPU, Iterations [+ counters].
  char tail[64] = "";
  if (counterName != nullptr) {
    std::snprintf(tail, sizeof(tail), " %s=%.2fG/s", counterName, counter);
  }
  std::printf("%-44s %10.2f us %10.2f us %9zu%s\n", name.c_str(), us.mean,
              us.mean, us.count, tail);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string machine;
    int runs = 100;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--machine" && i + 1 < argc) {
        machine = argv[++i];
      } else if (arg == "--runs" && i + 1 < argc) {
        runs = std::atoi(argv[++i]);
      } else {
        throw Error("unknown option " + arg);
      }
    }
    if (machine.empty()) {
      throw Error("need --machine <name>");
    }
    const machines::Machine& m = machines::byName(machine);
    const bool amd = m.info.acceleratorModel.find("AMD") != std::string::npos;
    const std::string api = amd ? "hip" : "cudart";
    const std::string memcpyApi = amd ? "hipMemcpyAsync" : "cudaMemcpyAsync";

    commscope::CommScope scope(m);
    commscope::Config cfg;
    cfg.binaryRuns = runs;

    std::printf("Comm|Scope 0.12.0 (nodebench reproduction) on %s\n",
                m.info.name.c_str());
    std::printf("%-44s %13s %13s %9s\n", "Benchmark", "Time", "CPU",
                "Iterations");
    std::printf(
        "--------------------------------------------------------------"
        "--------------------\n");
    printRow("Comm_" + api + "_kernel", scope.kernelLaunchUs(cfg));
    printRow("Comm_" + (amd ? std::string("hip") : std::string("cuda")) +
                 "DeviceSynchronize",
             scope.syncWaitUs(cfg));
    printRow("Comm_" + memcpyApi + "_PinnedToGPU/128B",
             scope.hostDeviceLatencyUs(cfg));
    const Summary bw = scope.hostDeviceBandwidthGBps(cfg);
    // Bandwidth row: time for 1 GiB plus the rate counter.
    const Summary bwTime{bw.count, 1073741824.0 / bw.mean / 1000.0,
                         0.0, 0.0, 0.0};
    printRow("Comm_" + memcpyApi + "_PinnedToGPU/1GiB", bwTime, "bytes_per_second",
             bw.mean);
    for (const topo::LinkClass c : m.topology.presentGpuLinkClasses()) {
      const auto pair = m.topology.representativePair(c);
      printRow("Comm_" + memcpyApi + "_GPUToGPU/" +
                   std::to_string(pair->first.value) + "/" +
                   std::to_string(pair->second.value) + "/128B(class " +
                   std::string(topo::linkClassName(c)) + ")",
               scope.d2dLatencyUs(c, cfg));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "comm_scope_sim: %s\n", e.what());
    return 1;
  }
}
