#!/usr/bin/env bash
# Fast "did I break the paper?" signal: run the two labelled ctest
# groups reviewers care about most, against an already-built tree.
#
#   tools/run_smoke_suites.sh [build-dir]   (default: build)
#
#  - conformance: Tables 1-7 headline numbers transcribed inline with
#    per-cell tolerances (tests/conformance/paper_values_test.cpp).
#  - faults: fault-plan parsing/application, retransmit + watchdog
#    behaviour, n/a-cell degradation, and the CLI fault demos.
#
# Exits non-zero if either suite fails. See CONTRIBUTING.md.
set -euo pipefail

build_dir="${1:-build}"

if [[ ! -f "${build_dir}/CTestTestfile.cmake" ]]; then
  echo "error: '${build_dir}' is not a configured build tree" >&2
  echo "hint: cmake -B ${build_dir} -G Ninja && cmake --build ${build_dir} -j" >&2
  exit 2
fi

echo "== conformance suite (paper headline numbers) =="
ctest --test-dir "${build_dir}" -L conformance --output-on-failure

echo
echo "== faults suite (resilience harness) =="
ctest --test-dir "${build_dir}" -L faults --output-on-failure
