#!/usr/bin/env bash
# Fast "did I break the paper?" signal: run the two labelled ctest
# groups reviewers care about most, against an already-built tree.
#
#   tools/run_smoke_suites.sh [build-dir]   (default: build)
#
#  - conformance: Tables 1-7 headline numbers transcribed inline with
#    per-cell tolerances (tests/conformance/paper_values_test.cpp).
#  - faults: fault-plan parsing/application, retransmit + watchdog
#    behaviour, n/a-cell degradation, and the CLI fault demos.
#  - campaign: crash-safe journal format, torn-write recovery,
#    kill-and-resume byte-identity (incl. the crash-injection run against
#    the real binary, tools/run_crash_suite.sh).
#  - shard: distributed sharded campaigns (tests/shard/): the
#    deterministic partition + manifest layer, the merged-bytes identity
#    matrix across shard counts x --jobs x fault plans, the merge
#    refusal contract, the CLI driver/merge chain, and the worker
#    kill-resume-merge run against the real binary
#    (tools/run_shard_demo.sh).
#  - fuzz: deterministic corpus + seeded-mutation replay of the
#    fault-plan JSON, journal, results-store, and shard-merge decoders
#    (tests/fuzz/).
#  - stats: the statistics engine + results store + regression gate
#    (unit suites, the CLI gate chain, and the two-store compare demo
#    against the real binary, tools/run_compare_demo.sh).
#  - supervise: the fault-tolerant campaign supervisor (tests/supervise/
#    + the CLI supervise chain in src/cli): deterministic backoff
#    seeding, the lease state machine, the supervisor journal's
#    torn-tail recovery, the heartbeat contract, degrade-to-partial
#    merges with gap manifests, and the end-to-end chaos proof that
#    SIGKILLs workers and the supervisor itself
#    (tools/run_chaos_suite.sh).
#  - serve: the measurement daemon (request decoding, admission queue
#    back-pressure/quotas, watchdog cancellation, drain + --resume
#    byte-identity over a real unix socket, and the daemon SIGKILL
#    section of the crash suite), plus the tsan-labelled concurrency
#    binary, which carries the admission-queue stress test — under a
#    -DNODEBENCH_SANITIZE=thread configure those queue/quota paths run
#    race-checked.
#  - memlab: the memory-hierarchy lab (tests/memlab/): grid shapes, the
#    pointer-chase analytic truth against the cache ladder, the sweep's
#    knee property, --jobs byte-identity, and the journal + store +
#    shard -> merge composition for the sweep/chase grids; then the
#    memlab microbenchmarks dumped to <build>/BENCH_memlab.json.
#  - simcore: scheduler-mode and closed-form fast-path determinism
#    cross-checks (tests/simcore/), then the simulation-core
#    microbenchmarks dumped to <build>/BENCH_simcore.json, then a gate
#    self-check proving a results store recorded with every fast path
#    disabled (NODEBENCH_VT_MODE=threads NODEBENCH_SIMCORE_FASTPATH=0)
#    gates PASS against a default-mode recording.
#
# Exits non-zero if any suite fails. See CONTRIBUTING.md.
set -euo pipefail

build_dir="${1:-build}"

if [[ ! -f "${build_dir}/CTestTestfile.cmake" ]]; then
  echo "error: '${build_dir}' is not a configured build tree" >&2
  echo "hint: cmake -B ${build_dir} -G Ninja && cmake --build ${build_dir} -j" >&2
  exit 2
fi

echo "== conformance suite (paper headline numbers) =="
ctest --test-dir "${build_dir}" -L conformance --output-on-failure

echo
echo "== faults suite (resilience harness) =="
ctest --test-dir "${build_dir}" -L faults --output-on-failure

echo
echo "== campaign suite (crash-safe journal + resume) =="
ctest --test-dir "${build_dir}" -L campaign --output-on-failure

echo
echo "== shard suite (distributed campaigns: partition, merge, identity) =="
ctest --test-dir "${build_dir}" -L shard --output-on-failure

echo
echo "== fuzz smoke suite (input-boundary decoders) =="
ctest --test-dir "${build_dir}" -L fuzz --output-on-failure

echo
echo "== stats suite (results store + regression gate) =="
ctest --test-dir "${build_dir}" -L stats --output-on-failure

echo
echo "== supervise suite (lease supervisor: heartbeats, retry, partial merge) =="
ctest --test-dir "${build_dir}" -L supervise --output-on-failure

echo
echo "== serve suite (daemon: back-pressure, watchdog, drain, resume) =="
ctest --test-dir "${build_dir}" -L serve --output-on-failure

echo
echo "== serve concurrency surface (tsan label; race-checked under =="
echo "==   -DNODEBENCH_SANITIZE=thread configures)                 =="
ctest --test-dir "${build_dir}" -L tsan --output-on-failure

echo
echo "== memlab suite (cache ladder: sweep knees, chase truth, merge identity) =="
ctest --test-dir "${build_dir}" -L memlab --output-on-failure

memlab_gbench="${build_dir}/bench/bench_memlab_gbench"
if [[ -x "${memlab_gbench}" ]]; then
  echo
  echo "== memlab microbenchmarks -> ${build_dir}/BENCH_memlab.json =="
  "${memlab_gbench}" \
    --benchmark_filter='ChaseTruth|MeasureChasePoint|MeasureSweepPoint|SweepGrid' \
    --benchmark_out="${build_dir}/BENCH_memlab.json" \
    --benchmark_out_format=json
else
  echo "note: skipping memlab microbenchmarks (${memlab_gbench} not built)" >&2
fi

echo
echo "== simcore suite (scheduler modes + fast-path determinism) =="
ctest --test-dir "${build_dir}" -L simcore --output-on-failure

gbench="${build_dir}/bench/bench_simcore_gbench"
if [[ -x "${gbench}" ]]; then
  echo
  echo "== simcore microbenchmarks -> ${build_dir}/BENCH_simcore.json =="
  "${gbench}" \
    --benchmark_filter='EventQueue|SwitchMode|SimulatedPingPong|LatencyTruth|InterNodeMeasure|OsuMeasureTruth' \
    --benchmark_out="${build_dir}/BENCH_simcore.json" \
    --benchmark_out_format=json
else
  echo "note: skipping simcore microbenchmarks (${gbench} not built)" >&2
fi

nodebench="${build_dir}/src/cli/nodebench"
if [[ -x "${nodebench}" ]]; then
  echo
  echo "== fast-path gate self-check (slow-mode baseline vs default) =="
  workdir="$(mktemp -d "${TMPDIR:-/tmp}/nodebench_simcore_gate.XXXXXX")"
  trap 'rm -rf "${workdir}"' EXIT
  NODEBENCH_VT_MODE=threads NODEBENCH_SIMCORE_FASTPATH=0 \
    "${nodebench}" table 5 --runs 8 --jobs 1 \
    --store "${workdir}/slow.store" > /dev/null
  "${nodebench}" table 5 --runs 8 --jobs 1 \
    --store "${workdir}/fast.store" > /dev/null
  "${nodebench}" gate "${workdir}/slow.store" "${workdir}/fast.store"
else
  echo "note: skipping fast-path gate self-check (${nodebench} not built)" >&2
fi
