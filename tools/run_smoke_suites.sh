#!/usr/bin/env bash
# Fast "did I break the paper?" signal: run the two labelled ctest
# groups reviewers care about most, against an already-built tree.
#
#   tools/run_smoke_suites.sh [build-dir]   (default: build)
#
#  - conformance: Tables 1-7 headline numbers transcribed inline with
#    per-cell tolerances (tests/conformance/paper_values_test.cpp).
#  - faults: fault-plan parsing/application, retransmit + watchdog
#    behaviour, n/a-cell degradation, and the CLI fault demos.
#  - campaign: crash-safe journal format, torn-write recovery,
#    kill-and-resume byte-identity (incl. the crash-injection run against
#    the real binary, tools/run_crash_suite.sh).
#  - fuzz: deterministic corpus + seeded-mutation replay of the
#    fault-plan JSON, journal, and results-store decoders (tests/fuzz/).
#  - stats: the statistics engine + results store + regression gate
#    (unit suites, the CLI gate chain, and the two-store compare demo
#    against the real binary, tools/run_compare_demo.sh).
#
# Exits non-zero if any suite fails. See CONTRIBUTING.md.
set -euo pipefail

build_dir="${1:-build}"

if [[ ! -f "${build_dir}/CTestTestfile.cmake" ]]; then
  echo "error: '${build_dir}' is not a configured build tree" >&2
  echo "hint: cmake -B ${build_dir} -G Ninja && cmake --build ${build_dir} -j" >&2
  exit 2
fi

echo "== conformance suite (paper headline numbers) =="
ctest --test-dir "${build_dir}" -L conformance --output-on-failure

echo
echo "== faults suite (resilience harness) =="
ctest --test-dir "${build_dir}" -L faults --output-on-failure

echo
echo "== campaign suite (crash-safe journal + resume) =="
ctest --test-dir "${build_dir}" -L campaign --output-on-failure

echo
echo "== fuzz smoke suite (input-boundary decoders) =="
ctest --test-dir "${build_dir}" -L fuzz --output-on-failure

echo
echo "== stats suite (results store + regression gate) =="
ctest --test-dir "${build_dir}" -L stats --output-on-failure
