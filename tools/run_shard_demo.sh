#!/usr/bin/env bash
# Sharded-campaign demo and integration check against the real binary:
#
#   tools/run_shard_demo.sh [build-dir] [table] [shards] [runs]
#     build-dir  configured build tree (default: build)
#     table      table selector for `nodebench shard` (default: 4)
#     shards     worker-process count (default: 3)
#     runs       --runs per cell (default: 2)
#
# Exercises the full distributed-campaign loop:
#  1. `nodebench shard` forks N workers, each measuring its deterministic
#     slice into shard-suffixed journal + store files, then merges
#     in-process (--merge-out / --merge-store-out).
#  2. The merged journal and store must be byte-identical to an
#     uninterrupted single-process `--jobs 1` run of the same campaign.
#  3. `nodebench merge` re-merges the same worker files standalone and
#     must produce the same bytes again.
#  4. Refusal paths: an incomplete shard set and an existing output file
#     are both rejected loudly, naming the problem.
set -euo pipefail

build_dir="${1:-build}"
table="${2:-4}"
shards="${3:-3}"
runs="${4:-2}"

nodebench="${build_dir}/src/cli/nodebench"
if [[ ! -x "${nodebench}" ]]; then
  echo "error: '${nodebench}' not found; build the tree first" >&2
  echo "hint: cmake -B ${build_dir} && cmake --build ${build_dir} -j" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/nodebench_shard_demo.XXXXXX")"
trap 'rm -rf "${workdir}"' EXIT

echo "== reference: single-process 'table ${table}' at --jobs 1 =="
"${nodebench}" table "${table}" --runs "${runs}" --jobs 1 \
  --journal "${workdir}/ref.journal" --store "${workdir}/ref.store" \
  > /dev/null

echo
echo "== nodebench shard: ${shards} workers, merged in-process =="
"${nodebench}" shard "${table}" --shards "${shards}" --runs "${runs}" \
  --jobs 2 \
  --journal "${workdir}/c.journal" --store "${workdir}/c.store" \
  --merge-out "${workdir}/merged.journal" \
  --merge-store-out "${workdir}/merged.store"

if ! cmp -s "${workdir}/merged.journal" "${workdir}/ref.journal"; then
  echo "error: merged journal differs from the single-process run" >&2
  exit 1
fi
if ! cmp -s "${workdir}/merged.store" "${workdir}/ref.store"; then
  echo "error: merged store differs from the single-process run" >&2
  exit 1
fi
echo "   merged journal and store are byte-identical to the reference"

echo
echo "== nodebench merge: standalone re-merge of the worker files =="
journals=()
stores=()
for (( i = 0; i < shards; i++ )); do
  journals+=("${workdir}/c.journal.shard${i}of${shards}")
  stores+=(--stores "${workdir}/c.store.shard${i}of${shards}")
done
"${nodebench}" merge "${journals[@]}" \
  --out "${workdir}/remerged.journal" \
  "${stores[@]}" --store-out "${workdir}/remerged.store"
cmp "${workdir}/remerged.journal" "${workdir}/ref.journal"
cmp "${workdir}/remerged.store" "${workdir}/ref.store"
echo "   standalone merge reproduces the same bytes"

echo
echo "== refusal paths =="
rc=0
"${nodebench}" merge "${journals[0]}" \
  --out "${workdir}/incomplete.journal" \
  > /dev/null 2> "${workdir}/refusal.log" || rc=$?
if (( rc == 0 )); then
  echo "error: merge accepted an incomplete shard set" >&2
  exit 1
fi
if ! grep -q "is missing from the merge set" "${workdir}/refusal.log"; then
  echo "error: refusal does not explain the missing shard" >&2
  cat "${workdir}/refusal.log" >&2
  exit 1
fi
rc=0
"${nodebench}" merge "${journals[@]}" \
  --out "${workdir}/merged.journal" \
  > /dev/null 2>> "${workdir}/refusal.log" || rc=$?
if (( rc == 0 )); then
  echo "error: merge overwrote an existing output" >&2
  exit 1
fi
echo "   incomplete set and existing output both refused"

echo
echo "shard demo passed"
