/// \file osu_latency_sim.cpp
/// \brief osu_latency-style command-line tool over the simulated
/// machines, mirroring the OSU Micro-Benchmarks console format.
///
///   osu_latency_sim --machine Frontier [--pair on-socket|on-node|A..D]
///                   [-m <max bytes>] [--runs N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/error.hpp"
#include "machines/registry.hpp"
#include "osu/latency.hpp"
#include "osu/pairs.hpp"

namespace {

using namespace nodebench;

struct Options {
  std::string machine;
  std::string pair = "on-socket";
  std::uint64_t maxBytes = 1 << 20;
  int runs = 100;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw Error("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--machine") {
      opt.machine = value();
    } else if (arg == "--pair") {
      opt.pair = value();
    } else if (arg == "-m") {
      opt.maxBytes = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--runs") {
      opt.runs = std::atoi(value());
    } else {
      throw Error("unknown option " + arg);
    }
  }
  if (opt.machine.empty()) {
    throw Error("need --machine <name>");
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse(argc, argv);
    const machines::Machine& m = machines::byName(opt.machine);

    osu::PlacementPair ranks;
    auto kind = mpisim::BufferSpace::Kind::Host;
    if (opt.pair == "on-socket") {
      ranks = osu::onSocketPair(m);
    } else if (opt.pair == "on-node") {
      ranks = osu::onNodePair(m);
    } else if (opt.pair.size() == 1 && opt.pair[0] >= 'A' &&
               opt.pair[0] <= 'D') {
      ranks = osu::devicePair(
          m, static_cast<topo::LinkClass>(opt.pair[0] - 'A'));
      kind = mpisim::BufferSpace::Kind::Device;
    } else {
      throw Error("unknown --pair value " + opt.pair);
    }

    std::printf("# OSU MPI%s Latency Test v7.1.1 (nodebench reproduction)\n",
                kind == mpisim::BufferSpace::Kind::Device ? "-GPU" : "");
    std::printf("# Machine: %s (%s pair), %d binary runs\n",
                m.info.name.c_str(), opt.pair.c_str(), opt.runs);
    std::printf("# Size          Latency (us)\n");

    const osu::LatencyBenchmark bench(m, ranks.first, ranks.second, kind);
    osu::LatencyConfig cfg;
    cfg.binaryRuns = opt.runs;
    for (const auto& point :
         bench.sweep(ByteCount::bytes(opt.maxBytes), cfg)) {
      std::printf("%-15llu %14.2f\n",
                  static_cast<unsigned long long>(point.messageSize.count()),
                  point.latencyUs.mean);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "osu_latency_sim: %s\n", e.what());
    return 1;
  }
}
