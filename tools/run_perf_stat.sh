#!/usr/bin/env bash
# Hardware-counter profile of the simulation core, for before/after
# comparisons when optimizing the harness itself (DESIGN.md §12,
# EXPERIMENTS.md):
#
#   tools/run_perf_stat.sh [build-dir] [benchmark-filter]
#
# Runs `perf stat` over the table benches and the simcore
# google-benchmark suite. Arguments default to `build` and a filter
# matching the scheduler/ping-pong/truth benchmarks.
#
# Degrades gracefully: if `perf` is unavailable (not installed, or the
# kernel's perf_event_paranoid forbids counting), falls back to plain
# wall-clock timing so the script still yields a usable signal in
# containers and CI. Exit status is non-zero only if a benchmark binary
# itself fails.
set -euo pipefail

build_dir="${1:-build}"
filter="${2:-SwitchMode|SimulatedPingPong|LatencyTruth|InterNodeMeasure|EventQueue}"

gbench="${build_dir}/bench/bench_simcore_gbench"
if [[ ! -x "${gbench}" ]]; then
  echo "error: '${gbench}' not built" >&2
  echo "hint: cmake --build ${build_dir} -j --target bench_simcore_gbench" >&2
  exit 2
fi

events="task-clock,context-switches,cycles,instructions,branches,branch-misses,cache-references,cache-misses"

have_perf=0
if command -v perf >/dev/null 2>&1 && perf stat -e task-clock true >/dev/null 2>&1; then
  have_perf=1
else
  echo "note: perf unavailable (missing binary or perf_event_paranoid);" \
       "falling back to wall-clock timing" >&2
fi

run_profiled() {
  local label="$1"
  shift
  echo
  echo "== ${label} =="
  if [[ "${have_perf}" == 1 ]]; then
    perf stat -e "${events}" -- "$@"
  else
    local start end
    start=$(date +%s%3N)
    "$@"
    end=$(date +%s%3N)
    echo "wall-clock: $((end - start)) ms (perf unavailable)"
  fi
}

run_profiled "simcore microbenchmarks (${filter})" \
  "${gbench}" --benchmark_filter="${filter}"

for bench in bench_table4_cpu bench_table5_gpu bench_table7_summary; do
  bin="${build_dir}/bench/${bench}"
  if [[ -x "${bin}" ]]; then
    run_profiled "${bench}" "${bin}"
  else
    echo "note: skipping ${bench} (not built)" >&2
  fi
done
