/// \file babelstream_sim.cpp
/// \brief BabelStream-style command-line tool over the nodebench
/// backends, mirroring the real BabelStream 4.0 console and CSV output
/// formats so downstream scripts can parse it unchanged.
///
///   babelstream_sim --machine Frontier [--device 0]
///   babelstream_sim --machine Eagle [--threads N | table-1 defaults]
///   babelstream_sim --native [--threads N]
///   common: --arraysize <doubles> --numruns <binary runs> --csv

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "babelstream/driver.hpp"
#include "babelstream/sim_device_backend.hpp"
#include "babelstream/sim_omp_backend.hpp"
#include "core/error.hpp"
#include "machines/registry.hpp"
#include "native/stream_native.hpp"

namespace {

using namespace nodebench;

struct Options {
  std::string machine;
  bool native = false;
  int device = 0;
  int threads = 0;
  std::uint64_t arrayDoubles = 1ull << 25;  // 2^25 doubles = 256 MiB
  int numRuns = 100;
  bool csv = false;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        throw Error("missing value for " + arg);
      }
      return argv[++i];
    };
    if (arg == "--machine") {
      opt.machine = value();
    } else if (arg == "--native") {
      opt.native = true;
    } else if (arg == "--device") {
      opt.device = std::atoi(value());
    } else if (arg == "--threads") {
      opt.threads = std::atoi(value());
    } else if (arg == "--arraysize") {
      opt.arrayDoubles = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--numruns") {
      opt.numRuns = std::atoi(value());
    } else if (arg == "--csv") {
      opt.csv = true;
    } else {
      throw Error("unknown option " + arg);
    }
  }
  if (!opt.native && opt.machine.empty()) {
    throw Error("need --machine <name> or --native");
  }
  return opt;
}

void printResults(const babelstream::RunResult& result, const Options& opt,
                  ByteCount arrayBytes) {
  if (opt.csv) {
    std::printf(
        "function,num_times,n_elements,sizeof,max_mbytes_per_sec,"
        "min_runtime,max_runtime,avg_runtime\n");
  } else {
    std::printf("%-9s %-12s %-12s %-12s %-12s\n", "Function", "MBytes/sec",
                "Min (sec)", "Max", "Average");
  }
  for (const auto& op : result.ops) {
    const double counted =
        babelstream::countedBytes(op.op, arrayBytes).asDouble();
    // Convert bandwidth stats back to per-iteration runtimes.
    const double minSec = counted / op.bandwidthGBps.max / 1e9;
    const double maxSec = counted / op.bandwidthGBps.min / 1e9;
    const double avgSec = counted / op.bandwidthGBps.mean / 1e9;
    const double mbytesPerSec = op.bandwidthGBps.max * 1000.0;
    if (opt.csv) {
      std::printf("%s,%d,%llu,%zu,%.3f,%.8f,%.8f,%.8f\n",
                  std::string(babelstream::streamOpName(op.op)).c_str(),
                  opt.numRuns,
                  static_cast<unsigned long long>(opt.arrayDoubles),
                  sizeof(double), mbytesPerSec, minSec, maxSec, avgSec);
    } else {
      std::printf("%-9s %-12.3f %-12.5f %-12.5f %-12.5f\n",
                  std::string(babelstream::streamOpName(op.op)).c_str(),
                  mbytesPerSec, minSec, maxSec, avgSec);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse(argc, argv);
    const ByteCount arrayBytes =
        ByteCount::bytes(opt.arrayDoubles * sizeof(double));

    babelstream::DriverConfig cfg;
    cfg.arrayBytes = arrayBytes;
    cfg.binaryRuns = opt.numRuns;

    std::unique_ptr<babelstream::Backend> backend;
    std::string implementation;
    if (opt.native) {
      backend = std::make_unique<native::NativeStreamBackend>(opt.threads);
      implementation = "native";
      cfg.binaryRuns = std::min(cfg.binaryRuns, 10);  // real runs are slow
    } else {
      const machines::Machine& m = machines::byName(opt.machine);
      if (m.accelerated()) {
        backend =
            std::make_unique<babelstream::SimDeviceBackend>(m, opt.device);
        implementation = m.info.acceleratorModel + "-sim";
      } else {
        const int threads = opt.threads > 0 ? opt.threads : m.coreCount();
        backend = std::make_unique<babelstream::SimOmpBackend>(
            m, ompenv::OmpConfig{threads, ompenv::ProcBind::Spread,
                                 ompenv::Places::Cores});
        implementation = "OpenMP-sim";
      }
    }

    if (!opt.csv) {
      std::printf("BabelStream\n");
      std::printf("Version: 4.0 (nodebench reproduction)\n");
      std::printf("Implementation: %s (%s)\n", implementation.c_str(),
                  opt.native ? "this host" : opt.machine.c_str());
      std::printf("Running kernels %d times\n", cfg.binaryRuns);
      std::printf("Precision: double\n");
      std::printf("Array size: %.1f MB (=%.1f GB)\n",
                  arrayBytes.asDouble() / 1e6, arrayBytes.asDouble() / 1e9);
      std::printf("Total size: %.1f MB (=%.1f GB)\n",
                  3.0 * arrayBytes.asDouble() / 1e6,
                  3.0 * arrayBytes.asDouble() / 1e9);
    }
    printResults(babelstream::run(*backend, cfg), opt, arrayBytes);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "babelstream_sim: %s\n", e.what());
    return 1;
  }
}
