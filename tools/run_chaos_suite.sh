#!/usr/bin/env bash
# Chaos integration suite for `nodebench supervise`: kill random workers
# and the supervisor itself (SIGKILL — no cleanup handlers), resume, and
# assert the final merged artifacts are byte-identical to an
# uninterrupted single-process --jobs 1 run. Then the degradation
# contract: a shard whose every attempt fails is quarantined, the run
# exits with the distinct partial-campaign code 44, and the gap manifest
# enumerates exactly the missing shard and its cells.
#
#   tools/run_chaos_suite.sh [build-dir] [table] [runs]
#     build-dir  configured build tree containing the nodebench binary
#                (default: build)
#     table      table selector passed to the workers (default: 4)
#     runs       --runs per cell (default: 3; kept small — the property
#                under test is fault tolerance, not statistics)
#
# Sections (all run; each ends in a cmp or an exit-code assertion):
#  - healthy:    all workers succeed; merged journal + store cmp-equal
#                to the --jobs 1 reference.
#  - workers:    random worker SIGKILLs mid-campaign; the supervisor
#                reassigns with backoff until done; cmp as above.
#  - supervisor: SIGKILL the supervisor mid-campaign (workers orphaned),
#                rerun with --resume (stale workers killed, leases
#                re-adopted without burning attempts); cmp as above.
#  - poison:     one shard fails every attempt; exit code must be
#                exactly 44, the merge must degrade to partial, and the
#                gap manifest must name the shard, its attempt count,
#                and every one of its cells.
set -euo pipefail

build_dir="${1:-build}"
table="${2:-4}"
runs="${3:-3}"
shards=3

nodebench="${build_dir}/src/cli/nodebench"
if [[ ! -x "${nodebench}" ]]; then
  echo "error: '${nodebench}' not found; build the tree first" >&2
  echo "hint: cmake -B ${build_dir} && cmake --build ${build_dir} -j" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/nodebench_chaos_suite.XXXXXX")"
trap 'rm -rf "${workdir}"' EXIT

echo "== reference: uninterrupted --jobs 1 run =="
ref_journal="${workdir}/ref.journal"
ref_store="${workdir}/ref.store"
"${nodebench}" table "${table}" --runs "${runs}" --jobs 1 \
  --journal "${ref_journal}" --store "${ref_store}" > /dev/null

assert_identical() {
  # assert_identical LABEL MERGED_JOURNAL MERGED_STORE
  local label="$1" journal="$2" store="$3"
  if ! cmp -s "${journal}" "${ref_journal}"; then
    echo "error: ${label}: merged journal differs from the --jobs 1 run" >&2
    exit 1
  fi
  if ! cmp -s "${store}" "${ref_store}"; then
    echo "error: ${label}: merged store differs from the --jobs 1 run" >&2
    exit 1
  fi
  echo "   ${label}: merged journal and store byte-identical to reference"
}

echo
echo "== healthy: all workers succeed =="
base="${workdir}/healthy"
"${nodebench}" supervise "${table}" --shards "${shards}" --runs "${runs}" \
  --journal "${base}.journal" --store "${base}.store" \
  --merge-out "${base}.merged.journal" \
  --merge-store-out "${base}.merged.store" \
  > "${workdir}/healthy.log" 2>&1
assert_identical "healthy" "${base}.merged.journal" "${base}.merged.store"

echo
echo "== workers: random worker SIGKILLs mid-campaign =="
base="${workdir}/chaos"
# --test-cell-delay-ms keeps every worker alive long enough for the
# kills to land mid-cell; generous --max-attempts absorbs however many
# kills strike one shard, and a tiny backoff keeps the suite fast.
"${nodebench}" supervise "${table}" --shards "${shards}" --runs "${runs}" \
  --journal "${base}.journal" --store "${base}.store" \
  --merge-out "${base}.merged.journal" \
  --merge-store-out "${base}.merged.store" \
  --max-attempts 8 --backoff-base-ms 10 --backoff-cap-ms 50 \
  --test-cell-delay-ms 150 \
  > "${workdir}/chaos.log" 2>&1 &
supervisor=$!
kills=0
for _ in $(seq 1 12); do
  sleep 0.25
  if ! kill -0 "${supervisor}" 2>/dev/null; then
    break  # campaign already finished
  fi
  # Workers (and only workers) carry the shard journal path in argv.
  mapfile -t workers < <(pgrep -f "${base}.journal.shard" || true)
  if (( ${#workers[@]} > 0 )); then
    victim="${workers[RANDOM % ${#workers[@]}]}"
    if kill -9 "${victim}" 2>/dev/null; then
      kills=$((kills + 1))
    fi
  fi
done
rc=0
wait "${supervisor}" || rc=$?
if (( rc != 0 )); then
  echo "error: supervisor exited ${rc} despite retries (${kills} kills)" >&2
  tail -10 "${workdir}/chaos.log" >&2
  exit 1
fi
echo "   survived ${kills} worker SIGKILL(s)"
assert_identical "worker chaos" "${base}.merged.journal" \
  "${base}.merged.store"

echo
echo "== supervisor: SIGKILL the coordinator, then --resume =="
base="${workdir}/svkill"
"${nodebench}" supervise "${table}" --shards "${shards}" --runs "${runs}" \
  --journal "${base}.journal" --store "${base}.store" \
  --merge-out "${base}.merged.journal" \
  --merge-store-out "${base}.merged.store" \
  --test-cell-delay-ms 400 \
  > "${workdir}/svkill1.log" 2>&1 &
supervisor=$!
sleep 0.6
if kill -9 "${supervisor}" 2>/dev/null; then
  wait "${supervisor}" 2>/dev/null || true
  echo "   supervisor killed mid-campaign; workers orphaned"
else
  # The campaign finished before the kill: still a valid resume below
  # (it re-adopts a fully-done journal and just merges).
  wait "${supervisor}" 2>/dev/null || true
  echo "   campaign finished before the kill; resuming the done state"
fi
# Orphaned workers may still be running; --resume must kill any stale
# ones (cmdline-guarded) and re-adopt their leases without burning
# attempts. Merge outputs may exist if the kill landed post-merge.
rm -f "${base}.merged.journal" "${base}.merged.store"
"${nodebench}" supervise "${table}" --shards "${shards}" --runs "${runs}" \
  --journal "${base}.journal" --store "${base}.store" \
  --merge-out "${base}.merged.journal" \
  --merge-store-out "${base}.merged.store" \
  --resume \
  > "${workdir}/svkill2.log" 2>&1
if ! grep -q "resuming campaign" "${workdir}/svkill2.log"; then
  echo "error: --resume did not report re-adopting the journal" >&2
  tail -10 "${workdir}/svkill2.log" >&2
  exit 1
fi
assert_identical "supervisor kill + resume" "${base}.merged.journal" \
  "${base}.merged.store"

echo
echo "== poison: one shard fails every attempt =="
base="${workdir}/poison"
rc=0
"${nodebench}" supervise "${table}" --shards "${shards}" --runs "${runs}" \
  --journal "${base}.journal" --store "${base}.store" \
  --merge-out "${base}.merged.journal" \
  --merge-store-out "${base}.merged.store" \
  --gap-out "${base}.gaps.json" \
  --max-attempts 2 --backoff-base-ms 10 --backoff-cap-ms 20 \
  --test-poison-shard 1 \
  > "${workdir}/poison.log" 2>&1 || rc=$?
if (( rc != 44 )); then
  echo "error: poisoned campaign exited ${rc} (wanted the distinct" \
       "partial-campaign code 44)" >&2
  tail -10 "${workdir}/poison.log" >&2
  exit 1
fi
if [[ ! -f "${base}.merged.journal" ]]; then
  echo "error: partial merge emitted no journal" >&2
  exit 1
fi
if cmp -s "${base}.merged.journal" "${ref_journal}"; then
  echo "error: partial merge is byte-equal to the full reference" >&2
  exit 1
fi
gaps="${base}.gaps.json"
if [[ ! -f "${gaps}" ]]; then
  echo "error: partial merge emitted no gap manifest" >&2
  exit 1
fi
for needle in \
    '"schema": "nodebench-gap-manifest-v1"' \
    '"present_shards": [0, 2]' \
    '"shard": 1, "attempts": 2' \
    ; do
  if ! grep -qF "${needle}" "${gaps}"; then
    echo "error: gap manifest is missing ${needle}" >&2
    cat "${gaps}" >&2
    exit 1
  fi
done
# Exactly the poisoned shard's cells are missing: present + missing must
# partition the grid, and every missing cell must blame shard 1.
total="$(grep -o '"total_cells": [0-9]*' "${gaps}" | grep -o '[0-9]*')"
present="$(grep -o '"present_cells": [0-9]*' "${gaps}" | grep -o '[0-9]*')"
missing="$(grep -c '"machine": ' "${gaps}")" || true
if (( present + missing != total )); then
  echo "error: gap manifest cells do not partition the grid" \
       "(${present} present + ${missing} missing != ${total})" >&2
  cat "${gaps}" >&2
  exit 1
fi
if (( missing == 0 )); then
  echo "error: gap manifest enumerates no missing cells" >&2
  exit 1
fi
if grep '"machine": ' "${gaps}" | grep -qv '"shard": 1'; then
  echo "error: a missing cell blames a shard other than the poisoned one" >&2
  cat "${gaps}" >&2
  exit 1
fi
echo "   exit 44, partial merge, gap manifest enumerates shard 1's" \
     "${missing} cell(s)"

echo
echo "chaos suite passed"
