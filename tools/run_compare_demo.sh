#!/usr/bin/env bash
# End-to-end regression-gate demo against the real nodebench binary:
# record two results stores, diff them with `nodebench compare`, and
# prove the `gate` exit-code contract plus the determinism guarantees.
#
#   tools/run_compare_demo.sh [build-dir] [table] [runs]
#     build-dir  configured build tree containing the nodebench binary
#                (default: build)
#     table      table selector passed to `nodebench table` (default: 5,
#                which exercises both latency and bandwidth cells)
#     runs       --runs per cell (default: 8; enough samples for the
#                significance tests to resolve a 20% shift)
#
# Asserted properties:
#  - gate(base, base) exits 0: identical samples are never a regression;
#  - gate(base, degraded) exits non-zero: a fault-plan-degraded candidate
#    trips the gate, and `compare` names the regressed cells;
#  - compare/gate output is byte-identical at --jobs 1 and --jobs 8;
#  - a store recorded at --jobs 8 is semantically identical to one
#    recorded at --jobs 1 (gate between them passes with zero flagged
#    cells), even though the append order on disk may differ.
set -euo pipefail

build_dir="${1:-build}"
table="${2:-5}"
runs="${3:-8}"

nodebench="${build_dir}/src/cli/nodebench"
if [[ ! -x "${nodebench}" ]]; then
  echo "error: '${nodebench}' not found; build the tree first" >&2
  echo "hint: cmake -B ${build_dir} && cmake --build ${build_dir} -j" >&2
  exit 2
fi

plan="$(dirname "$0")/../examples/regression_demo_plan.json"
if [[ ! -f "${plan}" ]]; then
  echo "error: demo fault plan '${plan}' not found" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/nodebench_compare_demo.XXXXXX")"
trap 'rm -rf "${workdir}"' EXIT

echo "== record baseline store (table ${table}, --runs ${runs}) =="
"${nodebench}" table "${table}" --runs "${runs}" --jobs 1 \
  --store "${workdir}/base.store" > /dev/null

echo "== gate(base, base) must PASS with exit 0 =="
"${nodebench}" gate "${workdir}/base.store" "${workdir}/base.store"

echo
echo "== record degraded candidate under the demo fault plan =="
"${nodebench}" table "${table}" --runs "${runs}" --jobs 1 \
  --faults "${plan}" --store "${workdir}/degraded.store" > /dev/null

echo "== gate(base, degraded) must FAIL with a non-zero exit =="
rc=0
"${nodebench}" gate "${workdir}/base.store" "${workdir}/degraded.store" \
  || rc=$?
if (( rc == 0 )); then
  echo "error: gate passed a fault-degraded candidate" >&2
  exit 1
fi
echo "   gate exited ${rc} on the degraded candidate (as required)"

echo
echo "== compare output must be byte-identical at --jobs 1 and 8 =="
"${nodebench}" compare "${workdir}/base.store" "${workdir}/degraded.store" \
  --jobs 1 > "${workdir}/compare_j1.txt"
"${nodebench}" compare "${workdir}/base.store" "${workdir}/degraded.store" \
  --jobs 8 > "${workdir}/compare_j8.txt"
if ! cmp -s "${workdir}/compare_j1.txt" "${workdir}/compare_j8.txt"; then
  echo "error: compare output depends on --jobs" >&2
  diff "${workdir}/compare_j1.txt" "${workdir}/compare_j8.txt" | head -20 >&2
  exit 1
fi
if ! grep -q "REGRESSION" "${workdir}/compare_j1.txt"; then
  echo "error: compare table names no REGRESSION cells" >&2
  head -30 "${workdir}/compare_j1.txt" >&2
  exit 1
fi
echo "   compare tables are byte-identical and name the regressions"

echo
echo "== a store recorded at --jobs 8 must be semantically identical =="
# The on-disk record order is append-on-completion and may differ across
# worker counts; compare/gate key by (machine, cell, quantity), so the
# gate between the two recordings must pass with nothing flagged.
"${nodebench}" table "${table}" --runs "${runs}" --jobs 8 \
  --store "${workdir}/base_j8.store" > /dev/null
"${nodebench}" gate "${workdir}/base.store" "${workdir}/base_j8.store"

echo
echo "compare demo passed"
