#!/usr/bin/env bash
# Crash-injection integration suite for the campaign journal: repeatedly
# kill the real nodebench binary mid-campaign and resume it, then assert
# the final table output is byte-identical to an uninterrupted run.
#
#   tools/run_crash_suite.sh [--section NAME]... [build-dir] [table] [runs]
#     --section  run only the named section(s); repeatable. Names:
#                  crash    deterministic --crash-after-cell loop
#                  sigkill  SIGKILL mid-campaign, then resume
#                  sigterm  graceful interrupt (exit 43), then resume
#                  serve    daemon SIGKILL + --resume recovery
#                  shard    sharded worker SIGKILL, resume, merge
#                  memlab   sweep/chase SIGKILL mid-grid, then resume
#                Default (no flag): every section. The baseline run is
#                shared by crash/sigkill/sigterm and executes whenever
#                any of those is selected.
#     build-dir  configured build tree containing the nodebench binary
#                (default: build)
#     table      table selector passed to `nodebench table` (default: all,
#                which covers every registry machine)
#     runs       --runs per cell (default: 2; kept small — the property
#                under test is durability, not statistics)
#
# Two kill mechanisms are exercised at --jobs 1 and --jobs 8:
#  - the deterministic --crash-after-cell hook (fsync, then _Exit(42)),
#    which lands exactly on an append boundary;
#  - one SIGKILL at a random point, which may tear a record mid-write and
#    must be recovered by torn-tail truncation on resume.
# Then the graceful-interrupt contract: SIGTERM to a journaled run must
# finish the in-flight cell, fsync, and exit 43, with --resume completing
# the campaign byte-identically.
# Finally the daemon: `nodebench serve` is SIGKILLed mid-request and
# restarted with --resume; the recovered request's persisted result must
# be byte-identical to the same request measured in a fresh state dir.
set -euo pipefail

sections=()
positional=()
while (( $# > 0 )); do
  case "$1" in
    --section)
      [[ $# -ge 2 ]] || { echo "error: --section needs a name" >&2; exit 2; }
      sections+=("$2")
      shift 2
      ;;
    --section=*)
      sections+=("${1#--section=}")
      shift
      ;;
    --*)
      echo "error: unknown flag '$1' (only --section NAME)" >&2
      exit 2
      ;;
    *)
      positional+=("$1")
      shift
      ;;
  esac
done
for s in "${sections[@]:+${sections[@]}}"; do
  case "${s}" in
    crash|sigkill|sigterm|serve|shard|memlab) ;;
    *)
      echo "error: unknown section '${s}'" \
           "(crash, sigkill, sigterm, serve, shard, memlab)" >&2
      exit 2
      ;;
  esac
done

# want NAME: true when NAME was selected, or when no --section was given.
want() {
  local s
  (( ${#sections[@]} == 0 )) && return 0
  for s in "${sections[@]}"; do
    [[ "${s}" == "$1" ]] && return 0
  done
  return 1
}

build_dir="${positional[0]:-build}"
table="${positional[1]:-all}"
runs="${positional[2]:-2}"

nodebench="${build_dir}/src/cli/nodebench"
if [[ ! -x "${nodebench}" ]]; then
  echo "error: '${nodebench}' not found; build the tree first" >&2
  echo "hint: cmake -B ${build_dir} && cmake --build ${build_dir} -j" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/nodebench_crash_suite.XXXXXX")"
trap 'rm -rf "${workdir}"' EXIT

if want crash || want sigkill || want sigterm; then
  echo "== baseline: uninterrupted 'table ${table}' run =="
  "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
    > "${workdir}/baseline.txt"
fi

if want crash; then
  for jobs in 1 8; do
    echo
    echo "== kill-and-resume at --jobs ${jobs} =="
    journal="${workdir}/campaign_j${jobs}.bin"
    rm -f "${journal}"

    # Phase 1: deterministic crashes every few appended cells until the
    # campaign completes. Exit 42 is the crash hook; 0 means done.
    iteration=0
    max_iterations=200
    resume_flag=()
    while :; do
      iteration=$((iteration + 1))
      if (( iteration > max_iterations )); then
        echo "error: campaign did not converge in ${max_iterations} crashes" >&2
        exit 1
      fi
      rc=0
      "${nodebench}" table "${table}" --runs "${runs}" --jobs "${jobs}" \
        --journal "${journal}" "${resume_flag[@]}" --crash-after-cell 5 \
        > "${workdir}/crashed.txt" 2>> "${workdir}/stderr_j${jobs}.log" || rc=$?
      resume_flag=(--resume)
      if (( rc == 0 )); then
        break
      elif (( rc != 42 )); then
        echo "error: unexpected exit code ${rc} (wanted 0 or 42)" >&2
        tail -5 "${workdir}/stderr_j${jobs}.log" >&2
        exit 1
      fi
    done
    echo "   campaign converged after ${iteration} process runs"

    if ! cmp -s "${workdir}/crashed.txt" "${workdir}/baseline.txt"; then
      echo "error: resumed output differs from the uninterrupted run" >&2
      diff "${workdir}/baseline.txt" "${workdir}/crashed.txt" | head -20 >&2
      exit 1
    fi
    echo "   resumed output is byte-identical to the baseline"
  done
fi

if want sigkill; then
  echo
  echo "== SIGKILL mid-campaign, then resume =="
  journal="${workdir}/campaign_kill.bin"
  rm -f "${journal}"
  "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
    --journal "${journal}" > /dev/null 2>&1 &
  victim=$!
  sleep 0.05
  kill -9 "${victim}" 2>/dev/null || true
  wait "${victim}" 2>/dev/null || true
  if [[ ! -f "${journal}" ]]; then
    # The kill landed before journal creation; nothing to resume.
    "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
      --journal "${journal}" > "${workdir}/killed.txt"
  else
    "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
      --journal "${journal}" --resume > "${workdir}/killed.txt" \
      2>> "${workdir}/stderr_kill.log"
  fi
  if ! cmp -s "${workdir}/killed.txt" "${workdir}/baseline.txt"; then
    echo "error: post-SIGKILL resume differs from the uninterrupted run" >&2
    diff "${workdir}/baseline.txt" "${workdir}/killed.txt" | head -20 >&2
    exit 1
  fi
  echo "   post-SIGKILL resume is byte-identical to the baseline"
fi

if want sigterm; then
  echo
  echo "== SIGTERM mid-campaign: graceful interrupt (exit 43), then resume =="
  journal="${workdir}/campaign_term.bin"
  rm -f "${journal}"
  # --test-cell-delay-ms slows every cell so the signal reliably lands
  # mid-campaign (the simulated campaign otherwise finishes in
  # milliseconds). The delay changes timing only, never output or the
  # journal fingerprint, so the resume below may drop it.
  "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
    --journal "${journal}" --test-cell-delay-ms 30 > "${workdir}/term.txt" \
    2> "${workdir}/stderr_term.log" &
  victim=$!
  sleep 0.3
  kill -TERM "${victim}" 2>/dev/null || true
  rc=0
  wait "${victim}" || rc=$?
  if (( rc != 43 )); then
    echo "error: SIGTERM produced exit ${rc} (wanted the interrupt code 43)" >&2
    tail -5 "${workdir}/stderr_term.log" >&2
    exit 1
  fi
  if [[ ! -f "${journal}" ]]; then
    echo "error: exit 43 without a journal on disk" >&2
    exit 1
  fi
  "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
    --journal "${journal}" --resume > "${workdir}/term.txt" \
    2>> "${workdir}/stderr_term.log"
  if ! cmp -s "${workdir}/term.txt" "${workdir}/baseline.txt"; then
    echo "error: post-SIGTERM resume differs from the uninterrupted run" >&2
    diff "${workdir}/baseline.txt" "${workdir}/term.txt" | head -20 >&2
    exit 1
  fi
  echo "   interrupted run exited 43 and resumed byte-identically"
fi

if want serve; then
  echo
  echo "== serve: SIGKILL the daemon mid-request, restart --resume =="
  if ! curl --help all 2>/dev/null | grep -q unix-socket; then
    echo "   skipped: curl with --unix-socket support not available"
  else
    sock="${workdir}/nb.sock"
    state="${workdir}/serve_state"
    ref_state="${workdir}/serve_ref_state"
    # debug_cell_delay_ms needs --test-hooks and slows every cell enough
    # that the SIGKILL below reliably lands mid-campaign.
    request='{"tenant":"crashsuite","tables":[4],"runs":2,"machines":["Theta","Eagle"],"debug_cell_delay_ms":200,"wait":false}'

    wait_healthz() {
      local s="$1" i
      for i in $(seq 1 200); do
        if curl -sf --unix-socket "${s}" http://localhost/healthz \
            > /dev/null 2>&1; then
          return 0
        fi
        sleep 0.05
      done
      echo "error: daemon on ${s} never became healthy" >&2
      return 1
    }

    "${nodebench}" serve --socket "${sock}" --state-dir "${state}" \
      --test-hooks > "${workdir}/serve1.log" 2>&1 &
    daemon=$!
    wait_healthz "${sock}"
    curl -sf --unix-socket "${sock}" -X POST -d "${request}" \
      http://localhost/requests > /dev/null
    sleep 0.6
    kill -9 "${daemon}" 2>/dev/null || true
    wait "${daemon}" 2>/dev/null || true
    if [[ -f "${state}/req-000001.result.json" ]]; then
      echo "error: request finished before the SIGKILL; raise the delay" >&2
      exit 1
    fi
    if [[ ! -f "${state}/req-000001.spec.json" ]]; then
      echo "error: no persisted spec for the in-flight request" >&2
      exit 1
    fi

    "${nodebench}" serve --socket "${sock}" --state-dir "${state}" \
      --test-hooks --resume > "${workdir}/serve2.log" 2>&1 &
    daemon=$!
    wait_healthz "${sock}"
    for _ in $(seq 1 600); do
      if [[ -f "${state}/req-000001.result.json" ]]; then
        break
      fi
      sleep 0.05
    done
    if [[ ! -f "${state}/req-000001.result.json" ]]; then
      echo "error: resumed daemon never finished the recovered request" >&2
      tail -5 "${workdir}/serve2.log" >&2
      exit 1
    fi
    kill -TERM "${daemon}" 2>/dev/null || true
    rc=0
    wait "${daemon}" || rc=$?
    if (( rc != 0 )); then
      echo "error: graceful drain exited ${rc} (wanted 0)" >&2
      exit 1
    fi

    # Reference: the identical request against a fresh daemon and state
    # dir, never interrupted. Same first request => same id, so the two
    # result documents must match byte-for-byte.
    "${nodebench}" serve --socket "${sock}" --state-dir "${ref_state}" \
      --test-hooks > "${workdir}/serve_ref.log" 2>&1 &
    daemon=$!
    wait_healthz "${sock}"
    curl -sf --unix-socket "${sock}" -X POST \
      -d "${request/\"wait\":false/\"wait\":true}" \
      http://localhost/requests > /dev/null
    kill -TERM "${daemon}" 2>/dev/null || true
    wait "${daemon}" 2>/dev/null || true
    if ! cmp -s "${state}/req-000001.result.json" \
         "${ref_state}/req-000001.result.json"; then
      echo "error: recovered result differs from the uninterrupted run" >&2
      diff "${ref_state}/req-000001.result.json" \
           "${state}/req-000001.result.json" | head -5 >&2
      exit 1
    fi
    echo "   recovered daemon result is byte-identical to the fresh run"
  fi
fi

if want shard; then
  echo
  echo "== sharded campaign: SIGKILL one worker, resume it, merge =="
  # Three hand-launched shard workers (the cross-host shape — no driver
  # process), the middle one slowed and SIGKILLed mid-cell. Resuming just
  # that shard and merging must reproduce the single-process --jobs 1
  # journal and store byte-for-byte: the shard layer's durability story is
  # the journal's, per worker.
  shard_ref_journal="${workdir}/shard_ref.journal"
  shard_ref_store="${workdir}/shard_ref.store"
  "${nodebench}" table "${table}" --runs "${runs}" --jobs 1 \
    --journal "${shard_ref_journal}" --store "${shard_ref_store}" \
    > /dev/null

  shard_base="${workdir}/shard.journal"
  shard_store_base="${workdir}/shard.store"
  for i in 0 2; do
    "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
      --shard "${i}/3" \
      --journal "${shard_base}.shard${i}of3" \
      --store "${shard_store_base}.shard${i}of3" > /dev/null &
  done
  "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
    --shard 1/3 \
    --journal "${shard_base}.shard1of3" \
    --store "${shard_store_base}.shard1of3" \
    --test-cell-delay-ms 200 > /dev/null 2>&1 &
  victim=$!
  sleep 0.4
  kill -9 "${victim}" 2>/dev/null || true
  wait 2>/dev/null || true

  resume_flag=(--resume)
  if [[ ! -f "${shard_base}.shard1of3" ]]; then
    # The kill landed before journal creation; start the shard fresh.
    resume_flag=()
  fi
  "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
    --shard 1/3 \
    --journal "${shard_base}.shard1of3" \
    --store "${shard_store_base}.shard1of3" "${resume_flag[@]}" > /dev/null \
    2>> "${workdir}/stderr_shard.log"

  # A merge of the incomplete set must be refused, naming the shard.
  rc=0
  "${nodebench}" merge \
    "${shard_base}.shard0of3" "${shard_base}.shard1of3" \
    --out "${workdir}/shard_incomplete.journal" \
    > /dev/null 2> "${workdir}/shard_refusal.log" || rc=$?
  if (( rc == 0 )); then
    echo "error: merge accepted an incomplete shard set" >&2
    exit 1
  fi
  if ! grep -q "shard 2/3" "${workdir}/shard_refusal.log"; then
    echo "error: merge refusal does not name the missing shard" >&2
    cat "${workdir}/shard_refusal.log" >&2
    exit 1
  fi

  "${nodebench}" merge \
    "${shard_base}.shard0of3" "${shard_base}.shard1of3" \
    "${shard_base}.shard2of3" \
    --out "${workdir}/shard_merged.journal" \
    --stores "${shard_store_base}.shard0of3" \
    --stores "${shard_store_base}.shard1of3" \
    --stores "${shard_store_base}.shard2of3" \
    --store-out "${workdir}/shard_merged.store" \
    >> "${workdir}/stderr_shard.log" 2>&1

  if ! cmp -s "${workdir}/shard_merged.journal" "${shard_ref_journal}"; then
    echo "error: merged shard journal differs from the --jobs 1 run" >&2
    exit 1
  fi
  if ! cmp -s "${workdir}/shard_merged.store" "${shard_ref_store}"; then
    echo "error: merged shard store differs from the --jobs 1 run" >&2
    exit 1
  fi
  echo "   killed worker resumed; merged journal and store byte-identical"
fi

if want memlab; then
  # The memlab families ride the same journal machinery as the tables;
  # this section proves it end-to-end: SIGKILL each family mid-grid (the
  # kill may tear a record mid-write), resume, and require the rendered
  # output byte-identical to an uninterrupted run of the same family.
  for family in sweep chase; do
    echo
    echo "== memlab ${family}: SIGKILL mid-grid, then resume =="
    "${nodebench}" "${family}" --runs "${runs}" --jobs 2 \
      > "${workdir}/${family}_baseline.txt"

    journal="${workdir}/${family}_kill.bin"
    rm -f "${journal}"
    "${nodebench}" "${family}" --runs "${runs}" --jobs 2 \
      --journal "${journal}" --test-cell-delay-ms 5 > /dev/null 2>&1 &
    victim=$!
    sleep 0.3
    kill -9 "${victim}" 2>/dev/null || true
    wait "${victim}" 2>/dev/null || true

    resume_flag=(--resume)
    if [[ ! -f "${journal}" ]]; then
      # The kill landed before journal creation; nothing to resume.
      resume_flag=()
    fi
    "${nodebench}" "${family}" --runs "${runs}" --jobs 2 \
      --journal "${journal}" "${resume_flag[@]}" \
      > "${workdir}/${family}_killed.txt" \
      2>> "${workdir}/stderr_${family}.log"
    if ! cmp -s "${workdir}/${family}_killed.txt" \
         "${workdir}/${family}_baseline.txt"; then
      echo "error: resumed ${family} differs from the uninterrupted run" >&2
      diff "${workdir}/${family}_baseline.txt" \
           "${workdir}/${family}_killed.txt" | head -20 >&2
      exit 1
    fi
    echo "   post-SIGKILL ${family} resume is byte-identical to the baseline"
  done
fi

echo
echo "crash suite passed"
