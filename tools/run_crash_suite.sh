#!/usr/bin/env bash
# Crash-injection integration suite for the campaign journal: repeatedly
# kill the real nodebench binary mid-campaign and resume it, then assert
# the final table output is byte-identical to an uninterrupted run.
#
#   tools/run_crash_suite.sh [build-dir] [table] [runs]
#     build-dir  configured build tree containing the nodebench binary
#                (default: build)
#     table      table selector passed to `nodebench table` (default: all,
#                which covers every registry machine)
#     runs       --runs per cell (default: 2; kept small — the property
#                under test is durability, not statistics)
#
# Two kill mechanisms are exercised at --jobs 1 and --jobs 8:
#  - the deterministic --crash-after-cell hook (fsync, then _Exit(42)),
#    which lands exactly on an append boundary;
#  - one SIGKILL at a random point, which may tear a record mid-write and
#    must be recovered by torn-tail truncation on resume.
set -euo pipefail

build_dir="${1:-build}"
table="${2:-all}"
runs="${3:-2}"

nodebench="${build_dir}/src/cli/nodebench"
if [[ ! -x "${nodebench}" ]]; then
  echo "error: '${nodebench}' not found; build the tree first" >&2
  echo "hint: cmake -B ${build_dir} && cmake --build ${build_dir} -j" >&2
  exit 2
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/nodebench_crash_suite.XXXXXX")"
trap 'rm -rf "${workdir}"' EXIT

echo "== baseline: uninterrupted 'table ${table}' run =="
"${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
  > "${workdir}/baseline.txt"

for jobs in 1 8; do
  echo
  echo "== kill-and-resume at --jobs ${jobs} =="
  journal="${workdir}/campaign_j${jobs}.bin"
  rm -f "${journal}"

  # Phase 1: deterministic crashes every few appended cells until the
  # campaign completes. Exit 42 is the crash hook; 0 means done.
  iteration=0
  max_iterations=200
  resume_flag=()
  while :; do
    iteration=$((iteration + 1))
    if (( iteration > max_iterations )); then
      echo "error: campaign did not converge in ${max_iterations} crashes" >&2
      exit 1
    fi
    rc=0
    "${nodebench}" table "${table}" --runs "${runs}" --jobs "${jobs}" \
      --journal "${journal}" "${resume_flag[@]}" --crash-after-cell 5 \
      > "${workdir}/crashed.txt" 2>> "${workdir}/stderr_j${jobs}.log" || rc=$?
    resume_flag=(--resume)
    if (( rc == 0 )); then
      break
    elif (( rc != 42 )); then
      echo "error: unexpected exit code ${rc} (wanted 0 or 42)" >&2
      tail -5 "${workdir}/stderr_j${jobs}.log" >&2
      exit 1
    fi
  done
  echo "   campaign converged after ${iteration} process runs"

  if ! cmp -s "${workdir}/crashed.txt" "${workdir}/baseline.txt"; then
    echo "error: resumed output differs from the uninterrupted run" >&2
    diff "${workdir}/baseline.txt" "${workdir}/crashed.txt" | head -20 >&2
    exit 1
  fi
  echo "   resumed output is byte-identical to the baseline"
done

echo
echo "== SIGKILL mid-campaign, then resume =="
journal="${workdir}/campaign_kill.bin"
rm -f "${journal}"
"${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
  --journal "${journal}" > /dev/null 2>&1 &
victim=$!
sleep 0.05
kill -9 "${victim}" 2>/dev/null || true
wait "${victim}" 2>/dev/null || true
if [[ ! -f "${journal}" ]]; then
  # The kill landed before journal creation; nothing to resume.
  "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
    --journal "${journal}" > "${workdir}/killed.txt"
else
  "${nodebench}" table "${table}" --runs "${runs}" --jobs 2 \
    --journal "${journal}" --resume > "${workdir}/killed.txt" \
    2>> "${workdir}/stderr_kill.log"
fi
if ! cmp -s "${workdir}/killed.txt" "${workdir}/baseline.txt"; then
  echo "error: post-SIGKILL resume differs from the uninterrupted run" >&2
  diff "${workdir}/baseline.txt" "${workdir}/killed.txt" | head -20 >&2
  exit 1
fi
echo "   post-SIGKILL resume is byte-identical to the baseline"

echo
echo "crash suite passed"
