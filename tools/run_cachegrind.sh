#!/usr/bin/env bash
# Cache/branch simulation profile of the simulation core via valgrind's
# cachegrind — the instruction-level companion to tools/run_perf_stat.sh
# (counter totals are deterministic, so two runs diff cleanly even on
# noisy shared hosts):
#
#   tools/run_cachegrind.sh [build-dir] [benchmark-filter]
#
# Produces cachegrind.out.* files in the current directory and prints
# the summary totals. With valgrind unavailable the script reports how
# to obtain the same signal from perf and exits 0, so harness callers
# need no platform branching.
set -euo pipefail

build_dir="${1:-build}"
filter="${2:-SimulatedPingPong/100|LatencyTruth|EventQueueScheduleRun/1024}"

gbench="${build_dir}/bench/bench_simcore_gbench"
if [[ ! -x "${gbench}" ]]; then
  echo "error: '${gbench}' not built" >&2
  echo "hint: cmake --build ${build_dir} -j --target bench_simcore_gbench" >&2
  exit 2
fi

if ! command -v valgrind >/dev/null 2>&1; then
  echo "note: valgrind not installed; skipping cachegrind run" >&2
  echo "      (tools/run_perf_stat.sh reports hardware cache counters" >&2
  echo "       where perf is available)" >&2
  exit 0
fi

# One repetition is enough: cachegrind's simulated counters have no
# run-to-run noise, and the 20-100x slowdown makes repetitions costly.
valgrind --tool=cachegrind --branch-sim=yes -- \
  "${gbench}" --benchmark_filter="${filter}" --benchmark_repetitions=1

echo
echo "annotate hot functions with: cg_annotate cachegrind.out.<pid>"
